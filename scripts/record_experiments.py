#!/usr/bin/env python3
"""Run the full experiment campaign and archive the results.

Produces a timestamp-free, reproducible record: JSON result files for
Figures 13/15/17 plus a markdown summary, under ``results/`` (or a
directory given with ``-o``).  EXPERIMENTS.md is written by hand from
these numbers; this script regenerates the raw material.

Usage:
    python scripts/record_experiments.py [-n INSTRUCTIONS] [-o DIR]
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.core.experiments import (
    DEFAULT_INSTRUCTIONS,
    run_fig13,
    run_fig15,
    run_fig17,
)
from repro.core.frontier import (
    conventional_frontier,
    dependence_based_point,
    format_frontier,
)
from repro.core.results_io import save_result
from repro.core.speedup import clock_adjusted_speedup
from repro.technology import TECH_018


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-n", "--instructions", type=int,
                        default=DEFAULT_INSTRUCTIONS)
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="campaign worker processes (default 1)")
    parser.add_argument("-o", "--output", default="results")
    args = parser.parse_args()

    output = Path(args.output)
    output.mkdir(parents=True, exist_ok=True)
    sections: list[str] = [
        f"# Recorded experiment campaign ({args.instructions} instructions)",
        "",
    ]

    print(f"running figure campaigns at {args.instructions} instructions...")
    started = time.perf_counter()
    campaigns = {
        "fig13": run_fig13(max_instructions=args.instructions, jobs=args.jobs),
        "fig15": run_fig15(max_instructions=args.instructions, jobs=args.jobs),
        "fig17": run_fig17(max_instructions=args.instructions, jobs=args.jobs),
    }
    campaign_seconds = time.perf_counter() - started
    for name, result in campaigns.items():
        save_result(result, output / f"{name}.json")
        sections.append(f"## {name}")
        sections.append("```")
        sections.append(result.format_table())
        if name == "fig17":
            sections.append("")
            sections.append(result.format_table("bypass"))
        sections.append("```")
        sections.append("")
        print(f"  {name}: saved {output / f'{name}.json'}")

    speedup = clock_adjusted_speedup(
        campaigns["fig15"],
        dependence_machine="2-cluster dependence-based",
        window_machine="window-based 8-way",
        tech=TECH_018,
    )
    sections.append("## Section 5.5 speedup")
    sections.append("```")
    sections.append(speedup.format_table())
    sections.append("```")
    sections.append("")

    print("running the complexity-effectiveness frontier...")
    points = conventional_frontier(max_instructions=args.instructions)
    points.append(dependence_based_point(max_instructions=args.instructions))
    sections.append("## Frontier")
    sections.append("```")
    sections.append(format_frontier(points))
    sections.append("```")

    summary = output / "summary.md"
    summary.write_text("\n".join(sections) + "\n", encoding="utf-8")
    print(f"wrote {summary}")

    # The archived campaign's timings go through the same
    # schema-stamped bench writer every other harness uses.
    from repro.obs.ledger import record_bench

    bench_path = output / "BENCH_experiments.json"
    record_bench(
        bench_path,
        "repro-experiments-bench",
        {
            "instructions": args.instructions,
            "jobs": args.jobs,
            "figures": sorted(campaigns),
            "campaign_seconds": round(campaign_seconds, 3),
        },
    )
    print(f"wrote {bench_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
