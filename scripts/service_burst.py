#!/usr/bin/env python3
"""Smoke-burst a running design-space service (the CI service gate).

Points the shared load client at a server that is expected to be
**warm** (started with ``repro serve --warm <grid>``) and asserts the
serving-tier contract end to end:

1. ``/v1/healthz`` answers and reports the expected machine count;
2. a keep-alive burst over every machine's cell endpoints answers
   all-200 at or above the committed warm-throughput floor
   (``recorded.min_warm_qps_floor`` in ``BENCH_service.json``);
3. the burst triggered **zero** simulations -- proven by diffing
   ``service_simulations_total`` from ``/v1/metrics`` before/after.

Exits nonzero (with a reason on stderr) when any of these fail.

Usage:
    python scripts/service_burst.py [--host H] [--port P]
        [--requests N] [--concurrency C] [-n INSTRUCTIONS]
        [--qps-floor QPS]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

from repro.service.loadgen import get_json, run_burst

REPO_ROOT = Path(__file__).resolve().parent.parent


def _metric_value(exposition: str, name: str) -> float:
    """Sum every sample of ``name`` in a Prometheus exposition (0.0
    when the metric has not been created yet)."""
    total = 0.0
    for line in exposition.splitlines():
        if line.startswith(name) and not line.startswith("#"):
            total += float(line.rsplit(None, 1)[-1])
    return total


def _committed_floor() -> float:
    """The warm-qps floor checked into BENCH_service.json."""
    payload = json.loads(
        (REPO_ROOT / "BENCH_service.json").read_text(encoding="utf-8"))
    return float(payload["recorded"]["min_warm_qps_floor"])


async def burst(args) -> int:
    status, health = await get_json(args.host, args.port, "/v1/healthz")
    if status != 200:
        print(f"FAIL healthz answered {status}: {health}", file=sys.stderr)
        return 1
    print(f"healthz: {health['machines']} machines, "
          f"{health['pending_simulations']} pending simulations")

    status, listing = await get_json(args.host, args.port, "/v1/machines")
    assert status == 200, listing
    budget = args.instructions or health["default_instructions"]
    paths = [
        f"/v1/cell?machine={m['name']}&workload={w}&n={budget}"
        for m in listing["machines"]
        for w in listing["workloads"]
    ]

    _, before = await get_json(args.host, args.port, "/v1/metrics")
    sims_before = _metric_value(before["raw"], "service_simulations_total")

    result = await run_burst(args.host, args.port, paths,
                             requests=args.requests,
                             concurrency=args.concurrency)
    print(f"burst: {result.to_dict()}")

    _, after = await get_json(args.host, args.port, "/v1/metrics")
    sims_after = _metric_value(after["raw"], "service_simulations_total")

    floor = args.qps_floor if args.qps_floor is not None else _committed_floor()
    failures = []
    if not result.all_ok:
        failures.append(f"non-200 responses: {result.statuses}")
    if sims_after != sims_before:
        failures.append(
            f"warm burst simulated {sims_after - sims_before:.0f} cells "
            "(expected zero: is the cache warm for this -n budget?)")
    if result.qps < floor:
        failures.append(
            f"warm throughput {result.qps:.0f} qps is below the "
            f"committed floor {floor:.0f}")
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    if not failures:
        print(f"OK {result.qps:.0f} qps warm (floor {floor:.0f}), "
              f"zero simulations across {result.requests} requests")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="burst a warm design-space service and enforce the "
                    "zero-simulation + throughput contract")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787)
    parser.add_argument("--requests", type=int, default=3000)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("-n", "--instructions", type=int, default=None,
                        help="per-cell budget in the requests (default: "
                             "the server's default budget)")
    parser.add_argument("--qps-floor", type=float, default=None,
                        help="override the BENCH_service.json floor")
    return asyncio.run(burst(parser.parse_args()))


if __name__ == "__main__":
    sys.exit(main())
