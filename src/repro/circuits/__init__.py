"""Structural (geometry) models of the studied circuit blocks.

The paper derives each structure's delay from the layout geometry of a
representative CMOS circuit: the rename map table is a multi-ported RAM
whose cells grow with the number of ports, the wakeup array is a CAM
whose tag lines run the height of the window, selection is a tree of
4-input arbiters, and the bypass network is a set of result wires whose
length is set by the datapath layout.

This package captures exactly that geometry: given microarchitectural
parameters (issue width, window size, register counts) it produces wire
lengths in lambda, port/comparator counts, and tree depths.  The delay
models in :mod:`repro.delay` combine these with the wire physics in
:mod:`repro.technology` and the calibrated logic constants.
"""

from repro.circuits.ram import RamGeometry, rename_map_table_geometry
from repro.circuits.cam import CamGeometry, wakeup_array_geometry
from repro.circuits.arbiter import ArbiterTree, selection_tree
from repro.circuits.datapath import BypassDatapath, bypass_path_count

__all__ = [
    "RamGeometry",
    "rename_map_table_geometry",
    "CamGeometry",
    "wakeup_array_geometry",
    "ArbiterTree",
    "selection_tree",
    "BypassDatapath",
    "bypass_path_count",
]
