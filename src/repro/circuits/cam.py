"""CAM geometry (the issue-window wakeup array).

Section 4.2: the issue window is a CAM with one instruction per entry.
``IW`` result tags are broadcast down tag lines that span the full
window height; each entry holds ``2 * IW`` comparators (each of the two
operand tags is compared against every result tag).  Increasing the
issue width adds matchlines and comparators to every entry, making each
entry taller; increasing the window size adds entries.  Both therefore
lengthen the tag lines, and tag-drive time grows quadratically with
window size (distributed RC) with an issue-width-dependent weight.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Height of a window entry with a single matchline, in lambda.
_ENTRY_BASE_H_LAMBDA = 60.0
#: Extra entry height per result tag (one matchline track plus the
#: comparator pull-down rows it requires), in lambda.
_ENTRY_PER_TAG_H_LAMBDA = 14.0
#: Width of the tag-comparator portion of an entry, in lambda; this is
#: the length of one matchline.
_MATCHLINE_BASE_W_LAMBDA = 250.0
_MATCHLINE_PER_TAG_W_LAMBDA = 25.0


@dataclass(frozen=True)
class CamGeometry:
    """Geometry of the wakeup CAM array.

    Attributes:
        window_size: Number of entries (instructions) in the window.
        issue_width: Result tags broadcast per cycle.
        tag_bits: Width of a result tag in bits.
    """

    window_size: int
    issue_width: int
    tag_bits: int = 7

    def __post_init__(self) -> None:
        if self.window_size < 1:
            raise ValueError(f"window size must be >= 1, got {self.window_size}")
        if self.issue_width < 1:
            raise ValueError(f"issue width must be >= 1, got {self.issue_width}")
        if self.tag_bits < 1:
            raise ValueError(f"tag bits must be >= 1, got {self.tag_bits}")

    @property
    def comparators_per_entry(self) -> int:
        """Each of 2 operand tags compared against every result tag."""
        return 2 * self.issue_width

    @property
    def total_comparators(self) -> int:
        """Comparators in the whole array (tag-line load)."""
        return self.comparators_per_entry * self.window_size

    @property
    def entry_height_lambda(self) -> float:
        """Height of one window entry, growing with issue width."""
        return _ENTRY_BASE_H_LAMBDA + _ENTRY_PER_TAG_H_LAMBDA * self.issue_width

    @property
    def tagline_length_lambda(self) -> float:
        """Length of one tag line: it spans every entry."""
        return self.window_size * self.entry_height_lambda

    @property
    def matchline_length_lambda(self) -> float:
        """Length of one matchline, growing with issue width."""
        return _MATCHLINE_BASE_W_LAMBDA + _MATCHLINE_PER_TAG_W_LAMBDA * self.issue_width


def wakeup_array_geometry(
    issue_width: int, window_size: int, physical_registers: int = 120
) -> CamGeometry:
    """Geometry of the wakeup array for the given design point.

    Args:
        issue_width: Maximum result tags produced per cycle.
        window_size: Issue-window entries.
        physical_registers: Determines the tag width.
    """
    if physical_registers < 2:
        raise ValueError("physical register count must be >= 2")
    tag_bits = max(1, (physical_registers - 1).bit_length())
    return CamGeometry(window_size=window_size, issue_width=issue_width, tag_bits=tag_bits)
