"""Arbiter-tree geometry (the selection logic).

Section 4.3: selection logic is a tree of arbiter cells.  Request
signals propagate from the window entries up to the root; the root
grants one requester; the grant propagates back down.  The paper found
four-input arbiter cells optimal (as in the MIPS R10000), so the tree
is 4-ary and its depth is ``ceil(log4(window_size))``.  The root-cell
delay is independent of window size, which is why the total delay grows
logarithmically and in steps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Optimal arbiter fan-in found by the paper (and used in the R10000).
ARBITER_FANIN = 4


@dataclass(frozen=True)
class ArbiterTree:
    """A 4-ary arbitration tree over a window of request signals.

    Attributes:
        window_size: Number of request inputs (window entries).
    """

    window_size: int

    def __post_init__(self) -> None:
        if self.window_size < 1:
            raise ValueError(f"window size must be >= 1, got {self.window_size}")

    @property
    def levels(self) -> int:
        """Depth of the tree (arbiter cells on a root-to-leaf path)."""
        if self.window_size == 1:
            return 1
        return math.ceil(math.log(self.window_size, ARBITER_FANIN))

    @property
    def cell_count(self) -> int:
        """Total number of arbiter cells in the tree."""
        cells = 0
        width = self.window_size
        while width > 1:
            width = math.ceil(width / ARBITER_FANIN)
            cells += width
        return max(cells, 1)

    def request_hops(self) -> int:
        """Arbiter cells a request traverses on the way to the root."""
        return self.levels

    def grant_hops(self) -> int:
        """Arbiter cells a grant traverses on the way back down."""
        return self.levels


def selection_tree(window_size: int) -> ArbiterTree:
    """Build the selection arbiter tree for a window."""
    return ArbiterTree(window_size=window_size)
