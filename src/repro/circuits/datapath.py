"""Bypass datapath geometry.

Section 4.4: result wires run past every functional unit (and the
register file) so that any completing instruction's value can be muxed
into any functional-unit input.  The wire length is set by the layout:
stacked functional units on either side of the register file.  Each
functional unit's bit-slice height grows with the number of result
wires routed through it (one track per result bus), so total wire
length -- and, through distributed RC, bypass delay -- grows
quadratically with issue width.

The track/height constants below are chosen so that the model's wire
lengths equal the paper's Table 1 exactly: 20 500 lambda for a 4-way
machine and 49 000 lambda for an 8-way machine.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bit-slice height of one functional unit with no bypass tracks.
FU_BASE_HEIGHT_LAMBDA = 4125.0
#: Extra bit-slice height per result-wire track routed through each FU.
TRACK_HEIGHT_LAMBDA = 250.0


@dataclass(frozen=True)
class BypassDatapath:
    """The bypass network of a machine with ``issue_width`` result buses.

    Attributes:
        issue_width: Number of functional-unit result buses (the paper
            sizes one functional unit per issue slot for this analysis).
        pipe_stages_after_result: Pipestages after the first
            result-producing stage; determines how many bypass sources
            each operand mux must accept.
    """

    issue_width: int
    pipe_stages_after_result: int = 1

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ValueError(f"issue width must be >= 1, got {self.issue_width}")
        if self.pipe_stages_after_result < 1:
            raise ValueError(
                f"pipe stages must be >= 1, got {self.pipe_stages_after_result}"
            )

    @property
    def fu_height_lambda(self) -> float:
        """Bit-slice height of one functional unit, with bypass tracks."""
        return FU_BASE_HEIGHT_LAMBDA + TRACK_HEIGHT_LAMBDA * self.issue_width

    @property
    def result_wire_length_lambda(self) -> float:
        """Length of one result wire: it spans the whole FU stack."""
        return self.issue_width * self.fu_height_lambda

    @property
    def path_count(self) -> int:
        """Number of bypass paths in a fully bypassed design.

        With issue width ``IW``, ``S`` pipestages after the first
        result-producing stage, and 2-input functional units, a full
        bypass network needs ``2 * IW**2 * S`` paths (each of the
        ``IW * S`` in-flight results to each of the ``2 * IW`` operand
        inputs) -- quadratic in issue width (Section 4.4, citing [1]).
        """
        return 2 * self.issue_width**2 * self.pipe_stages_after_result


def bypass_path_count(issue_width: int, pipe_stages_after_result: int = 1) -> int:
    """Bypass paths required for a fully bypassed design."""
    return BypassDatapath(issue_width, pipe_stages_after_result).path_count
