"""Multi-ported RAM geometry (the RAM-scheme rename map table).

Section 4.1: the map table is a register file indexed by logical
register designator.  Renaming ``IW`` instructions per cycle requires
``2 * IW`` read ports (two source operands each) and ``IW`` write ports
(one destination each).  Each port adds one wordline track to a cell's
height and one bitline track (per bit) to its width, so increasing the
issue width lengthens both the wordlines and the bitlines -- which is
why the rename delay grows (mostly linearly) with issue width.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Single-ported RAM cell dimensions in lambda (typical 6T-cell scale).
_CELL_BASE_W_LAMBDA = 30.0
_CELL_BASE_H_LAMBDA = 30.0
#: Extra lambda of cell width/height per additional port (one bitline
#: track horizontally, one wordline track vertically).
_TRACK_PITCH_LAMBDA = 8.0


@dataclass(frozen=True)
class RamGeometry:
    """Geometry of a multi-ported RAM array.

    Attributes:
        rows: Number of entries (wordlines per port).
        bits: Bits per entry (columns).
        read_ports: Number of read ports.
        write_ports: Number of write ports.
    """

    rows: int
    bits: int
    read_ports: int
    write_ports: int

    def __post_init__(self) -> None:
        for name in ("rows", "bits", "read_ports", "write_ports"):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")

    @property
    def ports(self) -> int:
        """Total port count."""
        return self.read_ports + self.write_ports

    @property
    def cell_width_lambda(self) -> float:
        """Width of one cell, including per-port bitline tracks."""
        return _CELL_BASE_W_LAMBDA + _TRACK_PITCH_LAMBDA * self.ports

    @property
    def cell_height_lambda(self) -> float:
        """Height of one cell, including per-port wordline tracks."""
        return _CELL_BASE_H_LAMBDA + _TRACK_PITCH_LAMBDA * self.ports

    @property
    def wordline_length_lambda(self) -> float:
        """Length of a wordline: it spans every column."""
        return self.bits * self.cell_width_lambda

    @property
    def bitline_length_lambda(self) -> float:
        """Length of a bitline: it spans every row."""
        return self.rows * self.cell_height_lambda

    @property
    def decoder_fanin(self) -> int:
        """Number of address bits the row decoder must decode."""
        return max(1, math.ceil(math.log2(self.rows)))


def rename_map_table_geometry(
    issue_width: int,
    logical_registers: int = 32,
    physical_registers: int = 120,
) -> RamGeometry:
    """Geometry of the rename map table for a given issue width.

    Args:
        issue_width: Instructions renamed per cycle.
        logical_registers: Entries in the table (ISA register count).
        physical_registers: Determines the width of each entry (the
            physical register designator stored per logical register).

    Raises:
        ValueError: for non-positive parameters.
    """
    if issue_width < 1:
        raise ValueError(f"issue width must be >= 1, got {issue_width}")
    if logical_registers < 2 or physical_registers < 2:
        raise ValueError("register counts must be >= 2")
    designator_bits = math.ceil(math.log2(physical_registers))
    return RamGeometry(
        rows=logical_registers,
        bits=designator_bits,
        read_ports=2 * issue_width,
        write_ports=issue_width,
    )
