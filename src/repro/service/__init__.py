"""Design-space-as-a-service: the HTTP/JSON serving tier.

The campaign cache (PR 2) and the dedup'd design-point sweep (PR 5)
made repeated design-space queries near-free; this package puts a
long-running asyncio server in front of them, so "which organization
is complexity-effective at this technology?" becomes a hot-path HTTP
request and the simulator becomes the slow backing store behind it.

Modules:

* :mod:`repro.service.schema` -- the versioned, documented response
  contract (routes, envelopes, structured errors);
* :mod:`repro.service.coalescer` -- per-cache-key request coalescing
  (N concurrent requests for one uncached cell, one simulation);
* :mod:`repro.service.app` -- the :class:`DesignSpaceService` itself:
  route handlers, the minimal HTTP layer, overload/timeout handling,
  metrics, and ledger integration;
* :mod:`repro.service.loadgen` -- the keep-alive burst client the
  load-test bench, the CI smoke job, and operators share.

The service contract is documented in ``docs/service.md`` and pinned
by the ``TestServiceDoc`` sync suite.
"""

from repro.service.app import DesignSpaceService, ServiceError
from repro.service.coalescer import Coalescer
from repro.service.schema import (
    ERROR_CODES,
    ROUTES,
    SERVICE_SCHEMA,
    envelope,
    error_body,
)

__all__ = [
    "Coalescer",
    "DesignSpaceService",
    "ERROR_CODES",
    "ROUTES",
    "SERVICE_SCHEMA",
    "ServiceError",
    "envelope",
    "error_body",
]
