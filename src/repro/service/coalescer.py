"""Per-key request coalescing for the serving tier.

Two users asking for the same uncached design-space cell must trigger
exactly one simulation.  The :class:`Coalescer` keeps one in-flight
``asyncio.Task`` per cache key: the first request for a key becomes
the *leader* and starts the work; every concurrent request for the
same key *joins* the existing task instead of spawning its own.

Joiners await the shared task through ``asyncio.shield``, so one
impatient client timing out (or disconnecting) never cancels the
simulation the other waiters -- and the cache -- are depending on.
The task is removed from the in-flight table the moment it completes,
success or failure; a failed simulation is never memoised, so the
next request retries it.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable


class Coalescer:
    """One in-flight task per key; later requests join, never fork."""

    def __init__(self) -> None:
        self._pending: dict[str, asyncio.Task] = {}

    @property
    def inflight(self) -> int:
        """Number of distinct keys currently being computed."""
        return len(self._pending)

    def is_inflight(self, key: str) -> bool:
        """True when a task for ``key`` is already running (a request
        for it would *join*, adding no new work)."""
        return key in self._pending

    def task_for(
        self, key: str, factory: Callable[[], Awaitable[Any]]
    ) -> tuple[asyncio.Task, bool]:
        """The single in-flight task for ``key``.

        Returns ``(task, leader)``: ``leader`` is True when this call
        created the task (i.e. this request triggered the work) and
        False when it joined an existing one.  ``factory`` is only
        invoked on the leader path.
        """
        task = self._pending.get(key)
        if task is not None:
            return task, False
        task = asyncio.get_running_loop().create_task(factory())
        self._pending[key] = task
        task.add_done_callback(lambda done: self._reap(key, done))
        return task, True

    def _reap(self, key: str, task: asyncio.Task) -> None:
        self._pending.pop(key, None)
        if not task.cancelled():
            # Retrieve the exception (if any) so an errored simulation
            # whose waiters all timed out never logs "exception was
            # never retrieved"; waiters that are still attached get
            # the exception through their own await.
            task.exception()

    async def join(self, key: str,
                   factory: Callable[[], Awaitable[Any]],
                   timeout: float | None = None) -> tuple[Any, bool]:
        """Await the (possibly shared) result for ``key``.

        Returns ``(result, leader)``.  The shared task is shielded:
        a per-waiter ``timeout`` raises :class:`asyncio.TimeoutError`
        for *this* waiter only, while the underlying work runs to
        completion for everyone else (and for the cache).
        """
        task, leader = self.task_for(key, factory)
        result = await asyncio.wait_for(asyncio.shield(task), timeout)
        return result, leader
