"""The design-space service: asyncio HTTP/JSON over the campaign cache.

One long-running :class:`DesignSpaceService` turns the repo's
design-space queries -- frontier, per-cell SimStats, per-machine
critical paths -- into HTTP endpoints.  The serving story:

* **Hot path**: a request whose cell is in the in-memory memo or the
  on-disk campaign cache is answered directly on the event loop --
  no worker, no queue, sub-millisecond.
* **Miss path**: uncached cells are simulated on a process pool
  (``run_in_executor`` over the campaign's picklable
  :func:`~repro.core.campaign.simulate_cell` worker).  Concurrent
  requests for the *same* cell coalesce onto one simulation
  (:mod:`repro.service.coalescer`); requests for *distinct* cells
  are admitted only while the number of in-flight simulations is
  under ``queue_depth`` -- beyond it the service sheds load with
  ``503`` + ``Retry-After`` instead of building an unbounded queue.
* **Timeouts**: a waiter that outlives ``request_timeout`` gets
  ``504``; the underlying simulation keeps running and still
  populates the cache for the next request.

Every request is measured into a
:class:`~repro.obs.metrics.MetricsRegistry` (served at
``/v1/metrics`` in Prometheus text form) and every *executed
simulation* appends one ``service`` entry to the run ledger
(:mod:`repro.obs.ledger`) -- cache hits are deliberately not
ledgered per-request, so the hot path stays hot; the coalescing test
pins "N identical concurrent misses, one ledger entry".

The response contract (envelope, error bodies, routes) lives in
:mod:`repro.service.schema` and is documented in ``docs/service.md``.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import time
from collections import OrderedDict
from typing import Callable
from urllib.parse import parse_qs, urlsplit

from repro.core import results_io
from repro.core.aggregate import mean_ipc
from repro.core.campaign import CampaignCell, ResultCache, cache_key, simulate_cell
from repro.core.design import DesignPoint
from repro.core.experiments import DEFAULT_INSTRUCTIONS
from repro.core.machines import machine_registry
from repro.delay.critical_path import critical_path
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.service.coalescer import Coalescer
from repro.service.schema import ROUTES, envelope, error_body
from repro.technology import TECHNOLOGIES, technology_by_feature_size
from repro.uarch.config import MachineConfig
from repro.uarch.scheduler import strategy_identity
from repro.uarch.stats import SimStats
from repro.workloads import WORKLOAD_NAMES
from repro.workloads.registry import (
    WORKLOAD_KINDS,
    WORKLOAD_REGISTRY,
    WORKLOAD_VERSION,
    characterize,
    workload_names,
)

#: Default bound on concurrently in-flight simulations (distinct
#: uncached cells); further misses are rejected with 503.
DEFAULT_QUEUE_DEPTH = 8

#: Default per-waiter seconds before a miss request gives up with 504.
DEFAULT_REQUEST_TIMEOUT = 120.0

#: Entries kept in the in-memory hot memo (cache-key -> SimStats).
MEMO_CAPACITY = 4096

#: Latency buckets for the request histogram: sub-millisecond memo
#: hits through multi-minute cold simulations.
REQUEST_SECONDS_BUCKETS = (0.0005, 0.002, 0.01, 0.05, 0.25, 1.0, 5.0,
                           30.0, 120.0)

#: Registry metric names the service maintains.  docs/service.md is
#: pinned to this closed list by the docs-sync suite.
SERVICE_METRIC_NAMES = (
    "service_requests_total",
    "service_request_seconds",
    "service_cache_hits_total",
    "service_cache_misses_total",
    "service_coalesced_total",
    "service_simulations_total",
    "service_rejected_total",
    "service_timeouts_total",
    "service_inflight_requests",
    "service_pending_simulations",
)

_STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def cell_cache_key(config: MachineConfig, workload: str,
                   max_instructions: int) -> str:
    """The campaign cache key of one service cell.

    Reads :data:`repro.core.results_io.FORMAT_VERSION` at *call time*
    (the campaign function's default is bound at import time), so a
    stats-format bump immediately invalidates every service key --
    the schema-sensitivity test pins that a bumped server can never
    serve cells cached under the previous format.
    """
    return cache_key(config, workload, max_instructions,
                     stats_format=results_io.FORMAT_VERSION)


class ServiceError(Exception):
    """A client-visible failure, rendered as a structured error body."""

    def __init__(self, status: int, message: str,
                 detail: dict | None = None,
                 retry_after: float | None = None,
                 headers: dict | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.detail = detail
        self.headers = dict(headers or {})
        if retry_after is not None:
            self.headers["Retry-After"] = str(max(1, round(retry_after)))


class DesignSpaceService:
    """The serving tier over the campaign cache.

    Args:
        machines: name -> config grid served (default: the full
            :data:`~repro.core.machines.MACHINE_REGISTRY`).
        cache: campaign :class:`ResultCache` (or ``cache_dir`` to
            build one; ``cache=None`` with ``cache_dir=None`` serves
            memo-only, for tests).
        jobs: worker processes in the simulation pool.
        queue_depth: max concurrently in-flight simulations before
            misses are shed with 503.
        request_timeout: per-waiter seconds before a miss answers 504.
        instructions: default per-cell instruction budget.
        registry: metrics registry (default: a private one).
        ledger_root: run-ledger directory override (None = resolve
            ``REPRO_LEDGER_DIR`` / default, as everywhere else).
        runner: cell executor override (tests inject slow/failing
            cells); defaults to the campaign's ``simulate_cell``.
        executor: pre-built executor override (tests pass a thread
            pool so non-picklable runners work); defaults to a lazy
            ``ProcessPoolExecutor(jobs)``.
    """

    def __init__(
        self,
        machines: dict[str, MachineConfig] | None = None,
        cache: ResultCache | None = None,
        cache_dir: str | None = ".repro-cache",
        jobs: int = 1,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        instructions: int = DEFAULT_INSTRUCTIONS,
        registry: MetricsRegistry | None = None,
        ledger_root: str | None = None,
        runner: Callable[[CampaignCell], dict] | None = None,
        executor: concurrent.futures.Executor | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.machines = dict(machines if machines is not None
                             else machine_registry())
        if cache is None and cache_dir is not None:
            cache = ResultCache(cache_dir)
        self.cache = cache
        self.jobs = jobs
        self.queue_depth = queue_depth
        self.request_timeout = request_timeout
        self.default_instructions = instructions
        self.registry = registry if registry is not None else MetricsRegistry()
        self.ledger_root = ledger_root
        self.runner = runner or simulate_cell
        self._executor = executor
        self._owns_executor = executor is None
        self.coalescer = Coalescer()
        self._memo: OrderedDict[str, SimStats] = OrderedDict()
        self._started = time.time()
        self._sim_seconds_total = 0.0
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle -------------------------------------------------------

    def _ensure_executor(self) -> concurrent.futures.Executor:
        if self._executor is None:
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.jobs
            )
        return self._executor

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._executor is not None and self._owns_executor:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> asyncio.AbstractServer:
        """Bind and return the listening server (port 0 = ephemeral)."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        return self._server

    async def serve(self, host: str = "127.0.0.1", port: int = 8787) -> None:
        """Bind and serve until cancelled (the ``repro serve`` loop)."""
        server = await self.start(host, port)
        async with server:
            await server.serve_forever()

    # -- metrics helpers -------------------------------------------------

    def _count_request(self, route: str, status: int,
                       seconds: float) -> None:
        self.registry.counter(
            "service_requests_total", "HTTP requests answered"
        ).inc(1, {"route": route, "status": str(status)})
        self.registry.histogram(
            "service_request_seconds", "Request latency",
            buckets=REQUEST_SECONDS_BUCKETS,
        ).observe(seconds, {"route": route})

    def _retry_after_hint(self) -> float:
        """Seconds a shed client should back off: the mean observed
        simulation time (1s floor) -- honest, not magic."""
        sims = self.registry.value("service_simulations_total")
        if sims <= 0:
            return 1.0
        return max(1.0, self._sim_seconds_total / sims)

    # -- cell resolution (memo -> cache -> coalesced simulation) ---------

    def _memo_get(self, key: str) -> SimStats | None:
        stats = self._memo.get(key)
        if stats is not None:
            self._memo.move_to_end(key)
        return stats

    def _memo_put(self, key: str, stats: SimStats) -> None:
        self._memo[key] = stats
        self._memo.move_to_end(key)
        while len(self._memo) > MEMO_CAPACITY:
            self._memo.popitem(last=False)

    async def cell_stats(self, machine: str, workload: str,
                         max_instructions: int) -> tuple[SimStats, str]:
        """Resolve one cell; returns ``(stats, source)``.

        ``source`` is ``"memory"``, ``"cache"``, or ``"simulated"``
        (coalesced joiners also report ``"simulated"``).

        Raises:
            ServiceError: 503 when the cell is uncached and the
                simulation queue is full; 504 when this waiter's
                ``request_timeout`` elapses first.
        """
        config = self.machines[machine]
        key = cell_cache_key(config, workload, max_instructions)
        stats = self._memo_get(key)
        if stats is not None:
            self.registry.counter(
                "service_cache_hits_total", "Cells served from cache"
            ).inc(1, {"tier": "memory"})
            return stats, "memory"
        if self.cache is not None:
            stats = self.cache.load(key)
            if stats is not None:
                self._memo_put(key, stats)
                self.registry.counter(
                    "service_cache_hits_total", "Cells served from cache"
                ).inc(1, {"tier": "disk"})
                return stats, "cache"
        self.registry.counter(
            "service_cache_misses_total", "Cells that required simulation"
        ).inc()
        # Admission control: joining an in-flight simulation is free;
        # *new* work is bounded by queue_depth.
        if (not self.coalescer.is_inflight(key)
                and self.coalescer.inflight >= self.queue_depth):
            self.registry.counter(
                "service_rejected_total", "Misses shed with 503"
            ).inc()
            raise ServiceError(
                503,
                f"simulation queue full ({self.coalescer.inflight} "
                f"in flight, depth {self.queue_depth}); retry later",
                detail={"pending": self.coalescer.inflight,
                        "queue_depth": self.queue_depth},
                retry_after=self._retry_after_hint(),
            )
        cell = CampaignCell(machine, config, workload, max_instructions)
        try:
            stats, leader = await self.coalescer.join(
                key,
                lambda: self._simulate(cell, key),
                timeout=self.request_timeout,
            )
        except asyncio.TimeoutError:
            self.registry.counter(
                "service_timeouts_total", "Waiters that hit 504"
            ).inc()
            raise ServiceError(
                504,
                f"simulation exceeded the {self.request_timeout:g}s "
                "request timeout (it continues in the background and "
                "will be cached)",
                detail={"machine": machine, "workload": workload,
                        "instructions": max_instructions},
            ) from None
        if not leader:
            self.registry.counter(
                "service_coalesced_total",
                "Requests that joined an in-flight simulation",
            ).inc()
        return stats, "simulated"

    async def _simulate(self, cell: CampaignCell, key: str) -> SimStats:
        """Leader path: run one cell on the pool, cache and ledger it."""
        loop = asyncio.get_running_loop()
        self.registry.gauge(
            "service_pending_simulations", "In-flight simulations"
        ).set(self.coalescer.inflight)
        payload = await loop.run_in_executor(
            self._ensure_executor(), self.runner, cell
        )
        stats = SimStats.from_dict(payload["stats"])
        seconds = float(payload.get("seconds", 0.0))
        self._sim_seconds_total += seconds
        if self.cache is not None:
            self.cache.store(key, stats)
        self._memo_put(key, stats)
        self.registry.counter(
            "service_simulations_total", "Simulations executed"
        ).inc()
        snapshot = payload.get("metrics")
        if snapshot:
            try:
                self.registry.merge_snapshot(
                    MetricsSnapshot.from_dict(snapshot))
            except ValueError:
                pass  # foreign worker payloads are not load-bearing
        self._ledger_simulation(cell, key, stats, seconds)
        return stats

    def _ledger_simulation(self, cell: CampaignCell, key: str,
                           stats: SimStats, seconds: float) -> None:
        """One ledger entry per *executed* simulation (never per hit)."""
        from repro.obs.ledger import record_run

        try:
            record_run(
                "service",
                wall_seconds=seconds,
                instructions_per_second=(stats.committed / seconds
                                         if seconds > 0 else 0.0),
                simulated_cells=1,
                cell_count=1,
                config_hash=key,
                extra={"machine": cell.machine, "workload": cell.workload,
                       "instructions": cell.max_instructions},
                root=self.ledger_root,
            )
        except Exception:  # pragma: no cover - environment-specific
            pass  # the ledger is advisory, never availability-bearing

    # -- parameter validation --------------------------------------------

    def _require_machine(self, name: str) -> MachineConfig:
        config = self.machines.get(name)
        if config is None:
            raise ServiceError(
                404, f"unknown machine {name!r}",
                detail={"known": sorted(self.machines)},
            )
        return config

    @staticmethod
    def _require_workload(name: str) -> str:
        if name not in WORKLOAD_REGISTRY:
            raise ServiceError(
                404, f"unknown workload {name!r}",
                detail={"known": list(workload_names())},
            )
        return name

    @staticmethod
    def _techs_param(value: str):
        if value == "all":
            return list(TECHNOLOGIES)
        try:
            feature = float(value)
        except ValueError:
            raise ServiceError(
                400, f"tech must be a feature size or 'all', got {value!r}"
            ) from None
        try:
            return [technology_by_feature_size(feature)]
        except (KeyError, ValueError):
            raise ServiceError(
                404, f"unknown technology node {value!r}",
                detail={"known": [t.feature_size_um for t in TECHNOLOGIES]},
            ) from None

    def _int_param(self, params: dict, name: str, default: int) -> int:
        raw = params.get(name)
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError:
            raise ServiceError(
                400, f"{name} must be an integer, got {raw!r}"
            ) from None
        if value <= 0:
            raise ServiceError(400, f"{name} must be positive, got {value}")
        return value

    @staticmethod
    def _parse_query(query: str, allowed: tuple[str, ...]) -> dict[str, str]:
        """Single-valued query params; unknown or repeated keys are 400."""
        parsed = parse_qs(query, keep_blank_values=True,
                          strict_parsing=False)
        params: dict[str, str] = {}
        for key, values in parsed.items():
            if key not in allowed:
                raise ServiceError(
                    400, f"unknown query parameter {key!r}",
                    detail={"allowed": list(allowed)},
                )
            if len(values) != 1:
                raise ServiceError(400, f"repeated query parameter {key!r}")
            params[key] = values[0]
        return params

    # -- endpoint handlers -----------------------------------------------

    async def _route_healthz(self, params: dict) -> dict:
        return envelope({
            "status": "ok",
            "uptime_seconds": round(time.time() - self._started, 3),
            "machines": len(self.machines),
            "workloads": list(WORKLOAD_NAMES),
            "registered_workloads": len(WORKLOAD_REGISTRY),
            "jobs": self.jobs,
            "queue_depth": self.queue_depth,
            "pending_simulations": self.coalescer.inflight,
            "default_instructions": self.default_instructions,
            "cache_dir": str(self.cache.root) if self.cache else None,
        })

    async def _route_machines(self, params: dict) -> dict:
        entries = []
        for name in sorted(self.machines):
            config = self.machines[name]
            entries.append({
                "name": name,
                "machine": config.name,
                "clusters": len(config.clusters),
                "total_capacity": config.total_capacity,
                "steering": config.steering.value,
                "strategy": strategy_identity(config),
            })
        return envelope({
            "machines": entries,
            "workloads": list(WORKLOAD_NAMES),
            "default_instructions": self.default_instructions,
        })

    async def _route_workloads(self, params: dict) -> dict:
        """The workload registry: listing, identity, characterization.

        ``?kind=`` filters by workload kind; ``?workload=<name>``
        additionally runs (and returns) that one workload's trace
        characterization at ``?n=`` instructions (bounded separately
        from the simulation budget -- profiling is trace generation
        plus analysis, not simulation).
        """
        kind = params.get("kind")
        if kind is not None and kind not in WORKLOAD_KINDS:
            raise ServiceError(
                400, f"unknown workload kind {kind!r}",
                detail={"known": list(WORKLOAD_KINDS)},
            )
        entries = []
        for name in workload_names(kind):
            workload = WORKLOAD_REGISTRY[name]
            entries.append({
                "name": name,
                "kind": workload.kind,
                "description": workload.description,
                "fingerprint": workload.fingerprint(),
            })
        data = {
            "workloads": entries,
            "count": len(entries),
            "workload_version": WORKLOAD_VERSION,
        }
        if "workload" in params:
            name = self._require_workload(params["workload"])
            budget = self._int_param(params, "n", 5_000)
            data["profile"] = characterize(name, budget)
        return envelope(data)

    async def _route_cell(self, params: dict) -> dict:
        for required in ("machine", "workload"):
            if required not in params:
                raise ServiceError(
                    400, f"missing required query parameter {required!r}"
                )
        config = self._require_machine(params["machine"])
        workload = self._require_workload(params["workload"])
        budget = self._int_param(params, "n", self.default_instructions)
        stats, source = await self.cell_stats(
            params["machine"], workload, budget
        )
        data = {
            "machine": params["machine"],
            "workload": workload,
            "instructions": budget,
            "source": source,
            "cache_key": cell_cache_key(config, workload, budget),
        }
        if "tech" in params:
            techs = self._techs_param(params["tech"])
            clocked = []
            for tech in techs:
                point = DesignPoint(config=config, tech=tech)
                annotated = point.annotate(stats)
                path = point.critical_path()
                clocked.append({
                    "tech": tech.name,
                    "clock_ps": round(path.clock_ps, 3),
                    "frequency_ghz": round(path.frequency_ghz, 4),
                    "bips": round(annotated.bips, 4),
                    "bounded_by": path.bounding_structure.label,
                })
            data["clocked"] = clocked
        data["stats"] = stats.to_dict()
        return envelope(data)

    async def _route_frontier(self, params: dict) -> dict:
        techs = self._techs_param(params.get("tech", "0.18"))
        budget = self._int_param(params, "n", self.default_instructions)
        if "machines" in params:
            names = [n for n in params["machines"].split(",") if n]
            if not names:
                raise ServiceError(400, "machines must name at least one "
                                        "registered shape")
            for name in names:
                self._require_machine(name)
        else:
            names = sorted(self.machines)
        # Resolve every (machine, workload) cell concurrently, but pace
        # this request's own misses under the queue depth -- one cold
        # frontier must not overload-reject itself; 503 is reserved for
        # pressure from *other* concurrent traffic.
        cells = [(name, workload) for name in names
                 for workload in WORKLOAD_NAMES]
        limit = asyncio.Semaphore(max(1, min(self.jobs, self.queue_depth)))

        async def resolve(name: str, workload: str):
            async with limit:
                return await self.cell_stats(name, workload, budget)

        resolved = await asyncio.gather(*[
            resolve(name, workload) for name, workload in cells
        ])
        per_machine: dict[str, dict[str, SimStats]] = {}
        sources: dict[str, int] = {}
        for (name, workload), (stats, source) in zip(cells, resolved):
            per_machine.setdefault(name, {})[workload] = stats
            sources[source] = sources.get(source, 0) + 1
        points = []
        for tech in techs:
            for name in names:
                config = self.machines[name]
                path = critical_path(config, tech)
                ipc = mean_ipc(per_machine[name])
                frequency = path.frequency_ghz
                points.append({
                    "label": f"{name}@{tech.name}",
                    "machine": name,
                    "tech": tech.name,
                    "window_size": config.total_capacity,
                    "mean_ipc": round(ipc, 4),
                    "clock_ps": round(path.clock_ps, 3),
                    "frequency_ghz": round(frequency, 4),
                    "bips": round(ipc * frequency, 4),
                    "bounded_by": path.bounding_structure.label,
                })
        return envelope({
            "instructions": budget,
            "workloads": list(WORKLOAD_NAMES),
            "points": points,
            "sources": dict(sorted(sources.items())),
        })

    async def _route_delay(self, machine: str, params: dict) -> dict:
        config = self._require_machine(machine)
        techs = self._techs_param(params.get("tech", "all"))
        breakdowns = []
        for tech in techs:
            path = critical_path(config, tech)
            breakdowns.append({
                "tech": tech.name,
                "clock_ps": round(path.clock_ps, 3),
                "frequency_ghz": round(path.frequency_ghz, 4),
                "bounded_by": path.bounding_structure.label,
                "structures": [
                    {"label": label, "delay_ps": round(delay, 3),
                     "flags": flags}
                    for label, delay, flags in path.rows()
                ],
            })
        return envelope({
            "machine": machine,
            "config": config.name,
            "techs": breakdowns,
        })

    # -- HTTP dispatch ---------------------------------------------------

    async def handle_http(
        self, method: str, target: str
    ) -> tuple[int, dict[str, str], bytes]:
        """One request -> ``(status, headers, body)``.

        This is the full service behaviour minus the socket layer;
        the tests drive it directly and the connection handler wraps
        it, so both see identical semantics.
        """
        started = time.perf_counter()
        inflight = self.registry.gauge(
            "service_inflight_requests", "Requests currently being handled"
        )
        inflight.set(inflight.value() + 1)
        split = urlsplit(target)
        route = self._route_label(split.path)
        try:
            status, headers, body = await self._dispatch(
                method, split.path, split.query
            )
        except ServiceError as error:
            status = error.status
            headers = dict(error.headers)
            headers["Content-Type"] = "application/json; charset=utf-8"
            body = _json_bytes(error_body(error.status, error.message,
                                          error.detail))
        except Exception as error:  # noqa: BLE001 - the server must answer
            status = 500
            headers = {"Content-Type": "application/json; charset=utf-8"}
            body = _json_bytes(error_body(
                500, f"{type(error).__name__}: {error}"
            ))
        finally:
            inflight.set(max(0.0, inflight.value() - 1))
        self._count_request(route, status, time.perf_counter() - started)
        if method == "HEAD":
            body = b""
        return status, headers, body

    def _route_label(self, path: str) -> str:
        """The matched route pattern (bounded metric cardinality)."""
        if path.startswith("/v1/delay/"):
            return "/v1/delay/<machine>"
        if path in ("/v1/healthz", "/v1/machines", "/v1/workloads",
                    "/v1/frontier", "/v1/cell", "/v1/metrics"):
            return path
        return "<unknown>"

    async def _dispatch(
        self, method: str, path: str, query: str
    ) -> tuple[int, dict[str, str], bytes]:
        if method not in ("GET", "HEAD"):
            raise ServiceError(
                405, f"method {method} not allowed (read-only service)",
                headers={"Allow": "GET, HEAD"},
            )
        if path == "/v1/metrics":
            from repro.obs.export import prometheus_text

            text = prometheus_text(self.registry.snapshot())
            return 200, {
                "Content-Type": "text/plain; version=0.0.4; charset=utf-8"
            }, text.encode("utf-8")
        json_headers = {"Content-Type": "application/json; charset=utf-8"}
        if path == "/v1/healthz":
            params = self._parse_query(query, ())
            return 200, json_headers, _json_bytes(
                await self._route_healthz(params))
        if path == "/v1/machines":
            params = self._parse_query(query, ())
            return 200, json_headers, _json_bytes(
                await self._route_machines(params))
        if path == "/v1/workloads":
            params = self._parse_query(query, ("kind", "workload", "n"))
            return 200, json_headers, _json_bytes(
                await self._route_workloads(params))
        if path == "/v1/cell":
            params = self._parse_query(
                query, ("machine", "workload", "n", "tech"))
            return 200, json_headers, _json_bytes(
                await self._route_cell(params))
        if path == "/v1/frontier":
            params = self._parse_query(query, ("tech", "n", "machines"))
            return 200, json_headers, _json_bytes(
                await self._route_frontier(params))
        if path.startswith("/v1/delay/"):
            params = self._parse_query(query, ("tech",))
            machine = path[len("/v1/delay/"):]
            return 200, json_headers, _json_bytes(
                await self._route_delay(machine, params))
        raise ServiceError(
            404, f"no route for {path!r}",
            detail={"routes": list(ROUTES)},
        )

    # -- the socket layer ------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        """Minimal HTTP/1.1 with keep-alive; one request at a time."""
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or request_line in (b"\r\n", b"\n"):
                    break
                try:
                    method, target, version = (
                        request_line.decode("latin-1").split()
                    )
                except ValueError:
                    writer.write(_render(400, {
                        "Content-Type": "application/json; charset=utf-8",
                    }, _json_bytes(error_body(400, "malformed request line")),
                        keep_alive=False))
                    await writer.drain()
                    break
                keep_alive = version != "HTTP/1.0"
                content_length = 0
                bad_headers = False
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, sep, value = line.decode("latin-1").partition(":")
                    if not sep:
                        bad_headers = True
                        continue
                    name = name.strip().lower()
                    value = value.strip()
                    if name == "connection":
                        keep_alive = value.lower() != "close"
                    elif name == "content-length":
                        try:
                            content_length = int(value)
                        except ValueError:
                            bad_headers = True
                if bad_headers:
                    writer.write(_render(400, {
                        "Content-Type": "application/json; charset=utf-8",
                    }, _json_bytes(error_body(400, "malformed header")),
                        keep_alive=False))
                    await writer.drain()
                    break
                if content_length:
                    await reader.readexactly(content_length)
                status, headers, body = await self.handle_http(method, target)
                writer.write(_render(status, headers, body,
                                     keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        except asyncio.CancelledError:
            # Server shutdown while this connection idled in readline();
            # exit quietly (stdlib streams would otherwise log the
            # retrieved CancelledError from its connection_made hook).
            pass
        finally:
            writer.close()


def _json_bytes(payload: dict) -> bytes:
    """Deterministic response serialisation (sorted keys)."""
    return json.dumps(payload, sort_keys=True,
                      ensure_ascii=False).encode("utf-8")


def _render(status: int, headers: dict[str, str], body: bytes,
            keep_alive: bool) -> bytes:
    """Assemble one HTTP/1.1 response."""
    phrase = _STATUS_PHRASES.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {phrase}"]
    out = dict(headers)
    out.setdefault("Content-Type", "application/json; charset=utf-8")
    out["Content-Length"] = str(len(body))
    out["Connection"] = "keep-alive" if keep_alive else "close"
    for name, value in out.items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body
