"""The service contract: routes, response envelopes, error bodies.

Everything a client can rely on lives here, in one place, so the
documentation (``docs/service.md``) and the doc-sync tests pin a
single source of truth:

* :data:`ROUTES` -- the closed list of endpoint patterns;
* :data:`SERVICE_SCHEMA` -- the response envelope version, bumped on
  any incompatible change to the JSON layout;
* every JSON response additionally carries ``stats_format`` --
  :data:`repro.core.results_io.FORMAT_VERSION` *read at call time* --
  so a stats-format bump is visible in every payload and can never be
  silently mixed with cached cells of the previous format (the cell
  cache key hashes the same version; see
  :func:`repro.service.app.cell_cache_key`).

Errors are structured, never bare strings::

    {"schema": 1, "stats_format": 3,
     "error": {"status": 404, "code": "not_found",
               "message": "unknown machine 'quantum'",
               "detail": {"known": ["baseline", ...]}}}
"""

from __future__ import annotations

from repro.core import results_io

#: Response envelope version (bumped on incompatible layout changes).
SERVICE_SCHEMA = 1

#: The closed list of endpoint patterns the service answers.  The
#: docs-sync suite asserts docs/service.md documents exactly these.
ROUTES = (
    "/v1/healthz",
    "/v1/machines",
    "/v1/workloads",
    "/v1/frontier",
    "/v1/cell",
    "/v1/delay/<machine>",
    "/v1/metrics",
)

#: HTTP status -> stable machine-readable error code.
ERROR_CODES = {
    400: "bad_request",
    404: "not_found",
    405: "method_not_allowed",
    500: "internal_error",
    503: "overloaded",
    504: "simulation_timeout",
}


def envelope(data: dict) -> dict:
    """Wrap endpoint data in the versioned response envelope.

    ``stats_format`` is read from :mod:`repro.core.results_io` at
    call time (not import time), so a ``FORMAT_VERSION`` bump changes
    every live response immediately -- the schema-sensitivity test
    pins this.
    """
    payload = {
        "schema": SERVICE_SCHEMA,
        "stats_format": results_io.FORMAT_VERSION,
    }
    payload.update(data)
    return payload


def error_body(status: int, message: str,
               detail: dict | None = None) -> dict:
    """A structured error response for ``status``.

    Raises:
        KeyError: for a status outside :data:`ERROR_CODES` -- an
            internal bug, not a client-visible condition.
    """
    error: dict = {
        "status": status,
        "code": ERROR_CODES[status],
        "message": message,
    }
    if detail is not None:
        error["detail"] = detail
    return envelope({"error": error})
