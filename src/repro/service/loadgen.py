"""Keep-alive load generation against a running design-space service.

One small asyncio client, shared by three consumers so they all
measure the same thing:

* ``benchmarks/bench_service.py`` -- the cold/warm queries-per-second
  bench behind ``BENCH_service.json``;
* ``scripts/service_burst.py`` -- the CI smoke burst that asserts a
  warm server answers without simulating;
* operators -- quick ad-hoc "is it fast?" checks from a REPL.

The client is deliberately minimal: HTTP/1.1 over persistent
connections, ``concurrency`` workers each owning one socket, requests
round-robined over ``paths``.  No external dependencies.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field


@dataclass
class BurstResult:
    """Outcome of one :func:`run_burst` call."""

    requests: int
    seconds: float
    statuses: dict[int, int] = field(default_factory=dict)

    @property
    def qps(self) -> float:
        """Completed requests per wall-clock second."""
        return self.requests / self.seconds if self.seconds > 0 else 0.0

    @property
    def all_ok(self) -> bool:
        """True when every request answered 200."""
        return self.statuses.get(200, 0) == self.requests

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "seconds": round(self.seconds, 6),
            "qps": round(self.qps, 2),
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
        }


async def _read_response(reader: asyncio.StreamReader) -> tuple[int, bytes]:
    """Read one HTTP/1.1 response off a persistent connection."""
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection")
    status = int(status_line.split()[1])
    content_length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            content_length = int(value.strip())
    body = await reader.readexactly(content_length) if content_length else b""
    return status, body


def _request_bytes(host: str, path: str) -> bytes:
    return (f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
            "Connection: keep-alive\r\n\r\n").encode("latin-1")


async def get_json(host: str, port: int, path: str,
                   timeout: float = 30.0) -> tuple[int, dict]:
    """One request on a fresh connection; returns ``(status, payload)``.

    ``payload`` is the decoded JSON body (or ``{"raw": text}`` for
    non-JSON responses such as ``/v1/metrics``).
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(_request_bytes(host, path))
        await writer.drain()
        status, body = await asyncio.wait_for(
            _read_response(reader), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass
    text = body.decode("utf-8", errors="replace")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = {"raw": text}
    return status, payload


async def _worker(host: str, port: int, paths: list[str], count: int,
                  offset: int, statuses: dict[int, int]) -> None:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for i in range(count):
            path = paths[(offset + i) % len(paths)]
            writer.write(_request_bytes(host, path))
            await writer.drain()
            status, _ = await _read_response(reader)
            statuses[status] = statuses.get(status, 0) + 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass


async def run_burst(host: str, port: int, paths: list[str],
                    requests: int = 1000,
                    concurrency: int = 8) -> BurstResult:
    """Fire ``requests`` keep-alive GETs across ``concurrency``
    persistent connections; returns throughput and status counts."""
    if not paths:
        raise ValueError("paths must name at least one target")
    concurrency = max(1, min(concurrency, requests))
    statuses: dict[int, int] = {}
    share, remainder = divmod(requests, concurrency)
    counts = [share + (1 if i < remainder else 0)
              for i in range(concurrency)]
    started = time.perf_counter()
    await asyncio.gather(*[
        _worker(host, port, paths, count, i * share, statuses)
        for i, count in enumerate(counts) if count
    ])
    seconds = time.perf_counter() - started
    return BurstResult(requests=requests, seconds=seconds,
                       statuses=statuses)
