"""CMOS technology parameters and first-order circuit physics.

The paper simulated its circuits in Hspice for three feature sizes
(0.8 um, 0.35 um, and 0.18 um) using process decks tabulated in the
companion technical report.  Those decks are not available, so this
package provides the two ingredients the paper's delay analysis actually
depends on:

* wire delay, which is governed by the metal resistance and capacitance
  per unit length and is *constant across technologies* under the
  paper's scaling model (Section 4.4, Table 1); and
* logic delay, which shrinks with feature size; the per-technology
  speed factors are calibrated in :mod:`repro.delay.calibration`.
"""

from repro.technology.params import (
    FEATURE_SIZES_UM,
    TECH_018,
    TECH_035,
    TECH_080,
    TECHNOLOGIES,
    Technology,
    technology_by_feature_size,
)
from repro.technology.wires import WireModel, distributed_rc_delay_ps
from repro.technology.gates import GateLibrary, fanout4_chain_delay

__all__ = [
    "FEATURE_SIZES_UM",
    "TECH_018",
    "TECH_035",
    "TECH_080",
    "TECHNOLOGIES",
    "Technology",
    "technology_by_feature_size",
    "WireModel",
    "distributed_rc_delay_ps",
    "GateLibrary",
    "fanout4_chain_delay",
]
