"""First-order wire delay models.

The paper treats long result/tag wires as distributed RC lines:
``delay = 0.5 * Rmetal * Cmetal * L**2`` for a wire of length ``L``
(Section 4.4).  Shorter wires inside array structures contribute both a
distributed-RC term and a lumped load on their drivers; the models in
:mod:`repro.delay` account for the lumped part through their calibrated
logic constants, so this module only needs the distributed term.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.technology.params import Technology


def distributed_rc_delay_ps(tech: Technology, length_lambda: float) -> float:
    """Distributed-RC delay of a metal wire, in picoseconds.

    Args:
        tech: Process technology (the RC product is technology-invariant
            under the paper's scaling model, but the signature keeps the
            dependence explicit).
        length_lambda: Wire length in lambda.

    Returns:
        ``0.5 * R * C * L**2`` in ps.

    Raises:
        ValueError: if ``length_lambda`` is negative.
    """
    if length_lambda < 0:
        raise ValueError(f"wire length must be non-negative, got {length_lambda}")
    return 0.5 * tech.rc_per_lambda_sq_ps * length_lambda**2


@dataclass(frozen=True)
class WireModel:
    """A metal wire of a given length in a given technology.

    Convenience wrapper over :func:`distributed_rc_delay_ps` that also
    exposes total resistance and capacitance, which the delay models use
    when a wire loads a logic stage rather than being driven end-to-end.
    """

    tech: Technology
    length_lambda: float

    def __post_init__(self) -> None:
        if self.length_lambda < 0:
            raise ValueError(f"wire length must be non-negative, got {self.length_lambda}")

    @property
    def resistance_ohm(self) -> float:
        """Total wire resistance in ohms."""
        return self.tech.r_metal_ohm_per_lambda * self.length_lambda

    @property
    def capacitance_ff(self) -> float:
        """Total wire capacitance in femtofarads."""
        return self.tech.c_metal_ff_per_lambda * self.length_lambda

    @property
    def distributed_delay_ps(self) -> float:
        """Distributed-RC (end-to-end) delay in picoseconds."""
        return distributed_rc_delay_ps(self.tech, self.length_lambda)
