"""Technology parameter database for the three studied feature sizes.

The paper expresses all layout dimensions in lambda (half the feature
size) so that a single layout can be shrunk across technologies.  Under
its scaling model, wire delay per lambda**2 is constant across the three
technologies (Section 4.4: "The delays are the same for the three
technologies since wire delays are constant according to the scaling
model assumed"), while logic delay shrinks with feature size.

The product ``r_metal * c_metal`` is derived exactly from Table 1 of the
paper: a 20500-lambda bypass wire has a distributed-RC delay of
184.9 ps, so ``0.5 * R * C * L**2 = 184.9 ps`` gives
``R * C = 2 * 184.9 / 20500**2`` ps per lambda**2.
"""

from __future__ import annotations

from dataclasses import dataclass

#: ps/lambda^2 -- derived from Table 1 (see module docstring).
_RC_PER_LAMBDA_SQ = 2.0 * 184.9 / (20500.0**2)

#: Split of the RC product into separate R and C values.  Only the
#: product matters for distributed-RC delay; the split is chosen to be
#: representative of mid-1990s metal layers (about 0.03 ohm and
#: 0.03 fF per lambda) while preserving the product exactly.
_R_METAL_OHM_PER_LAMBDA = 0.0294
_C_METAL_FF_PER_LAMBDA = 1e3 * _RC_PER_LAMBDA_SQ / _R_METAL_OHM_PER_LAMBDA


@dataclass(frozen=True)
class Technology:
    """A CMOS process technology point.

    Attributes:
        name: Human-readable identifier, e.g. ``"0.18um"``.
        feature_size_um: Drawn feature size in micrometres.
        logic_speed: Relative logic delay versus the 0.18 um process
            (0.18 um == 1.0; larger is slower).  This is the generic
            technology-wide factor; individual delay models calibrate
            their own per-structure factors on top of it.
    """

    name: str
    feature_size_um: float
    logic_speed: float

    @property
    def lambda_um(self) -> float:
        """Lambda (half the feature size) in micrometres."""
        return self.feature_size_um / 2.0

    @property
    def r_metal_ohm_per_lambda(self) -> float:
        """Metal wire resistance per lambda of length (ohms)."""
        return _R_METAL_OHM_PER_LAMBDA

    @property
    def c_metal_ff_per_lambda(self) -> float:
        """Metal wire parasitic capacitance per lambda of length (fF)."""
        return _C_METAL_FF_PER_LAMBDA

    @property
    def rc_per_lambda_sq_ps(self) -> float:
        """Distributed RC product in ps per lambda**2.

        Constant across the three technologies under the paper's
        scaling model.
        """
        return _RC_PER_LAMBDA_SQ

    def scale_logic_delay(self, delay_at_018_ps: float) -> float:
        """Scale a pure-logic delay quoted at 0.18 um to this process."""
        return delay_at_018_ps * self.logic_speed

    def __str__(self) -> str:
        return self.name


# Generic logic-speed factors.  The paper's structures scale by factors
# of roughly 4.4x-5.0x from 0.18 um to 0.8 um (e.g. rename delay for a
# 4-wide machine is 351.0 ps at 0.18 um and 1577.9 ps at 0.8 um, a
# factor of 4.50).  The generic factors below use the rename-logic
# scaling, which tracks raw gate speed most closely; wakeup/select
# models calibrate their own structure-specific factors.
TECH_080 = Technology(name="0.8um", feature_size_um=0.80, logic_speed=1577.9 / 351.0)
TECH_035 = Technology(name="0.35um", feature_size_um=0.35, logic_speed=627.2 / 351.0)
TECH_018 = Technology(name="0.18um", feature_size_um=0.18, logic_speed=1.0)

#: All technology points studied in the paper, largest feature first.
TECHNOLOGIES: tuple[Technology, ...] = (TECH_080, TECH_035, TECH_018)

#: Feature sizes in micrometres, largest first (paper ordering).
FEATURE_SIZES_UM: tuple[float, ...] = tuple(t.feature_size_um for t in TECHNOLOGIES)

_BY_FEATURE = {t.feature_size_um: t for t in TECHNOLOGIES}


def technology_by_feature_size(feature_size_um: float) -> Technology:
    """Look up one of the three studied technologies by feature size.

    Args:
        feature_size_um: 0.8, 0.35, or 0.18.

    Raises:
        KeyError: if the feature size is not one of the studied points.
    """
    try:
        return _BY_FEATURE[feature_size_um]
    except KeyError:
        known = ", ".join(str(f) for f in FEATURE_SIZES_UM)
        raise KeyError(
            f"no technology with feature size {feature_size_um} um (known: {known})"
        ) from None
