"""Logic (gate) delay estimates.

The paper's absolute logic delays come from Hspice runs of sized
transistor networks.  For structural reasoning the delay models only
need relative logic delays with sensible technology scaling, so this
module provides a small logical-effort-style library: a per-technology
base delay ``tau`` and standard gate parasitic/effort values.  The
fitted constants in :mod:`repro.delay.calibration` supersede these
estimates wherever the paper publishes a number; the library is used by
the circuit block models for quantities the paper does not tabulate
(e.g. arbiter-cell composition) and by tests as a sanity cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.technology.params import Technology

#: Base inverter delay (tau) at 0.18 um, in picoseconds.  Chosen so that
#: a fanout-of-4 inverter (delay ~ 5 tau) is about 90 ps, which is
#: representative of a late-1990s 0.18 um process and consistent with
#: the magnitude of the paper's 0.18 um logic delays.
_TAU_018_PS = 18.0

#: Logical effort (g) and parasitic delay (p) per gate type, from the
#: standard Sutherland/Sproull tables (2-input NAND g=4/3 p=2, etc.).
_GATE_TABLE = {
    "inv": (1.0, 1.0),
    "nand2": (4.0 / 3.0, 2.0),
    "nand3": (5.0 / 3.0, 3.0),
    "nand4": (2.0, 4.0),
    "nor2": (5.0 / 3.0, 2.0),
    "nor3": (7.0 / 3.0, 3.0),
    "nor4": (3.0, 4.0),
}


@dataclass(frozen=True)
class GateLibrary:
    """Logical-effort gate delay estimates for one technology."""

    tech: Technology

    @property
    def tau_ps(self) -> float:
        """Base inverter delay for this technology in picoseconds."""
        return _TAU_018_PS * self.tech.logic_speed

    def gate_delay_ps(self, gate: str, electrical_effort: float = 4.0) -> float:
        """Delay of one gate stage driving the given electrical effort.

        Args:
            gate: One of ``inv``, ``nand2``..``nand4``, ``nor2``..``nor4``.
            electrical_effort: Ratio of load capacitance to input
                capacitance (h); fanout-of-4 by default.

        Raises:
            KeyError: for an unknown gate type.
            ValueError: for a non-positive electrical effort.
        """
        if electrical_effort <= 0:
            raise ValueError(f"electrical effort must be positive, got {electrical_effort}")
        try:
            logical_effort, parasitic = _GATE_TABLE[gate]
        except KeyError:
            known = ", ".join(sorted(_GATE_TABLE))
            raise KeyError(f"unknown gate {gate!r} (known: {known})") from None
        return self.tau_ps * (logical_effort * electrical_effort + parasitic)

    def chain_delay_ps(self, gates: list[str], electrical_effort: float = 4.0) -> float:
        """Delay of a chain of gate stages, each at the given effort."""
        return sum(self.gate_delay_ps(g, electrical_effort) for g in gates)


def fanout4_chain_delay(tech: Technology, stages: int) -> float:
    """Delay of ``stages`` fanout-of-4 inverters, in picoseconds.

    A common unit for expressing pipeline-stage depth.

    Raises:
        ValueError: if ``stages`` is negative.
    """
    if stages < 0:
        raise ValueError(f"stage count must be non-negative, got {stages}")
    return GateLibrary(tech).gate_delay_ps("inv", 4.0) * stages
