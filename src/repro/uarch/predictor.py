"""McFarling gshare branch predictor (Table 3).

4K 2-bit saturating counters indexed by the XOR of the branch PC and a
12-bit global history register.  Unconditional control instructions
are predicted perfectly by the fetch model and never consult this
predictor.
"""

from __future__ import annotations

from repro.uarch.config import PredictorConfig


class GshareBranchPredictor:
    """gshare: global history XOR PC indexing a 2-bit counter table."""

    def __init__(self, config: PredictorConfig | None = None):
        self.config = config or PredictorConfig()
        self._counters = [self.config.initial_counter] * self.config.counters
        self._history = 0
        self._history_mask = (1 << self.config.history_bits) - 1
        self._index_mask = self.config.counters - 1
        self.lookups = 0
        self.hits = 0

    def _index(self, pc: int) -> int:
        return (pc ^ self._history) & self._index_mask

    def predict(self, pc: int) -> bool:
        """Predict a conditional branch at ``pc``; True = taken."""
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Train on the resolved outcome and shift the history."""
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(3, counter + 1)
        else:
            self._counters[index] = max(0, counter - 1)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict, train, and record accuracy; returns the prediction.

        This is the trace-driven fetch-stage idiom: the predictor is
        consulted and immediately trained with the committed outcome.
        """
        prediction = self.predict(pc)
        self.lookups += 1
        if prediction == taken:
            self.hits += 1
        self.update(pc, taken)
        return prediction

    @property
    def accuracy(self) -> float:
        """Fraction of lookups predicted correctly (0 if none yet)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups
