"""One-pass trace pre-analysis for the timing simulator's hot path.

The cycle loop in :mod:`repro.uarch.pipeline` touches every dynamic
instruction many times (fetch, dispatch, wakeup, select, commit).  The
seed revision re-derived the same per-instruction facts on each touch:
operand producers, op-class membership tests (``op_class in (LOAD,
STORE)``), the renamer to use and the class-local destination index,
and the word address a store occupies.  All of those are pure
functions of the trace, so this module computes them **once per
trace** into flat parallel arrays indexed by dynamic sequence number
-- turning per-cycle attribute lookups and enum comparisons into
C-speed ``list``/``bytearray`` indexing.

The result is cached on the trace object (like
:func:`repro.uarch.depend.dependence_info`) so a campaign sweeping
many machines over one workload pays the pass once.

:data:`PREANALYSIS_VERSION` names the shape of this derived data.  It
participates in the campaign result-cache key
(:func:`repro.core.campaign.cache_key`): if a future revision changes
what the pre-analysis feeds the simulator, old cached cells are
invalidated rather than silently mixed with new ones.
"""

from __future__ import annotations

from repro.isa.emulator import Trace
from repro.isa.instructions import FP_REG_BASE, OpClass
from repro.uarch.depend import NO_PRODUCER, dependence_info

#: Version of the pre-analysis derivation.  Bump whenever the derived
#: arrays (or how the simulator consumes them) change meaning; the
#: campaign cache key includes it.
PREANALYSIS_VERSION = 1

#: ``dest_kind`` codes: no destination / integer dest / floating dest.
DEST_NONE = 0
DEST_INT = 1
DEST_FP = 2

#: Attribute used to cache the analysis on a trace object.
_CACHE_ATTR = "_preanalysis_cache"


class TracePreAnalysis:
    """Machine-independent per-instruction facts, as flat arrays.

    Every attribute is a sequence of length ``len(trace)`` indexed by
    dynamic sequence number.

    Attributes:
        producers: Per-operand producer seqs (from
            :func:`~repro.uarch.depend.dependence_info`; duplicates
            kept, one wakeup per operand).
        real_producers: ``producers`` with :data:`NO_PRODUCER` entries
            removed -- the hot loops iterate these without the
            per-operand sentinel test.
        is_load / is_store / is_mem / is_branch: Op-class membership
            as ``bytearray`` flags (``is_mem`` = load or store).
        mem_addr: Byte address touched by the instruction, or ``None``.
        mem_word: Word address (``mem_addr >> 2``) for memory ops with
            a resolved address, else ``-1``.
        dest_kind: :data:`DEST_NONE` / :data:`DEST_INT` /
            :data:`DEST_FP` -- which renamer (if any) the destination
            needs.
        dest: Flat logical destination index, or ``None`` (kept for
            trace-event details that print the architectural name).
        logical_dest: Class-local destination index (flat index minus
            :data:`~repro.isa.instructions.FP_REG_BASE` for FP), or
            ``-1`` without a destination.
        pc / taken: Fetch-stage facts for the branch predictor.
        version: The :data:`PREANALYSIS_VERSION` this was built with.
    """

    __slots__ = (
        "producers", "real_producers", "is_load", "is_store", "is_mem",
        "is_branch", "mem_addr", "mem_word", "dest_kind", "dest",
        "logical_dest", "pc", "taken", "version",
    )

    def __init__(self, trace: Trace):
        info = dependence_info(trace)
        insts = trace.insts
        n = len(insts)
        self.version = PREANALYSIS_VERSION
        self.producers = info.producers
        self.real_producers = [
            tuple(p for p in producers if p != NO_PRODUCER)
            for producers in info.producers
        ]
        self.is_load = bytearray(n)
        self.is_store = bytearray(n)
        self.is_mem = bytearray(n)
        self.is_branch = bytearray(n)
        self.mem_addr: list[int | None] = [None] * n
        self.mem_word = [-1] * n
        self.dest_kind = bytearray(n)
        self.dest: list[int | None] = [None] * n
        self.logical_dest = [-1] * n
        self.pc = [0] * n
        self.taken = [False] * n
        for seq, inst in enumerate(insts):
            op_class = inst.op_class
            if op_class is OpClass.LOAD:
                self.is_load[seq] = 1
                self.is_mem[seq] = 1
            elif op_class is OpClass.STORE:
                self.is_store[seq] = 1
                self.is_mem[seq] = 1
            if inst.mem_addr is not None:
                self.mem_addr[seq] = inst.mem_addr
                self.mem_word[seq] = inst.mem_addr >> 2
            if inst.is_branch:
                self.is_branch[seq] = 1
            dest = inst.dest
            if dest is not None:
                self.dest[seq] = dest
                if dest < FP_REG_BASE:
                    self.dest_kind[seq] = DEST_INT
                    self.logical_dest[seq] = dest
                else:
                    self.dest_kind[seq] = DEST_FP
                    self.logical_dest[seq] = dest - FP_REG_BASE
            self.pc[seq] = inst.pc
            self.taken[seq] = inst.taken


def preanalyze(trace: Trace) -> TracePreAnalysis:
    """Compute (and cache on the trace) its pre-analysis arrays.

    The cache is keyed by :data:`PREANALYSIS_VERSION`, so reloading a
    new code revision against a long-lived trace object can never
    serve stale-shaped data.
    """
    cached = getattr(trace, _CACHE_ATTR, None)
    if cached is not None and cached.version == PREANALYSIS_VERSION:
        return cached
    analysis = TracePreAnalysis(trace)
    try:
        setattr(trace, _CACHE_ATTR, analysis)
    except AttributeError:
        pass  # slotted/frozen trace stand-ins simply skip the cache
    return analysis
