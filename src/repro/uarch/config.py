"""Machine configuration for the timing simulator.

The defaults reproduce the paper's baseline simulation model (Table 3):
8-wide fetch/decode/issue, a 64-entry issue window, 128 in-flight
instructions, retire width 16, 8 symmetric single-cycle functional
units, 120 int + 120 fp physical registers, a gshare predictor with 4K
2-bit counters and 12 bits of history, and a 32 KB 2-way data cache
with 32-byte lines, 1-cycle hits, 6-cycle misses, and four load/store
ports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SelectionPolicy(enum.Enum):
    """Priority order used by the selection logic (Section 4.3).

    The paper's selection circuit is positional: the leftmost window
    entries win.  With compaction that equals oldest-first; without it
    a freed slot is re-used by a younger instruction which then jumps
    the priority queue.  Butler and Patt [5] found overall performance
    largely independent of the policy -- which the paper relies on to
    avoid analysing compaction; ``benchmarks/bench_ablation_selection``
    verifies it.
    """

    OLDEST_FIRST = "oldest"  #: true age order (compacting window)
    POSITION = "position"  #: slot order (non-compacting window)


class SteeringPolicy(enum.Enum):
    """How renamed instructions are assigned to clusters/FIFOs."""

    NONE = "none"  #: single flexible window, no steering
    FIFO_DISPATCH = "fifo_dispatch"  #: Section 5.1 FIFO heuristic at dispatch
    WINDOW_DISPATCH = "window_dispatch"  #: Section 5.6.2 windows-as-FIFOs heuristic
    RANDOM = "random"  #: Section 5.6.3 random cluster choice
    EXEC_DRIVEN = "exec_driven"  #: Section 5.6.1 assignment at issue time
    MODULO = "modulo"  #: round-robin cluster choice (ablation)
    LEAST_LOADED = "least_loaded"  #: emptiest-window cluster choice (ablation)


#: Valid ``MachineConfig.scheduler`` values.  Kept as literals here
#: (rather than importing :data:`repro.uarch.scheduler.SCHEDULER_REGISTRY`)
#: so the config layer stays import-cycle free; a registry test pins
#: the two lists together.
SCHEDULER_NAMES = ("conventional", "fifo_steering", "load_delay_tracking")

#: Valid ``MachineConfig.regfile`` values (see ``SCHEDULER_NAMES``).
REGFILE_NAMES = ("unlimited", "ports_limited")


@dataclass(frozen=True)
class PredictorConfig:
    """gshare predictor parameters (McFarling [13], Table 3)."""

    counters: int = 4096
    history_bits: int = 12
    initial_counter: int = 2  #: power-on counter value (2 = weakly taken)

    def __post_init__(self) -> None:
        if self.counters < 2 or self.counters & (self.counters - 1):
            raise ValueError(f"counters must be a power of two >= 2, got {self.counters}")
        if not 0 <= self.history_bits <= 30:
            raise ValueError(f"history_bits out of range: {self.history_bits}")
        if not 0 <= self.initial_counter <= 3:
            raise ValueError(f"initial_counter must be 0..3, got {self.initial_counter}")


@dataclass(frozen=True)
class CacheConfig:
    """Data-cache parameters (Table 3)."""

    size_bytes: int = 32 * 1024
    associativity: int = 2
    line_bytes: int = 32
    hit_cycles: int = 1
    miss_cycles: int = 6
    ports: int = 4

    def __post_init__(self) -> None:
        for name in ("size_bytes", "associativity", "line_bytes", "hit_cycles",
                     "miss_cycles", "ports"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line_bytes must be a power of two")
        sets = self.size_bytes // (self.associativity * self.line_bytes)
        if sets < 1 or sets & (sets - 1):
            raise ValueError("size/(assoc*line) must be a power-of-two set count")
        if self.miss_cycles < self.hit_cycles:
            raise ValueError("miss_cycles must be >= hit_cycles")

    @property
    def sets(self) -> int:
        """Number of cache sets."""
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass(frozen=True)
class ClusterConfig:
    """One execution cluster.

    A cluster either has a flexible issue window (``fifo_count == 0``)
    or a set of in-order FIFO buffers (``fifo_count > 0``), plus its
    own functional units.  The baseline machine is a single cluster
    with a 64-entry window and 8 units; the dependence-based machine
    of Figure 13 is a single cluster with 8 FIFOs of depth 8; the
    clustered machines of Figures 15/17 use two 4-unit clusters.
    """

    #: Buffer capacity of a window cluster.  For a FIFO cluster the
    #: capacity is ``fifo_count * fifo_depth`` and this field is
    #: normalised to that product (leaving it at the class default is
    #: fine; an explicit inconsistent value is rejected), so the
    #: geometry is single-valued for every consumer -- the simulator,
    #: the delay models, and the campaign cache fingerprint.
    window_size: int = 64
    fifo_count: int = 0
    fifo_depth: int = 8
    fu_count: int = 8

    _DEFAULT_WINDOW_SIZE = 64

    def __post_init__(self) -> None:
        if self.fifo_count < 0:
            raise ValueError("fifo_count must be >= 0")
        if self.fifo_count == 0 and self.window_size < 1:
            raise ValueError("window_size must be >= 1 for a window cluster")
        if self.fifo_count > 0 and self.fifo_depth < 1:
            raise ValueError("fifo_depth must be >= 1 for a FIFO cluster")
        if self.fu_count < 1:
            raise ValueError("fu_count must be >= 1")
        if self.fifo_count > 0:
            capacity = self.fifo_count * self.fifo_depth
            if self.window_size not in (self._DEFAULT_WINDOW_SIZE, capacity):
                raise ValueError(
                    f"window_size ({self.window_size}) is inconsistent with "
                    f"the FIFO geometry: a {self.fifo_count}x{self.fifo_depth} "
                    f"cluster holds {capacity} instructions"
                )
            object.__setattr__(self, "window_size", capacity)

    @property
    def uses_fifos(self) -> bool:
        """True when issue is restricted to FIFO heads."""
        return self.fifo_count > 0

    @property
    def capacity(self) -> int:
        """Instructions the cluster's buffers can hold."""
        if self.uses_fifos:
            return self.fifo_count * self.fifo_depth
        return self.window_size


@dataclass(frozen=True)
class MachineConfig:
    """A complete simulated machine.

    The defaults are the paper's Table 3 baseline.  See
    :mod:`repro.core.machines` for factories covering every design
    point in Figures 13, 15, and 17.
    """

    name: str = "baseline-8way"
    fetch_width: int = 8
    dispatch_width: int = 8
    issue_width: int = 8
    retire_width: int = 16
    max_in_flight: int = 128
    int_phys_regs: int = 120
    fp_phys_regs: int = 120
    front_end_stages: int = 2
    fu_latency: int = 1
    #: Pipeline depth of the wakeup+select loop.  The paper treats it
    #: as atomic (1): splitting it over N stages means a selected
    #: instruction's result tags reach the wakeup logic N-1 cycles
    #: late, so dependent instructions cannot issue in consecutive
    #: cycles (Figure 10's bubble).  Values > 1 model that split.
    wakeup_select_stages: int = 1
    clusters: tuple[ClusterConfig, ...] = (ClusterConfig(),)
    steering: SteeringPolicy = SteeringPolicy.NONE
    selection: SelectionPolicy = SelectionPolicy.OLDEST_FIRST
    inter_cluster_bypass_cycles: int = 2
    cache: CacheConfig = field(default_factory=CacheConfig)
    predictor: PredictorConfig = field(default_factory=PredictorConfig)
    steering_seed: int = 12345  #: used only by random steering
    #: Wakeup/select strategy (a :data:`SCHEDULER_NAMES` entry).  The
    #: empty default derives the classic strategy from the cluster
    #: geometry -- ``fifo_steering`` when any cluster uses FIFOs, else
    #: ``conventional`` -- so every pre-existing config keeps its
    #: behaviour without naming one.
    scheduler: str = ""
    #: Register-file port model (a :data:`REGFILE_NAMES` entry).  The
    #: empty default derives ``ports_limited`` when
    #: ``regfile_read_ports`` is set, else ``unlimited``.
    regfile: str = ""
    #: Per-cluster read ports for the ``ports_limited`` model; 0 means
    #: the paper's fully-ported file (2 per issue slot).
    regfile_read_ports: int = 0

    def __post_init__(self) -> None:
        for name in ("fetch_width", "dispatch_width", "issue_width", "retire_width",
                     "max_in_flight", "int_phys_regs", "fp_phys_regs", "fu_latency"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.front_end_stages < 0:
            raise ValueError("front_end_stages must be >= 0")
        if self.wakeup_select_stages < 1:
            raise ValueError("wakeup_select_stages must be >= 1")
        if not self.clusters:
            raise ValueError("at least one cluster is required")
        if len(self.clusters) > 2:
            raise ValueError("at most two clusters are supported")
        if self.inter_cluster_bypass_cycles < 1:
            raise ValueError("inter_cluster_bypass_cycles must be >= 1")
        needs_steering = len(self.clusters) > 1 or any(
            c.uses_fifos for c in self.clusters
        )
        if needs_steering and self.steering is SteeringPolicy.NONE:
            raise ValueError(
                "clustered or FIFO machines need a steering policy"
            )
        if self.steering is SteeringPolicy.FIFO_DISPATCH:
            if not all(c.uses_fifos for c in self.clusters):
                raise ValueError("FIFO_DISPATCH requires FIFO clusters")
        if self.steering in (SteeringPolicy.WINDOW_DISPATCH, SteeringPolicy.RANDOM,
                             SteeringPolicy.EXEC_DRIVEN, SteeringPolicy.MODULO,
                             SteeringPolicy.LEAST_LOADED):
            if any(c.uses_fifos for c in self.clusters):
                raise ValueError(f"{self.steering.value} requires window clusters")
        if self.steering is SteeringPolicy.EXEC_DRIVEN and len(self.clusters) != 2:
            raise ValueError("EXEC_DRIVEN steering models a central window "
                             "feeding exactly two clusters")
        if self.max_in_flight < self.total_capacity:
            raise ValueError(
                f"max_in_flight ({self.max_in_flight}) is smaller than the "
                f"total window/FIFO capacity ({self.total_capacity}): the "
                f"issue buffers could never fill, so the configured geometry "
                f"is unreachable"
            )
        self._normalize_strategies()

    def _normalize_strategies(self) -> None:
        """Derive/validate the scheduler and regfile strategy fields.

        The derived classic scheduler is single-valued from the
        cluster geometry, so an explicitly named classic strategy must
        match it -- a FIFO machine running the ``conventional`` gather
        path (or vice versa) would be a silently different machine
        under the same geometry.
        """
        derived = (
            "fifo_steering"
            if any(c.uses_fifos for c in self.clusters)
            else "conventional"
        )
        scheduler = self.scheduler or derived
        if scheduler not in SCHEDULER_NAMES:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; valid: {SCHEDULER_NAMES}"
            )
        if scheduler in ("conventional", "fifo_steering"):
            if scheduler != derived:
                raise ValueError(
                    f"scheduler {scheduler!r} contradicts the cluster "
                    f"geometry (which implies {derived!r})"
                )
        elif scheduler == "load_delay_tracking":
            # Predicted ready times replace the broadcast CAM of one
            # flexible window; steered/FIFO variants are future work.
            if (len(self.clusters) != 1 or self.clusters[0].uses_fifos
                    or self.steering is not SteeringPolicy.NONE):
                raise ValueError(
                    "load_delay_tracking models a single unsteered "
                    "window cluster"
                )
        object.__setattr__(self, "scheduler", scheduler)
        regfile = self.regfile or (
            "ports_limited" if self.regfile_read_ports > 0 else "unlimited"
        )
        if regfile not in REGFILE_NAMES:
            raise ValueError(
                f"unknown regfile {regfile!r}; valid: {REGFILE_NAMES}"
            )
        if regfile == "unlimited":
            if self.regfile_read_ports != 0:
                raise ValueError(
                    "regfile_read_ports is meaningful only with the "
                    "ports_limited regfile"
                )
        else:
            # Stores and branches read two registers; fewer ports than
            # that could never issue them.
            if self.regfile_read_ports < 2:
                raise ValueError(
                    "ports_limited needs regfile_read_ports >= 2 "
                    "(the widest instruction reads two registers)"
                )
            if self.steering is SteeringPolicy.EXEC_DRIVEN:
                raise ValueError(
                    "ports_limited is incompatible with EXEC_DRIVEN "
                    "steering (issue slots are not bound to a cluster's "
                    "register file until after selection)"
                )
        object.__setattr__(self, "regfile", regfile)

    @property
    def extra_bypass_latency(self) -> int:
        """Extra cycles a value takes to reach the *other* cluster."""
        return self.inter_cluster_bypass_cycles - 1

    @property
    def total_fu_count(self) -> int:
        """Functional units across all clusters."""
        return sum(c.fu_count for c in self.clusters)

    @property
    def total_capacity(self) -> int:
        """Window/FIFO slots across all clusters."""
        return sum(c.capacity for c in self.clusters)

    # ------------------------------------------------------------------
    # derived geometry (consumed by the delay layer)
    # ------------------------------------------------------------------

    @property
    def cluster_issue_widths(self) -> tuple[int, ...]:
        """Effective issue width per cluster.

        A cluster can issue at most its functional-unit count per
        cycle, and never more than the machine's issue width; the
        delay models size each cluster's wakeup/select and register
        ports from this, not from a re-typed number.
        """
        return tuple(
            min(self.issue_width, c.fu_count) for c in self.clusters
        )

    @property
    def cluster_read_ports(self) -> tuple[int, ...]:
        """Register-file read ports per cluster.

        The paper's sizing is two ports per issue slot
        (Section 5.5); the ``ports_limited`` model caps that at
        ``regfile_read_ports``.  The delay models size the register
        file's word lines from this, so the port reduction shows up
        in the clock as well as in IPC.
        """
        full = tuple(2 * width for width in self.cluster_issue_widths)
        if self.regfile != "ports_limited":
            return full
        return tuple(min(ports, self.regfile_read_ports) for ports in full)

    @property
    def reservation_tag_count(self) -> int:
        """Result-tag space of the dependence-based reservation table.

        The reservation table keeps one ready bit per in-flight
        destination (Section 5.3), so its size is the machine's
        in-flight limit -- 128 for the paper's Table 4 organisation.
        """
        return self.max_in_flight
