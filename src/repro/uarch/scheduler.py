"""Pluggable wakeup/select scheduler strategies.

The issue stage of :class:`~repro.uarch.pipeline.PipelineSimulator` is
a strategy object drawn from :data:`SCHEDULER_REGISTRY`, mirroring
``MACHINE_REGISTRY`` (:mod:`repro.core.machines`) and
``DELAY_MODEL_REGISTRY`` (:mod:`repro.delay.critical_path`):

* ``conventional`` -- the paper's broadcast wakeup + select over a
  flexible window (also drives the window-steered clustered shapes);
* ``fifo_steering`` -- Section 5's dependence-based FIFOs, where only
  FIFO heads are visible to select;
* ``load_delay_tracking`` -- predicted ready-time issue with real-time
  load-delay feedback (Diavastos & Carlson, arXiv:2109.03112): an
  instruction whose producing load is predicted still in flight is
  held back instead of competing for issue slots, modelling a
  scheduler that replaces the broadcast CAM with per-instruction
  ready-time countdowns.

A strategy owns candidate *gathering* (which buffered instructions
select may consider this cycle) and *requeueing* of unissued
candidates; the surrounding issue loop (budgets, cache ports, memory
ordering, stall attribution) stays in the pipeline, so all strategies
share the same accounting invariants.  The ``conventional`` and
``fifo_steering`` strategies are verbatim re-expressions of the
pre-refactor issue path and remain byte-identical to the frozen
reference model (``tests/test_strategy_conformance.py`` proves it).

Strategy identity (name + version) is folded into the campaign cache
key by :func:`strategy_identity`, exactly like ``PREANALYSIS_VERSION``:
bump a strategy's ``version`` whenever its timing behaviour changes.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from repro.uarch.stats import StallCause

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.uarch.config import MachineConfig
    from repro.uarch.pipeline import PipelineSimulator

_heappush = heapq.heappush
_heappop = heapq.heappop

#: Issue candidate: (seq, cluster, fifo_index).
Candidate = "tuple[int, int, int | None]"

#: Shared empty held-list: most cycles hold nothing back.
_NO_HELD: tuple = ()


class SchedulerStrategy:
    """Base class: candidate gathering/requeueing for the issue stage.

    One instance is bound to one :class:`PipelineSimulator`; it reads
    the simulator's issue-buffer state directly (ready heaps, FIFO
    sets, pending counts) so the classic strategies stay on the
    optimized hot path.
    """

    #: Registry key; also the value ``MachineConfig.scheduler`` takes.
    name = ""
    #: Bumped on any timing-behaviour change (cache-key component).
    version = 1
    #: Whether idle-cycle skipping is sound under this strategy.  A
    #: strategy that holds candidates until a cycle the event machinery
    #: does not know about must disable skipping.
    supports_cycle_skip = True

    def __init__(self, sim: "PipelineSimulator"):
        self.sim = sim

    def reset(self) -> None:
        """Clear per-run state (called from ``_reset_state``)."""

    def gather(self):
        """Collect this cycle's issue candidates.

        Returns:
            ``(candidates, held)`` -- candidates as
            ``(seq, cluster, fifo_index)`` triples in selection
            priority order, and ``held`` as ``(candidate, cause)``
            pairs the strategy refused to expose to select this cycle
            (they are charged to ``cause`` and requeued).
        """
        raise NotImplementedError

    def requeue(self, leftovers) -> None:
        """Return unissued window candidates to their ready pools."""
        raise NotImplementedError


class ClassicScheduler(SchedulerStrategy):
    """The pre-refactor gather/requeue path, shared by the paper's
    conventional-window and dependence-FIFO machines (the concrete
    subclasses differ only in registry identity)."""

    def gather(self):
        sim = self.sim
        issued = sim.issued
        if sim._exec_driven:
            heap = sim.central_ready
            drained = []
            while heap:
                seq = _heappop(heap)
                if not issued[seq]:
                    drained.append(seq)
            return [(seq, -1, None) for seq in drained], _NO_HELD
        candidates = []
        pending = sim.pending
        fifo_flags = sim._cluster_fifo_flags
        for cluster_index in range(sim.n_clusters):
            if fifo_flags[cluster_index]:
                for fifo_index, fifo in enumerate(
                    sim.fifo_sets[cluster_index].fifos
                ):
                    entries = fifo._entries
                    if entries:
                        head = entries[0]
                        counts = pending[head]
                        if counts is not None and counts[cluster_index] == 0:
                            candidates.append((head, cluster_index, fifo_index))
            else:
                heap = sim.ready_heaps[cluster_index]
                drained = []
                while heap:
                    seq = _heappop(heap)
                    if not issued[seq]:
                        drained.append(seq)
                for seq in drained:
                    candidates.append((seq, cluster_index, None))
        if sim.positional:
            slot_of = sim.slot_of
            candidates.sort(
                key=lambda item: (slot_of.get(item[0], item[0]), item[0])
            )
        else:
            candidates.sort()
        return candidates, _NO_HELD

    def requeue(self, leftovers) -> None:
        sim = self.sim
        if sim._exec_driven:
            central_ready = sim.central_ready
            for seq, _cluster, _fifo in leftovers:
                _heappush(central_ready, seq)
            return
        fifo_flags = sim._cluster_fifo_flags
        ready_heaps = sim.ready_heaps
        for seq, cluster, _fifo in leftovers:
            if not fifo_flags[cluster]:
                _heappush(ready_heaps[cluster], seq)


class ConventionalScheduler(ClassicScheduler):
    """Broadcast wakeup + select over flexible windows (Section 4)."""

    name = "conventional"


class FifoSteeringScheduler(ClassicScheduler):
    """Dependence-based FIFOs; only heads are selectable (Section 5)."""

    name = "fifo_steering"


class LoadDelayTrackingScheduler(ConventionalScheduler):
    """Predicted ready-time issue with real-time load-delay feedback.

    Follows Diavastos & Carlson (arXiv:2109.03112): instead of a
    broadcast CAM, each instruction carries a predicted ready time
    derived from its producers.  Non-load producers are exact (fixed
    latency); load latencies are *predicted* from the last observed
    latency of the same static load (defaulting to a cache hit) and
    corrected in real time when the load actually issues.  A candidate
    whose predicted ready time is still in the future is held out of
    select that cycle and charged to :data:`StallCause.SCHED_WAIT` --
    the IPC cost of dropping the CAM, which the matching delay model
    (``ldt_window_logic_ps``) repays in clock.

    Holds expire by pure time advance, at cycles the event-driven
    arrival machinery does not schedule, so idle-cycle skipping is
    disabled for this strategy.
    """

    name = "load_delay_tracking"
    supports_cycle_skip = False

    def reset(self) -> None:
        sim = self.sim
        #: Last observed latency per static load (pc), the predictor.
        self._load_latency_of_pc: dict[int, int] = {}
        #: Predicted completion (wakeup) cycle per issued load.
        self._predicted_complete: dict[int, int] = {}
        self._default_latency = sim.config.cache.hit_cycles

    def on_load_issue(self, seq: int, latency: int) -> None:
        """Real-time feedback hook, called when a load issues.

        Records the *prediction* for this dynamic load (consumers are
        held until it) and trains the per-pc table with the actual
        latency for the next dynamic instance.
        """
        sim = self.sim
        pc = sim.pre.pc[seq]
        predicted = self._load_latency_of_pc.get(pc, self._default_latency)
        self._predicted_complete[seq] = (
            sim.cycle + predicted + sim.wakeup_bubble
        )
        self._load_latency_of_pc[pc] = latency

    def gather(self):
        candidates, _ = super().gather()
        if not candidates:
            return candidates, _NO_HELD
        sim = self.sim
        now = sim.cycle
        predicted_complete = self._predicted_complete
        producers = sim.pre.real_producers
        is_load = sim.pre.is_load
        ready = []
        held = []
        for candidate in candidates:
            hold_until = 0
            for producer in producers[candidate[0]]:
                if is_load[producer]:
                    until = predicted_complete.get(producer, 0)
                    if until > hold_until:
                        hold_until = until
            if hold_until > now:
                held.append((candidate, StallCause.SCHED_WAIT))
            else:
                ready.append(candidate)
        if not held:
            return ready, _NO_HELD
        return ready, held


#: All registered scheduler strategies, keyed by name.  The planted
#: bug self-test swaps entries here, so look strategies up at
#: simulator-construction time rather than caching classes.
SCHEDULER_REGISTRY: dict[str, type[SchedulerStrategy]] = {
    ConventionalScheduler.name: ConventionalScheduler,
    FifoSteeringScheduler.name: FifoSteeringScheduler,
    LoadDelayTrackingScheduler.name: LoadDelayTrackingScheduler,
}

#: Schedulers the frozen reference model (pipeline_reference) covers;
#: differential fuzzing compares against it only for these.
REFERENCE_SCHEDULERS = (
    ConventionalScheduler.name,
    FifoSteeringScheduler.name,
)


def build_scheduler(sim: "PipelineSimulator") -> SchedulerStrategy:
    """Instantiate the scheduler strategy a simulator's config names.

    Raises:
        ValueError: if the config names an unregistered strategy.
    """
    name = sim.config.scheduler
    try:
        strategy_class = SCHEDULER_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler strategy {name!r}; registered: "
            f"{sorted(SCHEDULER_REGISTRY)}"
        ) from None
    return strategy_class(sim)


def supports_reference(config: "MachineConfig") -> bool:
    """True when the frozen reference model covers ``config``.

    The reference predates the strategy layer: it models exactly the
    classic schedulers with an unlimited-port register file.
    """
    return (
        config.scheduler in REFERENCE_SCHEDULERS
        and config.regfile == "unlimited"
    )


def strategy_identity(config: "MachineConfig") -> str:
    """Cache-key component naming the config's strategies + versions.

    Two configs differing only in scheduler/regfile strategy (or in a
    strategy's behaviour version) must never collide in the
    content-addressed campaign cache; this string, folded into
    :func:`repro.core.campaign.cache_key`, guarantees it -- the same
    role ``PREANALYSIS_VERSION`` plays for the pre-analysis pass.
    """
    from repro.uarch.regfile_model import REGFILE_REGISTRY

    scheduler = SCHEDULER_REGISTRY[config.scheduler]
    regfile = REGFILE_REGISTRY[config.regfile]
    return (
        f"sched:{scheduler.name}@{scheduler.version}"
        f"+regfile:{regfile.name}@{regfile.version}"
    )
