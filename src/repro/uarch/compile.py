"""Per-config compiled pipelines (``simulate(..., mode="compiled")``).

PR 3 made the interpreter fast by hoisting attribute lookups *inside*
each stage method; this module removes the stage methods altogether.
Given a frozen :class:`~repro.uarch.config.MachineConfig` (plus its
scheduler/regfile strategy identity), :func:`generate_source` emits
one flat Python function that runs the *entire* cycle loop with

* every machine constant folded to a literal (widths, latencies, FU
  counts, window capacity, cache geometry, predictor masks, the
  wakeup bubble, the fetch-buffer cap);
* every branch a given shape can never take dropped at generation
  time (clustering, FIFOs, steering, positional selection, the
  port-budget check for unlimited regfiles, tracer probes for
  untraced runs);
* all simulator state hoisted into locals **once per run** instead of
  once per stage call per cycle;
* the issue histogram and stall attribution kept as flat integer
  lists indexed by cause code, converted back to the interpreter's
  dict shape only at the end.

The generated function is ``exec``-compiled and memoized in
:data:`_COMPILE_CACHE`, keyed by the config itself (frozen, hashable)
plus :func:`~repro.uarch.scheduler.strategy_identity`,
:data:`COMPILE_VERSION`, and the traced / cycle-skip variant flags.
:data:`COMPILE_VERSION` is also folded into the campaign result-cache
key (:func:`repro.core.campaign.cache_key`), exactly like
``PREANALYSIS_VERSION``: a compiler change invalidates cached cells
instead of silently mixing semantics.

**Golden-identical rule.** The compiled function replicates the fast
interpreter cycle-for-cycle: same stage order, same heap pop order,
same RNG-free steering, same stall attribution and tie-breaks, same
idle-cycle fast-forward bookkeeping, same no-forward-progress guards
with the same messages.  ``SimStats`` must be byte-identical across
reference / fast / compiled for every supported shape -- the
three-way equivalence matrix and the differential fuzzer both pin it.

**Fallback semantics.** :func:`supports_compile` names the supported
family: one cluster, no FIFOs, ``SteeringPolicy.NONE``, oldest-first
selection, the ``conventional`` scheduler, and the ``unlimited`` or
``ports_limited`` regfile.  Everything else (clustered, steered,
FIFO, positional, load-delay-tracking shapes) falls back gracefully
to the fast interpreter inside :func:`~repro.uarch.pipeline.simulate`
-- callers never need to check first.

``_PLANTED_BUG`` is the fuzzer self-test's sabotage knob (see
:mod:`repro.verify.selftest`); it is part of the cache key so a
planted run can never leak a buggy runner into clean runs.
"""

from __future__ import annotations

import heapq
import time
from typing import TYPE_CHECKING, Callable

from repro.obs.events import EventKind
from repro.uarch.config import MachineConfig, SelectionPolicy, SteeringPolicy
from repro.uarch.scheduler import strategy_identity
from repro.uarch.stats import StallCause

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.uarch.pipeline import PipelineSimulator
    from repro.uarch.stats import SimStats

#: Version of the pipeline-compilation scheme.  Bump whenever the
#: generated code's timing behaviour could change; the campaign cache
#: key includes it (see :func:`repro.core.campaign.cache_key`).
COMPILE_VERSION = 1

#: Deliberate miscompilation knob for the fuzzer self-test
#: (:func:`repro.verify.selftest.run_compile_selftest`).  ``None`` in
#: production; the recognised values are ``"load_hit_fold"`` (the
#: cache-miss latency branch is constant-folded to the hit latency)
#: and ``"port_leak"`` (the per-cycle read-port budget is hoisted out
#: of the cycle loop, so claimed ports are never replenished and the
#: pipeline deadlocks).  Part of the compile-cache key.
_PLANTED_BUG: str | None = None

#: Stable cause-code order for the flat stall counters; codegen folds
#: list indices from this tuple and the epilogue converts nonzero
#: slots back to the interpreter's ``{StallCause: count}`` dicts.
_CAUSES: tuple[StallCause, ...] = tuple(StallCause)
_CODE = {cause: index for index, cause in enumerate(_CAUSES)}

#: The in-memory compile cache: variant key -> entry dict with
#: ``version`` / ``source`` / ``runner``.  Entries with a stale
#: version or a corrupted (non-callable) runner are discarded on
#: lookup, mirroring the campaign ``ResultCache`` discipline.
_COMPILE_CACHE: dict[tuple, dict] = {}

#: Compile-activity counters for metrics/ledger reporting.
_COUNTERS = {
    "compiles": 0,
    "cache_hits": 0,
    "stale_discards": 0,
    "fallbacks": 0,
    "compile_seconds": 0.0,
}


def supports_compile(config: MachineConfig) -> bool:
    """True when :func:`compiled_runner` covers ``config``.

    The supported family is the single-window machine the paper's
    baseline belongs to: one cluster, no FIFOs, no steering policy,
    oldest-first (compacting) selection, the ``conventional``
    scheduler, and either register-file port model.  Shapes outside
    it run the fast interpreter instead (graceful fallback).
    """
    return (
        len(config.clusters) == 1
        and not config.clusters[0].uses_fifos
        and config.steering is SteeringPolicy.NONE
        and config.selection is SelectionPolicy.OLDEST_FIRST
        and config.scheduler == "conventional"
        and config.regfile in ("unlimited", "ports_limited")
    )


def compile_cache_key(
    config: MachineConfig, traced: bool, cycle_skip: bool
) -> tuple:
    """The variant key one compiled runner is memoized under."""
    return (
        config,
        strategy_identity(config),
        COMPILE_VERSION,
        bool(traced),
        bool(cycle_skip),
        _PLANTED_BUG,
    )


def compile_cache_stats() -> dict:
    """Snapshot of compile/cache activity (counters + cache size)."""
    snapshot = dict(_COUNTERS)
    snapshot["cached_runners"] = len(_COMPILE_CACHE)
    return snapshot


def clear_compile_cache() -> None:
    """Drop every cached runner and zero the counters (tests)."""
    _COMPILE_CACHE.clear()
    for key in _COUNTERS:
        _COUNTERS[key] = 0.0 if key == "compile_seconds" else 0


def note_fallback() -> None:
    """Count one unsupported-shape fallback to the fast interpreter."""
    _COUNTERS["fallbacks"] += 1


# ---------------------------------------------------------------------------
# code generation
# ---------------------------------------------------------------------------


def generate_source(
    config: MachineConfig,
    traced: bool = False,
    cycle_skip: bool = True,
    planted: str | None = None,
) -> str:
    """Emit the specialized flat run function for one machine shape.

    The returned source defines ``_compiled_run(sim, max_cycles)``:
    it hoists the simulator's state into locals, runs the whole cycle
    loop inline, writes the mutated scalars back, and returns the
    populated ``SimStats``.  See the module docstring for what gets
    folded and dropped.

    Raises:
        ValueError: for shapes outside :func:`supports_compile`.
    """
    if not supports_compile(config):
        raise ValueError(
            f"cannot compile {config.name!r}: unsupported shape "
            f"(steering={config.steering.value}, "
            f"scheduler={config.scheduler}, "
            f"clusters={len(config.clusters)})"
        )
    ports = config.regfile == "ports_limited"
    bubble = config.wakeup_select_stages - 1
    cache = config.cache
    predictor = config.predictor
    # Lazy import: pipeline imports this module from simulate().
    from repro.uarch.pipeline import _FETCH_BUFFER_FACTOR

    const = {
        "FETCH_W": config.fetch_width,
        "DISPATCH_W": config.dispatch_width,
        "ISSUE_W": config.issue_width,
        "RETIRE_W": config.retire_width,
        "MAX_IN_FLIGHT": config.max_in_flight,
        "FRONT_END": config.front_end_stages,
        "FU_LAT": config.fu_latency,
        "CAP0": config.clusters[0].capacity,
        "FU0": config.clusters[0].fu_count,
        "CACHE_PORTS": cache.ports,
        "FETCH_CAP": _FETCH_BUFFER_FACTOR * config.fetch_width,
        "OFFSET_BITS": cache.line_bytes.bit_length() - 1,
        "SET_MASK": cache.sets - 1,
        "ASSOC": cache.associativity,
        "HIT_LAT": cache.hit_cycles,
        "MISS_LAT": cache.miss_cycles,
        "INDEX_MASK": predictor.counters - 1,
        "HISTORY_MASK": (1 << predictor.history_bits) - 1,
        "READ_PORTS": config.regfile_read_ports,
        "N_CAUSES": len(_CAUSES),
        "C_IN_FLIGHT": _CODE[StallCause.IN_FLIGHT],
        "C_INT_REGS": _CODE[StallCause.INT_REGS],
        "C_FP_REGS": _CODE[StallCause.FP_REGS],
        "C_WINDOW_FULL": _CODE[StallCause.WINDOW_FULL],
        "C_FETCH_STARVED": _CODE[StallCause.FETCH_STARVED],
        "C_FU": _CODE[StallCause.FU_CONTENTION],
        "C_CACHE": _CODE[StallCause.CACHE_PORT],
        "C_LSO": _CODE[StallCause.LOAD_STORE_ORDER],
        "C_REGFILE": _CODE[StallCause.REGFILE_PORT],
        "C_DRAIN": _CODE[StallCause.DRAIN],
    }

    def plus_bubble(expr: str) -> str:
        """Fold ``expr + wakeup_bubble`` when the bubble is zero."""
        return expr if bubble == 0 else f"{expr} + {bubble}"

    miss_latency = "HIT_LAT" if planted == "load_hit_fold" else "MISS_LAT"

    lines: list[str] = []
    add = lines.append
    add("def _compiled_run(sim, max_cycles):")
    add("    insts = sim.insts")
    add("    n = len(insts)")
    add("    pre = sim.pre")
    add("    real_producers = pre.real_producers")
    add("    is_load = pre.is_load")
    add("    is_store = pre.is_store")
    add("    is_mem = pre.is_mem")
    add("    is_branch = pre.is_branch")
    add("    mem_addr = pre.mem_addr")
    add("    mem_word = pre.mem_word")
    add("    dest_kind = pre.dest_kind")
    add("    logical_dest = pre.logical_dest")
    add("    pc = pre.pc")
    add("    taken = pre.taken")
    add("    stats = sim.stats")
    if traced:
        add("    tracer = sim.tracer")
        add("    tracer_emit = tracer.emit")
        add("    dest_flat = pre.dest")
    add("    predictor = sim.predictor")
    add("    counters = predictor._counters")
    add("    history = predictor._history")
    add("    lookups = predictor.lookups")
    add("    phits = predictor.hits")
    add("    cache = sim.cache")
    add("    cache_sets = cache._sets")
    add("    cache_accesses = cache.accesses")
    add("    cache_misses = cache.misses")
    add("    int_renamer = sim.int_renamer")
    add("    int_map = int_renamer._map")
    add("    int_free = int_renamer._free")
    add("    int_free_set = int_renamer._free_set")
    add("    fp_renamer = sim.fp_renamer")
    add("    fp_map = fp_renamer._map")
    add("    fp_free = fp_renamer._free")
    add("    fp_free_set = fp_renamer._free_set")
    add("    arrivals = sim.arrivals")
    add("    ready_heap = sim.ready_heaps[0]")
    add("    unissued_stores = sim.unissued_stores")
    add("    inflight_store_words = sim.inflight_store_words")
    add("    dispatched = sim.dispatched")
    add("    issued = sim.issued")
    add("    fetch_cycle = sim.fetch_cycle")
    add("    dispatch_cycle = sim.dispatch_cycle")
    add("    issue_cycle = sim.issue_cycle")
    add("    complete_cycle = sim.complete_cycle")
    add("    commit_cycle = sim.commit_cycle")
    add("    cluster_of = sim.cluster_of")
    add("    home_cluster = sim.home_cluster")
    add("    waiting_on = sim.waiting_on")
    add("    in_ready = sim.in_ready")
    add("    prev_dest_phys = sim.prev_dest_phys")
    if ports:
        add("    reads_of = sim.regfile_model.reads")
    add("    pending0 = [0] * n")
    add("    cycle = sim.cycle")
    add("    commit_ptr = sim.commit_ptr")
    add("    in_flight = sim.in_flight")
    add("    fetch_ptr = sim.fetch_ptr")
    # The fetch buffer of this (in-order fetch, in-order dispatch)
    # family is always the contiguous seq range [buf_head, fetch_ptr);
    # the head's ready cycle is its fetch cycle plus the front-end
    # depth, so the deque itself is compiled away.
    add("    buf_head = fetch_ptr - len(sim.fetch_buffer)")
    add("    next_fetch_cycle = sim.next_fetch_cycle")
    add("    pending_redirect = sim.pending_redirect")
    add("    window_count0 = sim.window_count[0]")
    add("    committed = stats.committed")
    add("    fetched = stats.fetched")
    add("    mispredicts = stats.mispredicts")
    add("    store_forwards = stats.store_forwards")
    add("    occupancy_sum = stats.occupancy_sum")
    add("    active_cycles = stats.active_cycles")
    add("    skipped_cycles = sim.skipped_cycles")
    add("    hist = [0] * {ISSUE_W_P1}".format(
        ISSUE_W_P1=config.issue_width + 1))
    add("    stall_c = [0] * {N_CAUSES}".format(**const))
    add("    disp_st = [0] * {N_CAUSES}".format(**const))
    add("    last_cause_code = -1")
    if planted == "port_leak" and ports:
        # The planted miscompilation: the per-cycle budget grant is
        # hoisted out of the loop as if it were loop-invariant.
        add("    read_budget = {READ_PORTS}".format(**const))
    add("    while commit_ptr < n:")
    add("        if cycle > max_cycles:")
    add("            raise RuntimeError(")
    add("                'no forward progress after %d cycles "
        "(%d/%d committed)'")
    add("                ' -- simulator bug' % (cycle, commit_ptr, n))")

    # -- wakeup: process this cycle's scheduled operand arrivals -----
    add("        events = arrivals.pop(cycle, None)")
    add("        if events is not None:")
    add("            for s, _k in events:")
    add("                cnt = pending0[s] - 1")
    add("                pending0[s] = cnt")
    add("                if cnt == 0:")
    if traced:
        add("                    tracer_emit(cycle, EK_WAKEUP, s, 0)")
    add("                    if not in_ready[s]:")
    add("                        in_ready[s] = 1")
    add("                        heappush(ready_heap, s)")

    # -- commit ------------------------------------------------------
    add("        commit_before = commit_ptr")
    add("        s = commit_ptr")
    add("        if s < n and issued[s]:")
    add("            budget = {RETIRE_W}".format(**const))
    add("            horizon = cycle - 1")
    add("            committed_now = 0")
    add("            while budget and s < n:")
    add("                if not issued[s] or complete_cycle[s] > horizon:")
    add("                    break")
    add("                if is_store[s]:")
    add("                    word = mem_word[s]")
    add("                    if word >= 0:")
    add("                        cnt = inflight_store_words.get(word, 0) - 1")
    add("                        if cnt > 0:")
    add("                            inflight_store_words[word] = cnt")
    add("                        else:")
    add("                            inflight_store_words.pop(word, None)")
    add("                kind = dest_kind[s]")
    add("                if kind:")
    add("                    previous = prev_dest_phys[s]")
    add("                    if previous is not None:")
    add("                        if kind == 1:")
    add("                            int_free.append(previous)")
    add("                            int_free_set.add(previous)")
    add("                        else:")
    add("                            fp_free.append(previous)")
    add("                            fp_free_set.add(previous)")
    if traced:
        add("                tracer_emit(cycle, EK_COMMIT, s, cluster_of[s])")
    add("                commit_cycle[s] = cycle")
    add("                s += 1")
    add("                committed_now += 1")
    add("                budget -= 1")
    add("            if committed_now:")
    add("                commit_ptr = s")
    add("                in_flight -= committed_now")
    add("                committed += committed_now")

    # -- issue (select + execute) ------------------------------------
    add("        budget = {ISSUE_W}".format(**const))
    add("        fu_budget = {FU0}".format(**const))
    add("        mem_budget = {CACHE_PORTS}".format(**const))
    if ports and planted != "port_leak":
        add("        read_budget = {READ_PORTS}".format(**const))
    add("        while unissued_stores and issued[unissued_stores[0]]:")
    add("            heappop(unissued_stores)")
    add("        oldest_store = unissued_stores[0] if unissued_stores else -1")
    add("        issued_count = 0")
    add("        b_fu = b_cache = b_lso = b_ports = 0")
    add("        issue_block_code = -1")
    add("        drained = []")
    add("        while ready_heap:")
    add("            s = heappop(ready_heap)")
    add("            if not issued[s]:")
    add("                drained.append(s)")
    add("        for s in drained:")
    add("            if budget == 0:")
    add("                heappush(ready_heap, s)")
    add("                continue")
    add("            is_m = is_mem[s]")
    add("            if is_m and mem_budget == 0:")
    add("                b_cache += 1")
    add("                heappush(ready_heap, s)")
    add("                continue")
    add("            if is_load[s] and -1 < oldest_store < s:")
    add("                b_lso += 1")
    add("                heappush(ready_heap, s)")
    add("                continue")
    add("            if fu_budget == 0:")
    add("                b_fu += 1")
    add("                heappush(ready_heap, s)")
    add("                continue")
    if ports:
        add("            needed = reads_of[s]")
        add("            if needed > read_budget:")
        add("                b_ports += 1")
        add("                heappush(ready_heap, s)")
        add("                continue")
        add("            read_budget -= needed")
    if traced:
        add("            tracer_emit(cycle, EK_SELECT, s, 0, detail='window')")
    add("            if is_load[s]:")
    add("                if inflight_store_words.get(mem_word[s]):")
    add("                    store_forwards += 1")
    add("                line = mem_addr[s] >> {OFFSET_BITS}".format(**const))
    add("                ways = cache_sets[line & {SET_MASK}]".format(**const))
    add("                cache_accesses += 1")
    add("                if line in ways:")
    add("                    ways.remove(line)")
    add("                    ways.append(line)")
    add("                    latency = {HIT_LAT}".format(**const))
    add("                else:")
    add("                    cache_misses += 1")
    add("                    if len(ways) >= {ASSOC}:".format(**const))
    add("                        del ways[0]")
    add("                    ways.append(line)")
    add("                    latency = {LAT}".format(LAT=const[miss_latency]))
    add("            else:")
    add("                latency = {FU_LAT}".format(**const))
    add("                if is_store[s]:")
    add("                    line = mem_addr[s] >> {OFFSET_BITS}".format(
        **const))
    add("                    ways = cache_sets[line & {SET_MASK}]".format(
        **const))
    add("                    cache_accesses += 1")
    add("                    if line in ways:")
    add("                        ways.remove(line)")
    add("                        ways.append(line)")
    add("                    else:")
    add("                        cache_misses += 1")
    add("                        if len(ways) >= {ASSOC}:".format(**const))
    add("                            del ways[0]")
    add("                        ways.append(line)")
    add("                    word = mem_word[s]")
    add("                    inflight_store_words[word] = ("
        "inflight_store_words.get(word, 0) + 1)")
    add("            issued[s] = 1")
    add("            issue_cycle[s] = cycle")
    add("            complete = cycle + latency")
    add("            complete_cycle[s] = complete")
    add("            cluster_of[s] = 0")
    if traced:
        add("            tracer_emit(cycle, EK_ISSUE, s, 0)")
        add("            tracer_emit(cycle, EK_EXECUTE, s, 0, "
            "detail=insts[s].op_class.name.lower(), dur=latency)")
    add("            window_count0 -= 1")
    add("            waiters = waiting_on[s]")
    add("            if waiters:")
    add("                base = " + plus_bubble("complete"))
    add("                bucket = arrivals.get(base)")
    add("                if bucket is None:")
    add("                    bucket = arrivals[base] = []")
    add("                for consumer in waiters:")
    add("                    bucket.append((consumer, 0))")
    add("                waiting_on[s] = None")
    add("            if pending_redirect == s:")
    add("                pending_redirect = None")
    add("                next_fetch_cycle = complete")
    add("            budget -= 1")
    add("            fu_budget -= 1")
    add("            if is_m:")
    add("                mem_budget -= 1")
    add("            if is_store[s]:")
    add("                while unissued_stores and "
        "issued[unissued_stores[0]]:")
    add("                    heappop(unissued_stores)")
    add("                oldest_store = (unissued_stores[0] "
        "if unissued_stores else -1)")
    add("            issued_count += 1")
    # Dominant blocked cause, rank-descending so max-by-(count, rank)
    # reduces to strictly-greater-count in iteration order.
    add("        if b_fu or b_cache or b_lso or b_ports:")
    add("            best = -1")
    add("            for cnt, code in ((b_ports, {C_REGFILE}), "
        "(b_fu, {C_FU}), (b_cache, {C_CACHE}), (b_lso, {C_LSO})):".format(
            **const))
    add("                if cnt > best:")
    add("                    best = cnt")
    add("                    issue_block_code = code")
    add("        hist[issued_count] += 1")

    # -- dispatch (rename + insert) ----------------------------------
    add("        dispatched_count = 0")
    add("        dispatch_block_code = -1")
    add("        if buf_head < fetch_ptr:")
    add("            budget = {DISPATCH_W}".format(**const))
    add("            while budget and buf_head < fetch_ptr:")
    add("                s = buf_head")
    add("                if fetch_cycle[s] + {FRONT_END} > cycle:".format(
        **const))
    add("                    break")
    add("                if in_flight >= {MAX_IN_FLIGHT}:".format(**const))
    add("                    disp_st[{C_IN_FLIGHT}] += 1".format(**const))
    add("                    dispatch_block_code = {C_IN_FLIGHT}".format(
        **const))
    add("                    break")
    add("                kind = dest_kind[s]")
    add("                if kind:")
    add("                    if kind == 1:")
    add("                        if not int_free:")
    add("                            disp_st[{C_INT_REGS}] += 1".format(
        **const))
    add("                            dispatch_block_code = "
        "{C_INT_REGS}".format(**const))
    add("                            break")
    add("                    elif not fp_free:")
    add("                        disp_st[{C_FP_REGS}] += 1".format(**const))
    add("                        dispatch_block_code = {C_FP_REGS}".format(
        **const))
    add("                        break")
    add("                if window_count0 >= {CAP0}:".format(**const))
    add("                    disp_st[{C_WINDOW_FULL}] += 1".format(**const))
    add("                    dispatch_block_code = {C_WINDOW_FULL}".format(
        **const))
    add("                    break")
    add("                buf_head += 1")
    add("                home_cluster[s] = 0")
    add("                window_count0 += 1")
    if traced:
        add("                tracer_emit(cycle, EK_STEER, s, 0, detail='')")
    add("                if kind:")
    add("                    if kind == 1:")
    add("                        phys = int_free.pop()")
    add("                        int_free_set.discard(phys)")
    add("                        ld = logical_dest[s]")
    add("                        prev_dest_phys[s] = int_map[ld]")
    add("                        int_map[ld] = phys")
    add("                    else:")
    add("                        phys = fp_free.pop()")
    add("                        fp_free_set.discard(phys)")
    add("                        ld = logical_dest[s]")
    add("                        prev_dest_phys[s] = fp_map[ld]")
    add("                        fp_map[ld] = phys")
    if traced:
        add("                    tracer_emit(cycle, EK_RENAME, s, "
            "detail='r%d->p%d' % (dest_flat[s], phys))")
        add("                tracer_emit(cycle, EK_DISPATCH, s, 0)")
    add("                if is_store[s]:")
    add("                    heappush(unissued_stores, s)")
    add("                dispatched[s] = 1")
    add("                dispatch_cycle[s] = cycle")
    add("                in_flight += 1")
    add("                count = 0")
    add("                for producer in real_producers[s]:")
    add("                    if not issued[producer]:")
    add("                        w = waiting_on[producer]")
    add("                        if w is None:")
    add("                            waiting_on[producer] = [s]")
    add("                        else:")
    add("                            w.append(s)")
    add("                        count += 1")
    add("                    else:")
    add("                        arrival = "
        + plus_bubble("complete_cycle[producer]"))
    add("                        if arrival > cycle:")
    add("                            count += 1")
    add("                            bucket = arrivals.get(arrival)")
    add("                            if bucket is None:")
    add("                                arrivals[arrival] = [(s, 0)]")
    add("                            else:")
    add("                                bucket.append((s, 0))")
    add("                pending0[s] = count")
    add("                if count == 0:")
    add("                    in_ready[s] = 1")
    add("                    heappush(ready_heap, s)")
    add("                budget -= 1")
    add("                dispatched_count += 1")

    # -- fetch -------------------------------------------------------
    add("        fetch_before = fetch_ptr")
    add("        if (cycle >= next_fetch_cycle and pending_redirect is None"
        " and fetch_ptr < n):")
    add("            budget = {FETCH_W}".format(**const))
    add("            fetched_now = 0")
    add("            while budget and fetch_ptr < n:")
    add("                if fetch_ptr - buf_head >= {FETCH_CAP}:".format(
        **const))
    add("                    break")
    add("                fetch_cycle[fetch_ptr] = cycle")
    if traced:
        add("                tracer_emit(cycle, EK_FETCH, fetch_ptr, "
            "detail=insts[fetch_ptr].opcode)")
    add("                s = fetch_ptr")
    add("                fetch_ptr += 1")
    add("                fetched_now += 1")
    add("                budget -= 1")
    add("                if is_branch[s]:")
    add("                    idx = (pc[s] ^ history) & {INDEX_MASK}".format(
        **const))
    add("                    counter = counters[idx]")
    add("                    prediction = counter >= 2")
    add("                    lookups += 1")
    add("                    tk = taken[s]")
    add("                    if prediction == tk:")
    add("                        phits += 1")
    add("                    if tk:")
    add("                        if counter < 3:")
    add("                            counters[idx] = counter + 1")
    add("                    elif counter > 0:")
    add("                        counters[idx] = counter - 1")
    add("                    history = ((history << 1) | tk) & "
        "{HISTORY_MASK}".format(**const))
    add("                    if prediction != tk:")
    add("                        mispredicts += 1")
    if traced:
        add("                        tracer_emit(cycle, EK_SQUASH, s, "
            "detail='mispredict')")
    add("                        pending_redirect = s")
    add("                        next_fetch_cycle = INF")
    add("                        break")
    add("            fetched += fetched_now")

    # -- occupancy + attribution + clock -----------------------------
    add("        occupancy_sum += window_count0")
    add("        if dispatched_count:")
    add("            last_cause_code = -1")
    add("            active_cycles += 1")
    add("        elif dispatch_block_code >= 0:")
    add("            cause_code = dispatch_block_code")
    add("            if (issued_count == 0 and issue_block_code >= 0 and"
        " cause_code in ({C_WINDOW_FULL}, {C_IN_FLIGHT})):".format(**const))
    add("                cause_code = issue_block_code")
    add("            last_cause_code = cause_code")
    add("            stall_c[cause_code] += 1")
    add("        elif fetch_ptr >= n and buf_head == fetch_ptr:")
    add("            last_cause_code = {C_DRAIN}".format(**const))
    add("            stall_c[{C_DRAIN}] += 1".format(**const))
    add("        else:")
    add("            last_cause_code = {C_FETCH_STARVED}".format(**const))
    add("            stall_c[{C_FETCH_STARVED}] += 1".format(**const))
    add("        cycle += 1")

    # -- idle-cycle fast forward (exact stat replication) ------------
    if cycle_skip:
        add("        if (dispatched_count == 0 and issued_count == 0 and"
            " events is None and commit_before == commit_ptr and"
            " fetch_before == fetch_ptr):")
        add("            best = min(arrivals) if arrivals else -1")
        add("            if commit_ptr < n and issued[commit_ptr]:")
        add("                t = complete_cycle[commit_ptr] + 1")
        add("                if best < 0 or t < best:")
        add("                    best = t")
        add("            if buf_head < fetch_ptr:")
        add("                t = fetch_cycle[buf_head] + {FRONT_END}".format(
            **const))
        add("                if t >= cycle and (best < 0 or t < best):")
        add("                    best = t")
        add("            if (pending_redirect is None and fetch_ptr < n and"
            " fetch_ptr - buf_head < {FETCH_CAP}):".format(**const))
        add("                t = next_fetch_cycle")
        add("                if t >= cycle and (best < 0 or t < best):")
        add("                    best = t")
        add("            if best < 0:")
        add("                raise RuntimeError(")
        add("                    'no forward progress possible at cycle %d:"
            " no'")
        add("                    ' scheduled event remains (%d/%d committed)"
            " --'")
        add("                    ' simulator bug' % (cycle, commit_ptr, n))")
        add("            if best > max_cycles + 1:")
        add("                best = max_cycles + 1")
        add("            skipped = best - cycle")
        add("            if skipped > 0:")
        add("                stall_c[last_cause_code] += skipped")
        add("                hist[0] += skipped")
        add("                if dispatch_block_code >= 0:")
        add("                    disp_st[dispatch_block_code] += skipped")
        add("                occupancy_sum += window_count0 * skipped")
        add("                cycle = best")
        add("                skipped_cycles += skipped")

    # -- epilogue: write the hoisted state back ----------------------
    add("    sim.cycle = cycle")
    add("    sim.commit_ptr = commit_ptr")
    add("    sim.in_flight = in_flight")
    add("    sim.fetch_ptr = fetch_ptr")
    add("    sim.next_fetch_cycle = next_fetch_cycle")
    add("    sim.pending_redirect = pending_redirect")
    add("    sim.window_count[0] = window_count0")
    add("    sim.skipped_cycles = skipped_cycles")
    add("    fetch_buffer = sim.fetch_buffer")
    add("    fetch_buffer.clear()")
    add("    for s in range(buf_head, fetch_ptr):")
    add("        fetch_buffer.append((s, fetch_cycle[s] + {FRONT_END}))".format(
        **const))
    add("    predictor._history = history")
    add("    predictor.lookups = lookups")
    add("    predictor.hits = phits")
    add("    cache.accesses = cache_accesses")
    add("    cache.misses = cache_misses")
    add("    stats.committed = committed")
    add("    stats.fetched = fetched")
    add("    stats.mispredicts = mispredicts")
    add("    stats.store_forwards = store_forwards")
    add("    stats.occupancy_sum = occupancy_sum")
    add("    stats.active_cycles = active_cycles")
    add("    stats.cycles = cycle")
    add("    stats.branch_lookups = lookups")
    add("    stats.branch_hits = phits")
    add("    stats.cache_accesses = cache_accesses")
    add("    stats.cache_misses = cache_misses")
    add("    histogram = stats.issue_histogram")
    add("    for count, value in enumerate(hist):")
    add("        if value:")
    add("            histogram[count] = histogram.get(count, 0) + value")
    add("    stall_cycles = stats.stall_cycles")
    add("    dispatch_stalls = stats.dispatch_stalls")
    add("    for code, value in enumerate(stall_c):")
    add("        if value:")
    add("            cause = CAUSES[code]")
    add("            stall_cycles[cause] = stall_cycles.get(cause, 0) + value")
    add("    for code, value in enumerate(disp_st):")
    add("        if value:")
    add("            cause = CAUSES[code]")
    add("            dispatch_stalls[cause] = ("
        "dispatch_stalls.get(cause, 0) + value)")
    add("    return stats")
    return "\n".join(lines) + "\n"


def _exec_namespace() -> dict:
    """Globals the generated function runs with."""
    return {
        "heappush": heapq.heappush,
        "heappop": heapq.heappop,
        "INF": float("inf"),
        "CAUSES": _CAUSES,
        "EK_FETCH": EventKind.FETCH,
        "EK_SQUASH": EventKind.SQUASH,
        "EK_STEER": EventKind.STEER,
        "EK_RENAME": EventKind.RENAME,
        "EK_DISPATCH": EventKind.DISPATCH,
        "EK_WAKEUP": EventKind.WAKEUP,
        "EK_SELECT": EventKind.SELECT,
        "EK_ISSUE": EventKind.ISSUE,
        "EK_EXECUTE": EventKind.EXECUTE,
        "EK_COMMIT": EventKind.COMMIT,
    }


def compiled_runner(
    config: MachineConfig, traced: bool = False, cycle_skip: bool = True
) -> Callable:
    """The memoized compiled run function for one machine variant.

    Looks the variant up in :data:`_COMPILE_CACHE`; stale (version
    mismatch) and corrupted (non-callable runner) entries are
    discarded and recompiled, mirroring the campaign result cache's
    trust-nothing loads.

    Raises:
        ValueError: for shapes outside :func:`supports_compile`.
    """
    key = compile_cache_key(config, traced, cycle_skip)
    entry = _COMPILE_CACHE.get(key)
    if entry is not None:
        if (isinstance(entry, dict)
                and entry.get("version") == COMPILE_VERSION
                and callable(entry.get("runner"))):
            _COUNTERS["cache_hits"] += 1
            return entry["runner"]
        _COMPILE_CACHE.pop(key, None)
        _COUNTERS["stale_discards"] += 1
    start = time.perf_counter()
    source = generate_source(
        config, traced=traced, cycle_skip=cycle_skip, planted=_PLANTED_BUG
    )
    namespace = _exec_namespace()
    code = compile(source, f"<compiled pipeline {config.name}>", "exec")
    exec(code, namespace)
    runner = namespace["_compiled_run"]
    _COUNTERS["compiles"] += 1
    _COUNTERS["compile_seconds"] += time.perf_counter() - start
    _COMPILE_CACHE[key] = {
        "version": COMPILE_VERSION,
        "source": source,
        "runner": runner,
    }
    return runner


def run_compiled(
    sim: "PipelineSimulator", max_cycles: int | None = None
) -> "SimStats":
    """Run one constructed simulator through its compiled function.

    The simulator is built normally (identical initial state, shared
    per-instruction timing arrays), then the whole cycle loop runs in
    the specialized function -- so equivalence tests can compare
    ``issue_cycle``/``commit_cycle``/... on the instance afterwards
    exactly as they do for the interpreter.

    Raises:
        ValueError: for shapes outside :func:`supports_compile`.
        RuntimeError: on no-forward-progress, with the interpreter's
            message (the guards are compiled into the function).
    """
    if max_cycles is None:
        max_cycles = 100 * len(sim.insts) + 1_000
    runner = compiled_runner(
        sim.config, traced=sim.tracer is not None, cycle_skip=sim.cycle_skip
    )
    return runner(sim, max_cycles)
