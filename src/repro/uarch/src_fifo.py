"""The SRC_FIFO table (Section 5): the steering logic's hardware.

The paper's steering logic does not search the FIFOs for an operand's
producer; it keeps a table indexed by *logical register*:

    SRC_FIFO(Ra) holds the identity of the FIFO buffer containing the
    instruction that will write Ra; the entry is invalid once that
    instruction has completed (the register has its value).

The table is written at dispatch (the steered instruction's
destination points at its FIFO) and invalidated at issue -- but only
if the issuing instruction is still the *latest* writer of the
register, which the table tracks with the writer's sequence number
(the hardware equivalent is that a later rename of Ra simply
overwrites the entry).

The pipeline keeps an equivalent per-producer map (``fifo_of``); the
test suite proves the two agree on every steering decision, which is
exactly the property that lets the paper claim the SRC_FIFO table is
"similar to the map table ... and can be accessed in parallel with
the rename table".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import NUM_LOGICAL_REGS


@dataclass(frozen=True, slots=True)
class SrcFifoEntry:
    """One valid table entry."""

    cluster: int
    fifo: int
    writer_seq: int  #: the pending writer this entry describes


class SrcFifoTable:
    """Logical-register -> FIFO table for dispatch steering."""

    def __init__(self, logical_registers: int = NUM_LOGICAL_REGS):
        if logical_registers < 1:
            raise ValueError(
                f"logical_registers must be >= 1, got {logical_registers}"
            )
        self.logical_registers = logical_registers
        self._entries: list[SrcFifoEntry | None] = [None] * logical_registers

    def _check(self, logical: int) -> None:
        if not 0 <= logical < self.logical_registers:
            raise ValueError(f"logical register {logical} out of range")

    def lookup(self, logical: int) -> SrcFifoEntry | None:
        """Where the pending writer of ``logical`` is buffered.

        None means the register's value is (or will shortly be)
        available from the register file -- no steering constraint.
        """
        self._check(logical)
        return self._entries[logical]

    def on_dispatch(
        self, seq: int, dest: int | None, cluster: int, fifo: int | None
    ) -> None:
        """Record a dispatched instruction's destination mapping.

        Instructions placed outside FIFOs (flexible windows) clear the
        entry instead: the table only answers "which FIFO", and a
        windowed producer imposes no FIFO-steering constraint.
        """
        if dest is None:
            return
        self._check(dest)
        if fifo is None:
            self._entries[dest] = None
        else:
            self._entries[dest] = SrcFifoEntry(
                cluster=cluster, fifo=fifo, writer_seq=seq
            )

    def on_issue(self, seq: int, dest: int | None) -> None:
        """Invalidate the entry when its writer leaves the FIFO --
        unless a younger writer has already overwritten it."""
        if dest is None:
            return
        self._check(dest)
        entry = self._entries[dest]
        if entry is not None and entry.writer_seq == seq:
            self._entries[dest] = None

    def valid_count(self) -> int:
        """Number of valid entries (pending FIFO-resident writers)."""
        return sum(1 for entry in self._entries if entry is not None)

    def snapshot(self) -> dict[int, SrcFifoEntry]:
        """Valid entries keyed by logical register."""
        return {
            logical: entry
            for logical, entry in enumerate(self._entries)
            if entry is not None
        }
