"""Register dependence precomputation over a dynamic trace.

The trace is the committed instruction stream, so each source
operand's producer is simply the most recent earlier instruction that
wrote the register.  Producers and consumer lists are machine
independent; they are computed once per trace and cached on it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.emulator import Trace

#: Producer seq meaning "value was available before the trace began".
NO_PRODUCER = -1


@dataclass
class DependenceInfo:
    """Per-instruction dependence structure of a trace.

    Attributes:
        producers: For instruction ``i``, a tuple of producer seq
            numbers, one per source operand (:data:`NO_PRODUCER` when
            the value predates the trace).  Duplicate producers are
            kept -- an instruction reading the same register twice
            still has one wakeup event per operand.
        consumers: For instruction ``i``, the seqs of later
            instructions with ``i`` as a producer (each consumer
            listed once per dependent operand).
    """

    producers: list[tuple[int, ...]]
    consumers: list[list[int]]


def dependence_info(trace: Trace) -> DependenceInfo:
    """Compute (and cache on the trace) its dependence structure."""
    cached = getattr(trace, "_dependence_info", None)
    if cached is not None:
        return cached
    last_writer: dict[int, int] = {}
    producers: list[tuple[int, ...]] = []
    consumers: list[list[int]] = [[] for _ in range(len(trace.insts))]
    for inst in trace.insts:
        inst_producers = tuple(last_writer.get(src, NO_PRODUCER) for src in inst.srcs)
        producers.append(inst_producers)
        for producer in inst_producers:
            if producer != NO_PRODUCER:
                consumers[producer].append(inst.seq)
        if inst.dest is not None:
            last_writer[inst.dest] = inst.seq
    info = DependenceInfo(producers=producers, consumers=consumers)
    trace._dependence_info = info  # cache for reuse across machines
    return info
