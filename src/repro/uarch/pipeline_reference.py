"""Frozen reference implementation of the pipeline timing model.

This module preserves the straightforward (pre-optimization) cycle
loop exactly as the seed revision wrote it.  It is the *oracle* for
the optimized hot path in :mod:`repro.uarch.pipeline`: the equivalence
suite (``tests/test_fast_reference_equivalence.py``) asserts that the
optimized simulator produces byte-identical
:meth:`~repro.uarch.stats.SimStats.to_dict` payloads and identical
event timelines against this implementation for every machine
configuration and workload.

Reach it through the public escape hatch::

    from repro.uarch.pipeline import simulate
    stats = simulate(config, trace, fast=False)

Do **not** optimize this module.  Its value is that it stays simple
enough to audit against the paper's Table 3 model by eye; every clever
trick lives (and is tested) in ``pipeline.py`` instead.  See
docs/performance.md for the rules that keep the two in lockstep.
"""


from __future__ import annotations

import heapq
from collections import deque

from repro.isa.emulator import Trace
from repro.isa.instructions import FP_REG_BASE, OpClass
from repro.obs.events import EventKind, EventTracer
from repro.uarch.cache import SetAssociativeCache
from repro.uarch.config import MachineConfig, SelectionPolicy, SteeringPolicy
from repro.uarch.depend import NO_PRODUCER, dependence_info
from repro.uarch.fifos import FifoSet
from repro.uarch.predictor import GshareBranchPredictor
from repro.uarch.rename import RegisterRenamer
from repro.uarch.stats import BACKPRESSURE_CAUSES, SimStats, StallCause
from repro.uarch.steering import (
    FifoDispatchSteering,
    LeastLoadedSteering,
    ModuloSteering,
    OutstandingOperand,
    Placement,
    RandomSteering,
    SteeringView,
    WindowDispatchSteering,
)

#: Dispatch policies that pick a cluster without looking at operands.
_BLIND_POLICIES = (
    SteeringPolicy.RANDOM,
    SteeringPolicy.MODULO,
    SteeringPolicy.LEAST_LOADED,
)

_INF = float("inf")

#: Cycles after a value's arrival in a cluster until it can be read
#: from that cluster's register file instead of a bypass path (the
#: REG WRITE stage depth in Figure 1); used only for the Figure 17
#: inter-cluster bypass-frequency accounting.
REGFILE_WRITE_DELAY = 2

#: Fetch-buffer depth in multiples of the fetch width.
_FETCH_BUFFER_FACTOR = 2

#: Tie-break priority when several causes block issue in one cycle:
#: structural contention first, then memory ordering, then bypass
#: latency (higher rank wins a tie on blocked-instruction count).
_ISSUE_BLOCK_RANK = {
    StallCause.FU_CONTENTION: 4,
    StallCause.CACHE_PORT: 3,
    StallCause.LOAD_STORE_ORDER: 2,
    StallCause.INTER_CLUSTER_WAIT: 1,
}


class ReferencePipelineSimulator:
    """One machine configuration bound to one trace.

    Use :func:`simulate` for the one-shot convenience form.

    Args:
        config: The machine to model.
        trace: The committed dynamic instruction stream to replay.
        tracer: Optional :class:`~repro.obs.events.EventTracer`; when
            attached, every lifecycle step of every instruction is
            emitted as a structured event.  ``None`` (the default)
            keeps the hot path at one branch per event site.
    """

    def __init__(
        self,
        config: MachineConfig,
        trace: Trace,
        tracer: EventTracer | None = None,
    ):
        self.config = config
        self.trace = trace
        self.tracer = tracer
        self.insts = trace.insts
        info = dependence_info(trace)
        self.producers = info.producers
        self.consumers = info.consumers
        self.n_clusters = len(config.clusters)
        self.extra_bypass = config.extra_bypass_latency
        # Figure 10: a wakeup+select loop pipelined over N stages
        # delays every dependent wakeup by N-1 cycles.
        self.wakeup_bubble = config.wakeup_select_stages - 1
        self.predictor = GshareBranchPredictor(config.predictor)
        self.cache = SetAssociativeCache(config.cache)
        self.stats = SimStats(machine=config.name, workload=trace.name)
        self._steering = self._build_steering()
        self._reset_state()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _build_steering(self):
        policy = self.config.steering
        if policy is SteeringPolicy.FIFO_DISPATCH:
            return FifoDispatchSteering(self.n_clusters)
        if policy is SteeringPolicy.WINDOW_DISPATCH:
            return WindowDispatchSteering(self.n_clusters)
        if policy is SteeringPolicy.RANDOM:
            return RandomSteering(self.n_clusters, seed=self.config.steering_seed)
        if policy is SteeringPolicy.MODULO:
            return ModuloSteering(self.n_clusters)
        if policy is SteeringPolicy.LEAST_LOADED:
            return LeastLoadedSteering(self.n_clusters)
        return None  # NONE and EXEC_DRIVEN place without a dispatch policy

    def _reset_state(self) -> None:
        n = len(self.insts)
        config = self.config
        self.cycle = 0
        # Per-instruction timing state.
        self.dispatched = bytearray(n)
        self.issued = bytearray(n)
        self.fetch_cycle = [0] * n
        self.dispatch_cycle = [0] * n
        self.issue_cycle = [0] * n
        self.complete_cycle = [_INF] * n
        self.commit_cycle = [0] * n
        self.cluster_of = [-1] * n
        self.pending: list[list[int] | None] = [None] * n
        self.home_cluster = [-1] * n  # cluster chosen at dispatch
        self.used_x_bypass = bytearray(n)
        # Wakeup plumbing.
        self.arrivals: dict[int, list[tuple[int, int]]] = {}
        self.waiting_on: list[list[int] | None] = [None] * n
        self.in_ready = bytearray(n)
        # Issue buffers.
        self.fifo_sets: list[FifoSet] = []
        self.fifo_of: dict[int, tuple[int, int]] = {}
        uses_fifos = any(c.uses_fifos for c in config.clusters)
        conceptual = config.steering is SteeringPolicy.WINDOW_DISPATCH
        if uses_fifos:
            self.fifo_sets = [
                FifoSet(c.fifo_count, c.fifo_depth) for c in config.clusters
            ]
        elif conceptual:
            # Section 5.6.2: each 32-entry window is modeled (for the
            # steering heuristic only) as eight FIFOs of four slots.
            self.fifo_sets = [
                FifoSet(max(1, c.window_size // 4), 4) for c in config.clusters
            ]
        self.conceptual_fifos = conceptual
        self.window_count = [0] * self.n_clusters
        # Non-compacting (position-priority) selection: track which
        # window slot each instruction occupies; lowest free slot is
        # allocated at dispatch and freed at issue.
        self.positional = config.selection is SelectionPolicy.POSITION
        self.slot_of: dict[int, int] = {}
        self.free_slots: list[list[int]] = [
            list(range(c.capacity)) for c in config.clusters
        ]
        for heap in self.free_slots:
            heapq.heapify(heap)
        self.ready_heaps: list[list[int]] = [[] for _ in range(self.n_clusters)]
        self.central_ready: list[int] = []
        # Frontend.
        self.fetch_ptr = 0
        self.next_fetch_cycle = 0
        self.pending_redirect: int | None = None
        self.fetch_buffer: deque[tuple[int, int]] = deque()  # (seq, ready cycle)
        self.fetch_buffer_cap = _FETCH_BUFFER_FACTOR * config.fetch_width
        # Resources.  Renaming is performed for real: map tables, free
        # lists, and previous-mapping release at commit.
        self.in_flight = 0
        if (config.int_phys_regs <= FP_REG_BASE
                or config.fp_phys_regs <= FP_REG_BASE):
            raise ValueError("physical register files smaller than the ISA")
        self.int_renamer = RegisterRenamer(
            physical_registers=config.int_phys_regs, logical_registers=FP_REG_BASE
        )
        self.fp_renamer = RegisterRenamer(
            physical_registers=config.fp_phys_regs, logical_registers=FP_REG_BASE
        )
        self.prev_dest_phys: list[int | None] = [None] * n
        # Memory ordering.
        self.unissued_stores: list[int] = []
        self.inflight_store_words: dict[int, int] = {}
        self.commit_ptr = 0
        # Per-cycle stall attribution (see _attribute_cycle).
        self._dispatch_block: StallCause | None = None
        self._issue_block: StallCause | None = None
        if self._steering is not None:
            self._steering.reset()

    @property
    def free_int_regs(self) -> int:
        """Free integer physical registers (from the real free list)."""
        return self.int_renamer.free_count

    @property
    def free_fp_regs(self) -> int:
        """Free floating-point physical registers."""
        return self.fp_renamer.free_count

    # ------------------------------------------------------------------
    # wakeup plumbing
    # ------------------------------------------------------------------

    def _avail_cycle(self, producer: int, cluster: int):
        """Cycle the producer's value can wake consumers in ``cluster``."""
        complete = self.complete_cycle[producer] + self.wakeup_bubble
        if self.cluster_of[producer] != cluster:
            return complete + self.extra_bypass
        return complete

    def _schedule_arrival(self, consumer: int, cluster: int, at_cycle) -> None:
        self.arrivals.setdefault(at_cycle, []).append((consumer, cluster))

    def _on_operands_ready(self, seq: int, cluster: int) -> None:
        """All operands of ``seq`` are now available in ``cluster``."""
        policy = self.config.steering
        if policy is SteeringPolicy.EXEC_DRIVEN:
            if not self.in_ready[seq]:
                self.in_ready[seq] = 1
                heapq.heappush(self.central_ready, seq)
        elif not self.config.clusters[self.home_cluster[seq]].uses_fifos:
            if cluster == self.home_cluster[seq] and not self.in_ready[seq]:
                self.in_ready[seq] = 1
                heapq.heappush(self.ready_heaps[cluster], seq)
        # FIFO clusters poll their heads each cycle instead.

    def _process_arrivals(self) -> None:
        events = self.arrivals.pop(self.cycle, None)
        if not events:
            return
        tracer = self.tracer
        for seq, cluster in events:
            counts = self.pending[seq]
            counts[cluster] -= 1
            if counts[cluster] == 0:
                if tracer is not None:
                    tracer.emit(self.cycle, EventKind.WAKEUP, seq, cluster)
                self._on_operands_ready(seq, cluster)

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------

    def _commit(self) -> None:
        budget = self.config.retire_width
        n = len(self.insts)
        tracer = self.tracer
        while budget and self.commit_ptr < n:
            seq = self.commit_ptr
            if not self.issued[seq] or self.complete_cycle[seq] > self.cycle - 1:
                break
            inst = self.insts[seq]
            if inst.is_store and inst.mem_addr is not None:
                word = inst.mem_addr >> 2
                count = self.inflight_store_words.get(word, 0) - 1
                if count > 0:
                    self.inflight_store_words[word] = count
                else:
                    self.inflight_store_words.pop(word, None)
            if inst.dest is not None:
                renamer = (
                    self.int_renamer if inst.dest < FP_REG_BASE else self.fp_renamer
                )
                previous = self.prev_dest_phys[seq]
                if previous is not None:
                    renamer.release(previous)
            if self.used_x_bypass[seq]:
                self.stats.inter_cluster_bypasses += 1
            if tracer is not None:
                tracer.emit(
                    self.cycle, EventKind.COMMIT, seq, self.cluster_of[seq]
                )
            self.commit_cycle[seq] = self.cycle
            self.in_flight -= 1
            self.commit_ptr += 1
            self.stats.committed += 1
            budget -= 1

    # ------------------------------------------------------------------
    # issue (wakeup already done; this is select + execute)
    # ------------------------------------------------------------------

    def _oldest_unissued_store(self):
        heap = self.unissued_stores
        while heap and self.issued[heap[0]]:
            heapq.heappop(heap)
        return heap[0] if heap else None

    def _gather_candidates(self) -> list[tuple[int, int, int | None]]:
        """Collect issue candidates as (seq, cluster, fifo_index)."""
        candidates: list[tuple[int, int, int | None]] = []
        policy = self.config.steering
        if policy is SteeringPolicy.EXEC_DRIVEN:
            drained = []
            while self.central_ready:
                seq = heapq.heappop(self.central_ready)
                if not self.issued[seq]:
                    drained.append(seq)
            return [(seq, -1, None) for seq in drained]
        for cluster_index, cluster in enumerate(self.config.clusters):
            if cluster.uses_fifos:
                counts_needed = self.pending
                for fifo_index, head in self.fifo_sets[cluster_index].heads():
                    counts = counts_needed[head]
                    if counts is not None and counts[cluster_index] == 0:
                        candidates.append((head, cluster_index, fifo_index))
            else:
                heap = self.ready_heaps[cluster_index]
                drained = []
                while heap:
                    seq = heapq.heappop(heap)
                    if not self.issued[seq]:
                        drained.append(seq)
                for seq in drained:
                    candidates.append((seq, cluster_index, None))
        if self.positional:
            candidates.sort(
                key=lambda item: (self.slot_of.get(item[0], item[0]), item[0])
            )
        else:
            candidates.sort()
        return candidates

    def _requeue(self, leftovers: list[tuple[int, int, int | None]]) -> None:
        """Return unissued window candidates to their ready heaps."""
        policy = self.config.steering
        for seq, cluster, _fifo in leftovers:
            if policy is SteeringPolicy.EXEC_DRIVEN:
                heapq.heappush(self.central_ready, seq)
            elif not self.config.clusters[cluster].uses_fifos:
                heapq.heappush(self.ready_heaps[cluster], seq)

    def _pick_exec_cluster(
        self, seq: int, fu_budget: list[int]
    ) -> tuple[int | None, StallCause | None]:
        """Execution-driven steering (Section 5.6.1): choose the
        cluster that provides the source values first, if it has a
        free unit; otherwise the other, if usable; else defer.

        Returns:
            ``(cluster, None)`` on success, or ``(None, cause)`` when
            deferred -- :data:`StallCause.INTER_CLUSTER_WAIT` if a
            free unit exists but the operands have not yet crossed the
            bypass to it, else :data:`StallCause.FU_CONTENTION`.
        """
        avail = [0, 0]
        for k in range(self.n_clusters):
            worst = 0
            for producer in self.producers[seq]:
                if producer == NO_PRODUCER:
                    continue
                cycle = self._avail_cycle(producer, k)
                if cycle > worst:
                    worst = cycle
            avail[k] = worst
        order = sorted(range(self.n_clusters), key=lambda k: (avail[k], k))
        for k in order:
            if avail[k] <= self.cycle and fu_budget[k] > 0:
                return k, None
        if any(budget > 0 for budget in fu_budget):
            return None, StallCause.INTER_CLUSTER_WAIT
        return None, StallCause.FU_CONTENTION

    def _load_latency(self, inst) -> int:
        word = inst.mem_addr >> 2
        if self.inflight_store_words.get(word):
            self.stats.store_forwards += 1
        return self.cache.load_latency(inst.mem_addr)

    def _issue_one(self, seq: int, cluster: int, fifo_index: int | None) -> None:
        inst = self.insts[seq]
        now = self.cycle
        tracer = self.tracer
        if tracer is not None:
            origin = (
                f"fifo={fifo_index}" if fifo_index is not None
                else f"slot={self.slot_of[seq]}" if seq in self.slot_of
                else "window"
            )
            tracer.emit(now, EventKind.SELECT, seq, cluster, detail=origin)
        if inst.op_class is OpClass.LOAD:
            latency = self._load_latency(inst)
        else:
            latency = self.config.fu_latency
            if inst.is_store:
                self.cache.access(inst.mem_addr)  # write-allocate fill
                word = inst.mem_addr >> 2
                self.inflight_store_words[word] = (
                    self.inflight_store_words.get(word, 0) + 1
                )
        self.issued[seq] = 1
        self.issue_cycle[seq] = now
        self.complete_cycle[seq] = now + latency
        self.cluster_of[seq] = cluster
        if tracer is not None:
            tracer.emit(now, EventKind.ISSUE, seq, cluster)
            tracer.emit(
                now, EventKind.EXECUTE, seq, cluster,
                detail=inst.op_class.name.lower(), dur=latency,
            )
        # Leave the issue buffer.
        if fifo_index is not None:
            fifo = self.fifo_sets[cluster].fifos[fifo_index]
            fifo.pop_head()
            self.fifo_of.pop(seq, None)
        else:
            if self.conceptual_fifos:
                placement = self.fifo_of.pop(seq, None)
                if placement is not None:
                    self.fifo_sets[placement[0]].fifos[placement[1]].remove(seq)
            # The buffer slot belongs to the dispatch-time (home)
            # cluster -- for execution-driven steering that is the
            # central window, not the execution cluster chosen here.
            self.window_count[self.home_cluster[seq]] -= 1
        if self.positional:
            slot = self.slot_of.pop(seq, None)
            if slot is not None:
                heapq.heappush(self.free_slots[self.home_cluster[seq]], slot)
        # Inter-cluster bypass accounting (Figure 17 bottom): count the
        # instruction if any operand came from the other cluster and
        # had not yet been written to this cluster's register file.
        for producer in self.producers[seq]:
            if producer == NO_PRODUCER or self.cluster_of[producer] == cluster:
                continue
            arrival = self._avail_cycle(producer, cluster)
            if now < arrival + REGFILE_WRITE_DELAY:
                self.used_x_bypass[seq] = 1
                if tracer is not None:
                    tracer.emit(
                        now, EventKind.BYPASS, seq, cluster,
                        detail=f"from={self.cluster_of[producer]}",
                    )
                break
        # Wake dispatched consumers.
        waiters = self.waiting_on[seq]
        if waiters:
            for consumer in waiters:
                for k in range(self.n_clusters):
                    self._schedule_arrival(consumer, k, self._avail_cycle(seq, k))
            self.waiting_on[seq] = None
        # A resolved mispredicted branch restarts fetch.
        if self.pending_redirect == seq:
            self.pending_redirect = None
            self.next_fetch_cycle = self.complete_cycle[seq]

    def _issue(self) -> int:
        exec_driven = self.config.steering is SteeringPolicy.EXEC_DRIVEN
        budget = self.config.issue_width
        fu_budget = [c.fu_count for c in self.config.clusters]
        mem_budget = self.config.cache.ports
        oldest_store = self._oldest_unissued_store()
        leftovers: list[tuple[int, int, int | None]] = []
        issued_count = 0
        # Why ready instructions failed to issue this cycle, by cause;
        # _attribute_cycle picks the dominant one.
        blocked: dict[StallCause, int] = {}
        self._issue_block = None
        for seq, cluster, fifo_index in self._gather_candidates():
            if budget == 0:
                leftovers.append((seq, cluster, fifo_index))
                continue
            inst = self.insts[seq]
            is_mem = inst.op_class in (OpClass.LOAD, OpClass.STORE)
            if is_mem and mem_budget == 0:
                blocked[StallCause.CACHE_PORT] = (
                    blocked.get(StallCause.CACHE_PORT, 0) + 1
                )
                leftovers.append((seq, cluster, fifo_index))
                continue
            if (
                inst.op_class is OpClass.LOAD
                and oldest_store is not None
                and oldest_store < seq
            ):
                blocked[StallCause.LOAD_STORE_ORDER] = (
                    blocked.get(StallCause.LOAD_STORE_ORDER, 0) + 1
                )
                leftovers.append((seq, cluster, fifo_index))
                continue
            if exec_driven:
                chosen, defer_cause = self._pick_exec_cluster(seq, fu_budget)
                if chosen is None:
                    blocked[defer_cause] = blocked.get(defer_cause, 0) + 1
                    leftovers.append((seq, cluster, fifo_index))
                    continue
                cluster = chosen
            elif fu_budget[cluster] == 0:
                blocked[StallCause.FU_CONTENTION] = (
                    blocked.get(StallCause.FU_CONTENTION, 0) + 1
                )
                leftovers.append((seq, cluster, fifo_index))
                continue
            self._issue_one(seq, cluster, fifo_index)
            budget -= 1
            fu_budget[cluster] -= 1
            if is_mem:
                mem_budget -= 1
            if inst.is_store:
                oldest_store = self._oldest_unissued_store()
            issued_count += 1
        if blocked:
            # The cause blocking the most ready instructions wins;
            # ties break on a fixed structural-first order.
            self._issue_block = max(
                blocked, key=lambda c: (blocked[c], _ISSUE_BLOCK_RANK[c])
            )
        self._requeue(leftovers)
        self.stats.note_issue(issued_count)
        return issued_count

    # ------------------------------------------------------------------
    # dispatch (rename + steer + insert into issue buffers)
    # ------------------------------------------------------------------

    def _outstanding_operands(self, seq: int) -> list[OutstandingOperand]:
        outstanding = []
        for producer in self.producers[seq]:
            if producer == NO_PRODUCER:
                continue
            placement = self.fifo_of.get(producer)
            if placement is None:
                continue  # already issued, or never buffered
            cluster, fifo_index = placement
            fifo = self.fifo_sets[cluster].fifos[fifo_index]
            outstanding.append(
                OutstandingOperand(
                    producer=producer,
                    cluster=cluster,
                    fifo=fifo_index,
                    is_tail=fifo.tail == producer,
                )
            )
        return outstanding

    def _place(self, seq: int) -> tuple[Placement | None, StallCause]:
        """Choose where ``seq`` dispatches to; (None, cause) = stall."""
        policy = self.config.steering
        if policy is SteeringPolicy.NONE:
            if self.window_count[0] >= self.config.clusters[0].capacity:
                return None, StallCause.WINDOW_FULL
            return Placement(cluster=0), StallCause.WINDOW_FULL
        if policy is SteeringPolicy.EXEC_DRIVEN:
            if sum(self.window_count) >= self.config.total_capacity:
                return None, StallCause.WINDOW_FULL
            return Placement(cluster=0), StallCause.WINDOW_FULL
        if policy in _BLIND_POLICIES:
            room = [
                self.config.clusters[k].capacity - self.window_count[k]
                for k in range(self.n_clusters)
            ]
            view = SteeringView(self.fifo_sets, window_room=room)
            placement = self._steering.place(view, [])
            return placement, StallCause.WINDOW_FULL
        # FIFO_DISPATCH / WINDOW_DISPATCH.
        if self.conceptual_fifos:
            room = [
                self.config.clusters[k].capacity - self.window_count[k]
                for k in range(self.n_clusters)
            ]
            view = SteeringView(self.fifo_sets, window_room=room)
        else:
            view = SteeringView(self.fifo_sets)
        placement = self._steering.place(view, self._outstanding_operands(seq))
        return placement, StallCause.NO_FIFO

    def _apply_placement(self, seq: int, placement: Placement) -> None:
        cluster = placement.cluster
        self.home_cluster[seq] = cluster
        if self.positional and self.free_slots[cluster]:
            self.slot_of[seq] = heapq.heappop(self.free_slots[cluster])
        if placement.fifo is not None:
            self.fifo_sets[cluster].fifos[placement.fifo].push(seq)
            self.fifo_of[seq] = (cluster, placement.fifo)
            if self.conceptual_fifos:
                self.window_count[cluster] += 1
        else:
            self.window_count[cluster] += 1

    def _rename_dest(self, seq: int, inst) -> None:
        """Allocate a physical destination through the real map table;
        the previous mapping is remembered and freed at commit."""
        if inst.dest < FP_REG_BASE:
            renamer = self.int_renamer
            logical_dest = inst.dest
        else:
            renamer = self.fp_renamer
            logical_dest = inst.dest - FP_REG_BASE
        logical_srcs = tuple(
            s if inst.dest < FP_REG_BASE else s - FP_REG_BASE
            for s in inst.srcs
            if (s < FP_REG_BASE) == (inst.dest < FP_REG_BASE)
        )
        [renamed] = renamer.rename_group([(logical_srcs, logical_dest)])
        self.prev_dest_phys[seq] = renamed.prev_dest
        if self.tracer is not None:
            self.tracer.emit(
                self.cycle, EventKind.RENAME, seq,
                detail=f"r{inst.dest}->p{renamed.phys_dest}",
            )

    def _init_pending(self, seq: int) -> None:
        counts = [0] * self.n_clusters
        now = self.cycle
        for producer in self.producers[seq]:
            if producer == NO_PRODUCER:
                continue
            if not self.issued[producer]:
                waiters = self.waiting_on[producer]
                if waiters is None:
                    waiters = []
                    self.waiting_on[producer] = waiters
                waiters.append(seq)
                for k in range(self.n_clusters):
                    counts[k] += 1
            else:
                for k in range(self.n_clusters):
                    arrival = self._avail_cycle(producer, k)
                    if arrival > now:
                        counts[k] += 1
                        self._schedule_arrival(seq, k, arrival)
        self.pending[seq] = counts
        policy = self.config.steering
        if policy is SteeringPolicy.EXEC_DRIVEN:
            if min(counts) == 0:
                self.in_ready[seq] = 1
                heapq.heappush(self.central_ready, seq)
        else:
            home = self.home_cluster[seq]
            if (
                not self.config.clusters[home].uses_fifos
                and counts[home] == 0
            ):
                self.in_ready[seq] = 1
                heapq.heappush(self.ready_heaps[home], seq)

    def _dispatch(self) -> int:
        budget = self.config.dispatch_width
        tracer = self.tracer
        dispatched_count = 0
        self._dispatch_block = None
        while budget and self.fetch_buffer:
            seq, ready_cycle = self.fetch_buffer[0]
            if ready_cycle > self.cycle:
                break
            inst = self.insts[seq]
            if self.in_flight >= self.config.max_in_flight:
                self._note_dispatch_block(StallCause.IN_FLIGHT)
                break
            if inst.dest is not None:
                if inst.dest < FP_REG_BASE:
                    if self.int_renamer.free_count == 0:
                        self._note_dispatch_block(StallCause.INT_REGS)
                        break
                elif self.fp_renamer.free_count == 0:
                    self._note_dispatch_block(StallCause.FP_REGS)
                    break
            placement, stall_cause = self._place(seq)
            if placement is None:
                self._note_dispatch_block(stall_cause)
                break
            self.fetch_buffer.popleft()
            self._apply_placement(seq, placement)
            if tracer is not None:
                rule = getattr(self._steering, "last_rule", "")
                fifo = placement.fifo
                tracer.emit(
                    self.cycle, EventKind.STEER, seq, placement.cluster,
                    detail=(f"fifo={fifo} {rule}".strip() if fifo is not None
                            else rule),
                )
            if inst.dest is not None:
                self._rename_dest(seq, inst)
            if tracer is not None:
                tracer.emit(
                    self.cycle, EventKind.DISPATCH, seq, placement.cluster
                )
            if inst.is_store:
                heapq.heappush(self.unissued_stores, seq)
            self.dispatched[seq] = 1
            self.dispatch_cycle[seq] = self.cycle
            self.in_flight += 1
            self._init_pending(seq)
            budget -= 1
            dispatched_count += 1
        return dispatched_count

    def _note_dispatch_block(self, cause: StallCause) -> None:
        """Record why dispatch stopped this cycle (counter + cause)."""
        self.stats.note_stall(cause)
        self._dispatch_block = cause

    # ------------------------------------------------------------------
    # fetch
    # ------------------------------------------------------------------

    def _fetch(self) -> None:
        if self.cycle < self.next_fetch_cycle or self.pending_redirect is not None:
            return
        budget = self.config.fetch_width
        ready_at = self.cycle + self.config.front_end_stages
        n = len(self.insts)
        tracer = self.tracer
        while budget and self.fetch_ptr < n:
            if len(self.fetch_buffer) >= self.fetch_buffer_cap:
                break
            inst = self.insts[self.fetch_ptr]
            self.fetch_buffer.append((self.fetch_ptr, ready_at))
            self.fetch_cycle[self.fetch_ptr] = self.cycle
            if tracer is not None:
                tracer.emit(
                    self.cycle, EventKind.FETCH, self.fetch_ptr,
                    detail=inst.opcode,
                )
            self.fetch_ptr += 1
            self.stats.fetched += 1
            budget -= 1
            if inst.is_branch:
                prediction = self.predictor.predict_and_update(inst.pc, inst.taken)
                if prediction != inst.taken:
                    # Mispredicted: fetch halts until the branch
                    # executes and redirects the front end.
                    self.stats.mispredicts += 1
                    if tracer is not None:
                        tracer.emit(
                            self.cycle, EventKind.SQUASH, inst.seq,
                            detail="mispredict",
                        )
                    self.pending_redirect = inst.seq
                    self.next_fetch_cycle = _INF
                    break

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def _buffered_instructions(self) -> int:
        """Instructions currently in issue windows/FIFOs."""
        buffered = sum(self.window_count)
        if self.fifo_sets and not self.conceptual_fifos:
            buffered += sum(fs.occupancy for fs in self.fifo_sets)
        return buffered

    def step(self) -> None:
        """Advance one cycle."""
        self._process_arrivals()
        self._commit()
        issued = self._issue()
        dispatched = self._dispatch()
        self._fetch()
        self.stats.occupancy_sum += self._buffered_instructions()
        self._attribute_cycle(dispatched, issued)
        self.cycle += 1

    def _attribute_cycle(self, dispatched: int, issued: int) -> None:
        """Charge this cycle to exactly one cause.

        The partition (which :meth:`SimStats.validate` checks sums to
        total cycles):

        * dispatch progressed -> active;
        * dispatch hit backpressure (window/FIFO/in-flight full) while
          issue also moved nothing -> the issue-side culprit
          (FU contention, cache port, load-store order, inter-cluster
          wait) when one was observed, else the dispatch cause;
        * dispatch blocked on a rename/window resource -> that cause;
        * nothing to dispatch -> fetch-starved, or drain once the
          trace is exhausted.
        """
        if dispatched:
            cause = None
        elif self._dispatch_block is not None:
            cause = self._dispatch_block
            if (
                issued == 0
                and self._issue_block is not None
                and cause in BACKPRESSURE_CAUSES
            ):
                cause = self._issue_block
        elif self.fetch_ptr >= len(self.insts) and not self.fetch_buffer:
            cause = StallCause.DRAIN
        else:
            cause = StallCause.FETCH_STARVED
        self.stats.attribute_cycle(cause)

    def run(self, max_cycles: int | None = None) -> SimStats:
        """Simulate until the whole trace commits.

        Args:
            max_cycles: Safety bound; defaults to 100 cycles per
                instruction plus slack.

        Returns:
            The populated :class:`SimStats`.

        Raises:
            RuntimeError: if the pipeline fails to make progress
                within the cycle bound (a deadlock would be a
                simulator bug).
        """
        n = len(self.insts)
        if max_cycles is None:
            max_cycles = 100 * n + 1_000
        while self.commit_ptr < n:
            if self.cycle > max_cycles:
                raise RuntimeError(
                    f"no forward progress after {self.cycle} cycles "
                    f"({self.commit_ptr}/{n} committed) -- simulator bug"
                )
            self.step()
        self.stats.cycles = self.cycle
        self.stats.branch_lookups = self.predictor.lookups
        self.stats.branch_hits = self.predictor.hits
        self.stats.cache_accesses = self.cache.accesses
        self.stats.cache_misses = self.cache.misses
        return self.stats


def simulate_reference(
    config: MachineConfig,
    trace: Trace,
    max_cycles: int | None = None,
    tracer: EventTracer | None = None,
) -> SimStats:
    """Run one machine over one trace through the reference model."""
    return ReferencePipelineSimulator(config, trace, tracer=tracer).run(
        max_cycles=max_cycles
    )
