"""Issue FIFOs and FIFO pools (Section 5).

The dependence-based microarchitecture replaces the issue window with
a small set of FIFOs constrained to issue in order; dependent
instructions are steered to the same FIFO.  A FIFO is acquired from a
free pool when an instruction is steered to a new (empty) FIFO and
returns to the pool when its last instruction issues.

The same structures double as the *conceptual* FIFOs of the
two-window dispatch-steered machine (Section 5.6.2): there the
assignment heuristic runs over FIFOs of depth four, but instructions
may issue from any slot, so :meth:`IssueFifo.remove` supports removal
from the middle.
"""

from __future__ import annotations


class IssueFifo:
    """One in-order issue buffer."""

    __slots__ = ("depth", "_entries")

    def __init__(self, depth: int):
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.depth = depth
        self._entries: list[int] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, seq: int) -> bool:
        return seq in self._entries

    @property
    def is_empty(self) -> bool:
        return not self._entries

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.depth

    @property
    def head(self) -> int:
        """Oldest entry (the only one eligible to issue in FIFO mode).

        Raises:
            IndexError: if the FIFO is empty.
        """
        return self._entries[0]

    @property
    def tail(self) -> int:
        """Youngest entry (steering may append behind it).

        Raises:
            IndexError: if the FIFO is empty.
        """
        return self._entries[-1]

    def push(self, seq: int) -> None:
        """Append at the tail.

        Raises:
            OverflowError: if the FIFO is full.
        """
        if self.is_full:
            raise OverflowError("push to a full FIFO")
        self._entries.append(seq)

    def pop_head(self) -> int:
        """Remove and return the head (FIFO-mode issue)."""
        return self._entries.pop(0)

    def remove(self, seq: int) -> None:
        """Remove an entry from anywhere (conceptual-FIFO mode).

        Raises:
            ValueError: if the entry is not present.
        """
        self._entries.remove(seq)


class FifoSet:
    """The FIFOs of one cluster, with free-pool bookkeeping."""

    __slots__ = ("fifos",)

    def __init__(self, count: int, depth: int):
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self.fifos = [IssueFifo(depth) for _ in range(count)]

    def __len__(self) -> int:
        return len(self.fifos)

    @property
    def occupancy(self) -> int:
        """Instructions currently buffered across all FIFOs."""
        return sum(len(f) for f in self.fifos)

    def empty_fifo_index(self) -> int | None:
        """Index of a free (empty) FIFO, or None if none is free."""
        for index, fifo in enumerate(self.fifos):
            if fifo.is_empty:
                return index
        return None

    def heads(self):
        """Yield (fifo_index, head_seq) for each non-empty FIFO."""
        for index, fifo in enumerate(self.fifos):
            if not fifo.is_empty:
                yield index, fifo.head
