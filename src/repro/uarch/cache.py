"""Set-associative data-cache timing model (Table 3).

Only timing matters to the simulator, so the cache tracks tags and LRU
state, not data.  Write policy is write-back, write-allocate; the
timing model charges loads the hit or miss latency and lets stores
retire into a store buffer (their cache fill still happens, perturbing
LRU state, but nothing waits on it).
"""

from __future__ import annotations

from repro.uarch.config import CacheConfig


class SetAssociativeCache:
    """LRU set-associative cache over byte addresses."""

    def __init__(self, config: CacheConfig | None = None):
        self.config = config or CacheConfig()
        self._offset_bits = self.config.line_bytes.bit_length() - 1
        self._set_mask = self.config.sets - 1
        # Per-set list of tags, most recently used last.
        self._sets: list[list[int]] = [[] for _ in range(self.config.sets)]
        self.accesses = 0
        self.misses = 0

    def _locate(self, address: int) -> tuple[list[int], int]:
        line = address >> self._offset_bits
        return self._sets[line & self._set_mask], line

    def access(self, address: int) -> bool:
        """Access (and allocate) the line holding ``address``.

        Returns:
            True on hit, False on miss.  Misses allocate the line,
            evicting the LRU way if the set is full.
        """
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        ways, tag = self._locate(address)
        self.accesses += 1
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)  # move to MRU
            return True
        self.misses += 1
        if len(ways) >= self.config.associativity:
            ways.pop(0)  # evict LRU
        ways.append(tag)
        return False

    def load_latency(self, address: int) -> int:
        """Cycles a load at ``address`` takes (access + allocate)."""
        if self.access(address):
            return self.config.hit_cycles
        return self.config.miss_cycles

    def probe(self, address: int) -> bool:
        """Check residency without touching LRU or stats."""
        ways, tag = self._locate(address)
        return tag in ways

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0 if no accesses)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses
