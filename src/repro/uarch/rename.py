"""Register rename stage (the functional side of Section 4.1).

The delay models in :mod:`repro.delay.rename` answer "how slow is
renaming"; this module implements what the logic *does*: a map table
from logical to physical registers, a free list, and the dependence
check that renames a whole group per cycle -- a logical source written
by an earlier instruction *in the same group* must receive that
instruction's newly allocated physical register, not the stale map
entry (the paper's "dependence check logic (SLICE)" and output muxes).

Physical registers are recycled with the standard discipline: an
instruction frees the register *previously* mapped to its destination
when it commits (at that point no consumer can still name it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import NUM_LOGICAL_REGS


@dataclass(frozen=True)
class RenamedInstruction:
    """The rename stage's output for one instruction.

    Attributes:
        phys_srcs: Physical registers holding the source operands.
        phys_dest: Newly allocated physical destination, or None.
        prev_dest: Physical register previously mapped to the logical
            destination; freed when this instruction commits.
        group_bypassed: Per-source flags: True when the mapping came
            from the dependence-check logic (an earlier instruction in
            the same rename group) instead of the map table.
    """

    phys_srcs: tuple[int, ...]
    phys_dest: int | None
    prev_dest: int | None
    group_bypassed: tuple[bool, ...]


class OutOfPhysicalRegisters(RuntimeError):
    """Raised when allocation is attempted with an empty free list."""


@dataclass
class RegisterRenamer:
    """Map table + free list for one register class (or a flat space).

    Example:
        >>> renamer = RegisterRenamer(physical_registers=70)
        >>> group = renamer.rename_group([((1, 2), 3)])  # r3 = f(r1, r2)
        >>> group[0].phys_srcs  # initial identity mapping
        (1, 2)
        >>> second = renamer.rename_group([((3,), 4)])   # r4 = f(r3)
        >>> second[0].phys_srcs[0] == group[0].phys_dest
        True
    """

    physical_registers: int = 120
    logical_registers: int = NUM_LOGICAL_REGS
    _map: list[int] = field(default_factory=list, repr=False)
    _free: list[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.physical_registers <= self.logical_registers:
            raise ValueError(
                f"need more physical ({self.physical_registers}) than logical "
                f"({self.logical_registers}) registers"
            )
        # Power-on state: logical register i lives in physical i.
        self._map = list(range(self.logical_registers))
        self._free = list(range(self.logical_registers, self.physical_registers))
        # Membership shadow of _free for O(1) double-release detection
        # (the list stays the allocation-order source of truth).
        self._free_set = set(self._free)

    @property
    def free_count(self) -> int:
        """Physical registers currently available for allocation."""
        return len(self._free)

    def lookup(self, logical: int) -> int:
        """Current mapping of one logical register (map-table read)."""
        self._check_logical(logical)
        return self._map[logical]

    def _check_logical(self, logical: int) -> None:
        if not 0 <= logical < self.logical_registers:
            raise ValueError(f"logical register {logical} out of range")

    def rename_group(
        self, group: list[tuple[tuple[int, ...], int | None]]
    ) -> list[RenamedInstruction]:
        """Rename one dispatch group atomically.

        Args:
            group: Per instruction, ``(logical_sources, logical_dest)``
                with ``logical_dest`` None for non-writing instructions.

        Returns:
            One :class:`RenamedInstruction` per input, with
            intra-group dependences resolved through the dependence
            check logic (latest earlier writer wins).

        Raises:
            OutOfPhysicalRegisters: if the free list cannot cover the
                group's destinations; the map table is left unchanged
                (the machine would stall the whole group).
        """
        destinations = sum(1 for _srcs, dest in group if dest is not None)
        if destinations > len(self._free):
            raise OutOfPhysicalRegisters(
                f"group needs {destinations} registers, {len(self._free)} free"
            )
        results: list[RenamedInstruction] = []
        # Intra-group writers seen so far: logical -> physical.
        group_writers: dict[int, int] = {}
        for logical_srcs, logical_dest in group:
            phys_srcs = []
            bypassed = []
            for logical in logical_srcs:
                self._check_logical(logical)
                if logical in group_writers:
                    phys_srcs.append(group_writers[logical])
                    bypassed.append(True)
                else:
                    phys_srcs.append(self._map[logical])
                    bypassed.append(False)
            phys_dest = None
            prev_dest = None
            if logical_dest is not None:
                self._check_logical(logical_dest)
                phys_dest = self._free.pop()
                self._free_set.discard(phys_dest)
                # The register this destination will eventually free is
                # whatever held the logical register before this
                # instruction -- including an earlier group member.
                prev_dest = group_writers.get(logical_dest, self._map[logical_dest])
                group_writers[logical_dest] = phys_dest
            results.append(
                RenamedInstruction(
                    phys_srcs=tuple(phys_srcs),
                    phys_dest=phys_dest,
                    prev_dest=prev_dest,
                    group_bypassed=tuple(bypassed),
                )
            )
        # Commit the group's new mappings to the map table.
        for logical, physical in group_writers.items():
            self._map[logical] = physical
        return results

    def rename_dest(self, logical_dest: int) -> tuple[int, int]:
        """Single-destination fast path for the pipeline's hot loop.

        Semantically identical to ``rename_group([((), logical_dest)])``
        -- same free-list pop, same previous-mapping capture, same map
        update -- but without building the per-group bookkeeping or a
        :class:`RenamedInstruction` (the pipeline only needs the new
        and previous physical registers).

        Returns:
            ``(phys_dest, prev_dest)``.

        Raises:
            OutOfPhysicalRegisters: if the free list is empty.
        """
        free = self._free
        if not free:
            raise OutOfPhysicalRegisters("group needs 1 registers, 0 free")
        phys_dest = free.pop()
        self._free_set.discard(phys_dest)
        prev_dest = self._map[logical_dest]
        self._map[logical_dest] = phys_dest
        return phys_dest, prev_dest

    def release(self, physical: int) -> None:
        """Return a physical register to the free list (at commit).

        Raises:
            ValueError: if the register is out of range or already
                free (double release is always a machine bug).
        """
        if not 0 <= physical < self.physical_registers:
            raise ValueError(f"physical register {physical} out of range")
        if physical in self._free_set:
            raise ValueError(f"double release of physical register {physical}")
        self._free.append(physical)
        self._free_set.add(physical)

    def live_mappings(self) -> dict[int, int]:
        """Snapshot of the current logical -> physical map."""
        return {logical: phys for logical, phys in enumerate(self._map)}
