"""Simulation statistics."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimStats:
    """Counters and results from one timing-simulation run.

    IPC is instructions *committed* per cycle, as in the paper's
    figures.
    """

    machine: str = ""
    workload: str = ""
    committed: int = 0
    cycles: int = 0
    fetched: int = 0
    branch_lookups: int = 0
    branch_hits: int = 0
    mispredicts: int = 0
    cache_accesses: int = 0
    cache_misses: int = 0
    store_forwards: int = 0
    #: Committed instructions that consumed at least one operand over
    #: an inter-cluster bypass (Figure 17 bottom).
    inter_cluster_bypasses: int = 0
    #: Dispatch stall cycles by cause ("window_full", "no_fifo", ...).
    dispatch_stalls: dict[str, int] = field(default_factory=dict)
    #: Histogram of instructions issued per cycle.
    issue_histogram: dict[int, int] = field(default_factory=dict)
    #: Sum over cycles of buffered (window/FIFO) instructions.
    occupancy_sum: int = 0

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.committed / self.cycles

    @property
    def branch_accuracy(self) -> float:
        """Conditional-branch prediction accuracy."""
        if self.branch_lookups == 0:
            return 0.0
        return self.branch_hits / self.branch_lookups

    @property
    def cache_miss_rate(self) -> float:
        """Data-cache miss rate."""
        if self.cache_accesses == 0:
            return 0.0
        return self.cache_misses / self.cache_accesses

    @property
    def mean_occupancy(self) -> float:
        """Mean instructions buffered in the issue window/FIFOs."""
        if self.cycles == 0:
            return 0.0
        return self.occupancy_sum / self.cycles

    @property
    def inter_cluster_bypass_frequency(self) -> float:
        """Fraction of committed instructions using inter-cluster
        bypasses (the paper's Figure 17 metric)."""
        if self.committed == 0:
            return 0.0
        return self.inter_cluster_bypasses / self.committed

    def note_stall(self, cause: str) -> None:
        """Record one dispatch-stall cycle attributed to ``cause``."""
        self.dispatch_stalls[cause] = self.dispatch_stalls.get(cause, 0) + 1

    def note_issue(self, count: int) -> None:
        """Record the number of instructions issued this cycle."""
        self.issue_histogram[count] = self.issue_histogram.get(count, 0) + 1

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.machine} on {self.workload}: IPC={self.ipc:.3f} "
            f"({self.committed} insts / {self.cycles} cycles, "
            f"bpred={self.branch_accuracy * 100:.1f}%, "
            f"dmiss={self.cache_miss_rate * 100:.1f}%, "
            f"xbypass={self.inter_cluster_bypass_frequency * 100:.1f}%)"
        )
