"""Simulation statistics, stall attribution, and their invariants.

Two layers of accounting live here:

* **Event counters** (``committed``, ``mispredicts``, ...) incremented
  by the pipeline as things happen.
* **Cycle attribution**: every simulated cycle is charged to exactly
  one :class:`StallCause` (or counted as active), so the breakdown
  always sums to ``cycles``.  :meth:`SimStats.validate` asserts this
  and the other cross-counter invariants.

All serialisation goes through :meth:`SimStats.to_dict` /
:meth:`SimStats.from_dict` -- the one audited path -- and
multi-workload aggregation goes through :meth:`SimStats.merge`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class StallCause(str, Enum):
    """Closed set of reasons a cycle (or a dispatch slot) is lost.

    The string values are the wire format used in JSON exports and
    accepted by :meth:`SimStats.note_stall`; anything outside this
    enum raises ``ValueError`` instead of silently creating a new
    counter.
    """

    #: Dispatch blocked: 128-instruction in-flight window is full.
    IN_FLIGHT = "in_flight"
    #: Dispatch blocked: no free integer physical register.
    INT_REGS = "int_regs"
    #: Dispatch blocked: no free floating-point physical register.
    FP_REGS = "fp_regs"
    #: Dispatch blocked: the issue window has no free entry.
    WINDOW_FULL = "window_full"
    #: Dispatch blocked: the steering heuristic found no usable FIFO.
    NO_FIFO = "no_fifo"
    #: Nothing to dispatch: front end starved (mispredict redirect,
    #: front-end latency, or an empty fetch buffer).
    FETCH_STARVED = "fetch_starved"
    #: Issue blocked: a ready instruction found no free functional unit.
    FU_CONTENTION = "fu_contention"
    #: Issue blocked: a ready memory operation found no free cache port.
    CACHE_PORT = "cache_port"
    #: Issue blocked: a ready load waits for an earlier store's address.
    LOAD_STORE_ORDER = "load_store_order"
    #: Issue blocked: operands have not yet crossed the inter-cluster
    #: bypass to a cluster with a free unit (execution-driven steering).
    INTER_CLUSTER_WAIT = "inter_cluster_wait"
    #: Issue blocked: the register file ran out of read ports this
    #: cycle (the ``ports_limited`` regfile model).
    REGFILE_PORT = "regfile_port"
    #: Issue blocked: the scheduler held a candidate past its
    #: predicted ready time (the ``load_delay_tracking`` strategy).
    SCHED_WAIT = "sched_wait"
    #: End of trace: fetch exhausted, pipeline draining to commit.
    DRAIN = "drain"


#: Dispatch-side causes that per-cycle attribution may refine with an
#: issue-side cause (backpressure ultimately created at issue).
BACKPRESSURE_CAUSES = frozenset(
    (StallCause.WINDOW_FULL, StallCause.NO_FIFO, StallCause.IN_FLIGHT)
)


@dataclass
class SimStats:
    """Counters and results from one timing-simulation run.

    IPC is instructions *committed* per cycle, as in the paper's
    figures.
    """

    machine: str = ""
    workload: str = ""
    committed: int = 0
    cycles: int = 0
    fetched: int = 0
    branch_lookups: int = 0
    branch_hits: int = 0
    mispredicts: int = 0
    cache_accesses: int = 0
    cache_misses: int = 0
    store_forwards: int = 0
    #: Committed instructions that consumed at least one operand over
    #: an inter-cluster bypass (Figure 17 bottom).
    inter_cluster_bypasses: int = 0
    #: Dispatch-slot stall events by cause (one per blocked dispatch
    #: cycle, as before, but keys are now :class:`StallCause`).
    dispatch_stalls: dict[StallCause, int] = field(default_factory=dict)
    #: Histogram of instructions issued per cycle.
    issue_histogram: dict[int, int] = field(default_factory=dict)
    #: Sum over cycles of buffered (window/FIFO) instructions.
    occupancy_sum: int = 0
    #: Cycles in which dispatch made forward progress.
    active_cycles: int = 0
    #: Cycle-exact attribution: every non-active cycle charged to one
    #: cause; ``active_cycles + sum(stall_cycles) == cycles``.
    stall_cycles: dict[StallCause, int] = field(default_factory=dict)
    #: Clock period in picoseconds, annotated after simulation by the
    #: design layer (:meth:`repro.core.design.DesignPoint.annotate`)
    #: from the machine's critical path at a chosen technology; 0.0
    #: until annotated.  Not a counter: merging requires agreement
    #: rather than summing.
    clock_ps: float = 0.0

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.committed / self.cycles

    @property
    def branch_accuracy(self) -> float:
        """Conditional-branch prediction accuracy."""
        if self.branch_lookups == 0:
            return 0.0
        return self.branch_hits / self.branch_lookups

    @property
    def cache_miss_rate(self) -> float:
        """Data-cache miss rate."""
        if self.cache_accesses == 0:
            return 0.0
        return self.cache_misses / self.cache_accesses

    @property
    def mean_occupancy(self) -> float:
        """Mean instructions buffered in the issue window/FIFOs."""
        if self.cycles == 0:
            return 0.0
        return self.occupancy_sum / self.cycles

    @property
    def inter_cluster_bypass_frequency(self) -> float:
        """Fraction of committed instructions using inter-cluster
        bypasses (the paper's Figure 17 metric)."""
        if self.committed == 0:
            return 0.0
        return self.inter_cluster_bypasses / self.committed

    @property
    def frequency_ghz(self) -> float:
        """Clock frequency implied by :attr:`clock_ps` (0.0 when the
        run has not been clock-annotated)."""
        if self.clock_ps == 0.0:
            return 0.0
        return 1000.0 / self.clock_ps

    @property
    def bips(self) -> float:
        """Billions of instructions per second: IPC x frequency (the
        paper's joint complexity-effectiveness metric; 0.0 when the
        run has not been clock-annotated)."""
        return self.ipc * self.frequency_ghz

    # ------------------------------------------------------------------
    # recording hooks (called by the pipeline)
    # ------------------------------------------------------------------

    def note_stall(self, cause: StallCause | str) -> None:
        """Record one blocked dispatch cycle attributed to ``cause``.

        Raises:
            ValueError: if ``cause`` is not a :class:`StallCause`.
        """
        cause = StallCause(cause)
        self.dispatch_stalls[cause] = self.dispatch_stalls.get(cause, 0) + 1

    def note_issue(self, count: int) -> None:
        """Record the number of instructions issued this cycle."""
        self.issue_histogram[count] = self.issue_histogram.get(count, 0) + 1

    def attribute_cycle(self, cause: StallCause | None) -> None:
        """Charge one cycle to ``cause`` (None = dispatch progressed)."""
        if cause is None:
            self.active_cycles += 1
        else:
            cause = StallCause(cause)
            self.stall_cycles[cause] = self.stall_cycles.get(cause, 0) + 1

    # ------------------------------------------------------------------
    # invariants, aggregation, serialisation
    # ------------------------------------------------------------------

    def validate(self) -> "SimStats":
        """Check cross-counter invariants; raises on violation.

        Checks (for a completed run):

        * ``committed <= fetched``;
        * the issue histogram covers every cycle and its weighted
          total equals the committed count (everything committed was
          issued exactly once, and nothing else was);
        * stall/active cycle attribution partitions ``cycles``;
        * stall keys come from the closed :class:`StallCause` enum.

        Returns:
            self, for chaining.

        Raises:
            ValueError: listing every violated invariant.
        """
        errors: list[str] = []
        if self.committed > self.fetched:
            errors.append(
                f"committed ({self.committed}) exceeds fetched ({self.fetched})"
            )
        histogram_cycles = sum(self.issue_histogram.values())
        if histogram_cycles != self.cycles:
            errors.append(
                f"issue histogram covers {histogram_cycles} cycles, "
                f"expected {self.cycles}"
            )
        issued = sum(k * v for k, v in self.issue_histogram.items())
        if issued != self.committed:
            errors.append(
                f"issue histogram totals {issued} issued instructions, "
                f"expected {self.committed} (committed)"
            )
        attributed = self.active_cycles + sum(self.stall_cycles.values())
        if attributed != self.cycles:
            errors.append(
                f"cycle attribution covers {attributed} cycles "
                f"({self.active_cycles} active + "
                f"{sum(self.stall_cycles.values())} stalled), "
                f"expected {self.cycles}"
            )
        for mapping, label in (
            (self.dispatch_stalls, "dispatch_stalls"),
            (self.stall_cycles, "stall_cycles"),
        ):
            for key in mapping:
                if not isinstance(key, StallCause):
                    errors.append(f"{label} key {key!r} is not a StallCause")
        if errors:
            raise ValueError("; ".join(errors))
        return self

    def merge(self, other: "SimStats") -> "SimStats":
        """Combine two runs' counters into a new :class:`SimStats`.

        Counters add; the machine label must agree (merging different
        machines is almost always an aggregation bug); workload labels
        join with ``+``.  Ratios (IPC and friends) then reflect the
        pooled cycles/instructions, which is the per-counter-sum
        aggregation the paper's harmonic-mean tables need underneath.

        Raises:
            ValueError: if the machine labels or (nonzero) clock
                annotations differ.
        """
        if self.machine and other.machine and self.machine != other.machine:
            raise ValueError(
                f"refusing to merge stats from different machines: "
                f"{self.machine!r} vs {other.machine!r}"
            )
        if (self.clock_ps and other.clock_ps
                and self.clock_ps != other.clock_ps):
            raise ValueError(
                f"refusing to merge stats with different clock "
                f"annotations: {self.clock_ps} ps vs {other.clock_ps} ps"
            )
        merged = SimStats(
            machine=self.machine or other.machine,
            workload="+".join(
                part for part in (self.workload, other.workload) if part
            ),
        )
        for name in _COUNTER_FIELDS:
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        for mapping_name in ("dispatch_stalls", "issue_histogram", "stall_cycles"):
            combined = dict(getattr(self, mapping_name))
            for key, value in getattr(other, mapping_name).items():
                combined[key] = combined.get(key, 0) + value
            setattr(merged, mapping_name, combined)
        merged.clock_ps = self.clock_ps or other.clock_ps
        return merged

    def to_dict(self) -> dict:
        """JSON-ready primitives (the single audited export path)."""
        payload = {"machine": self.machine, "workload": self.workload}
        for name in _COUNTER_FIELDS:
            payload[name] = getattr(self, name)
        payload["dispatch_stalls"] = {
            cause.value: count for cause, count in self.dispatch_stalls.items()
        }
        # JSON object keys must be strings.
        payload["issue_histogram"] = {
            str(k): v for k, v in self.issue_histogram.items()
        }
        payload["stall_cycles"] = {
            cause.value: count for cause, count in self.stall_cycles.items()
        }
        payload["clock_ps"] = self.clock_ps
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SimStats":
        """Inverse of :meth:`to_dict` (missing keys default to zero).

        Raises:
            ValueError: if a stall key is outside :class:`StallCause`.
        """
        stats = cls(
            machine=payload.get("machine", ""),
            workload=payload.get("workload", ""),
        )
        for name in _COUNTER_FIELDS:
            setattr(stats, name, payload.get(name, 0))
        stats.dispatch_stalls = {
            StallCause(cause): count
            for cause, count in payload.get("dispatch_stalls", {}).items()
        }
        stats.issue_histogram = {
            int(k): v for k, v in payload.get("issue_histogram", {}).items()
        }
        stats.stall_cycles = {
            StallCause(cause): count
            for cause, count in payload.get("stall_cycles", {}).items()
        }
        stats.clock_ps = float(payload.get("clock_ps", 0.0))
        return stats

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def stall_breakdown(self) -> list[tuple[str, int, float]]:
        """(cause, cycles, fraction-of-total) rows, largest first,
        with an ``active`` row, summing to ``cycles``."""
        total = self.cycles or 1
        rows = [("active", self.active_cycles, self.active_cycles / total)]
        rows.extend(
            (cause.value, count, count / total)
            for cause, count in sorted(
                self.stall_cycles.items(), key=lambda item: -item[1]
            )
        )
        return rows

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.machine} on {self.workload}: IPC={self.ipc:.3f} "
            f"({self.committed} insts / {self.cycles} cycles, "
            f"bpred={self.branch_accuracy * 100:.1f}%, "
            f"dmiss={self.cache_miss_rate * 100:.1f}%, "
            f"xbypass={self.inter_cluster_bypass_frequency * 100:.1f}%)"
        )


#: Plain integer counters handled uniformly by merge / to_dict.
_COUNTER_FIELDS = (
    "committed",
    "cycles",
    "fetched",
    "branch_lookups",
    "branch_hits",
    "mispredicts",
    "cache_accesses",
    "cache_misses",
    "store_forwards",
    "inter_cluster_bypasses",
    "occupancy_sum",
    "active_cycles",
)
