"""The cycle-level out-of-order pipeline timing model.

Trace-driven, like the paper's modified SimpleScalar: the committed
dynamic stream is replayed through the pipeline stages of Figure 1
(dependence-based variants follow Figure 11):

* **fetch** -- up to ``fetch_width`` instructions per cycle from a
  perfect instruction cache; conditional branches consult gshare, and
  a misprediction halts fetch until the branch executes (wrong-path
  work is modeled as lost fetch cycles).  Unconditional control
  transfers are predicted perfectly (Table 3).
* **rename/dispatch** -- in-order, up to ``dispatch_width`` per cycle,
  limited by physical registers, the 128-instruction in-flight window,
  and issue-buffer capacity; the steering policy assigns a cluster
  (and FIFO, for FIFO machines) here.
* **wakeup/select** -- out-of-order issue of up to ``issue_width``
  ready instructions per cycle, oldest first, subject to per-cluster
  functional units, cache ports, and -- for FIFO clusters -- the
  constraint that only FIFO heads are visible to select.  Loads also
  wait until every earlier store has computed its address (Table 3).
* **execute/bypass** -- single-cycle symmetric units; loads take the
  cache hit/miss latency; a value produced in one cluster reaches the
  other after the inter-cluster bypass latency.
* **commit** -- in order, up to ``retire_width`` per cycle.

The per-operand wakeup is event driven: each producer schedules
arrival events for its consumers, per cluster, so a cycle's work is
proportional to actual activity.

This module is the **optimized** implementation; its statistics are
pinned cycle-for-cycle to :mod:`repro.uarch.pipeline_reference` (the
frozen seed model) by the equivalence suite.  The speed comes from
three mechanisms, documented in ``docs/performance.md``:

* per-trace pre-analysis (:mod:`repro.uarch.preanalysis`) turns
  repeated attribute/enum lookups into flat array indexing;
* idle cycles -- where no stage can possibly act -- are *skipped* by
  jumping the clock to the next scheduled event while replicating the
  per-cycle statistics the reference would have accumulated;
* the stage bodies hoist attribute lookups into locals and avoid
  per-cycle allocations (reused steering views, placement singletons,
  a single-destination rename fast path).

Cycle skipping is disabled automatically in the configurations where
a spinning cycle has side effects (random steering consumes an RNG
draw per attempt; execution-driven steering resolves inter-cluster
waits by pure time advance).
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.isa.emulator import Trace
from repro.isa.instructions import FP_REG_BASE
from repro.obs.events import EventKind, EventTracer
from repro.uarch.cache import SetAssociativeCache
from repro.uarch.config import MachineConfig, SelectionPolicy, SteeringPolicy
from repro.uarch.depend import dependence_info
from repro.uarch.fifos import FifoSet
from repro.uarch.preanalysis import DEST_INT, preanalyze
from repro.uarch.predictor import GshareBranchPredictor
from repro.uarch.regfile_model import build_regfile
from repro.uarch.rename import RegisterRenamer
from repro.uarch.scheduler import build_scheduler, supports_reference
from repro.uarch.stats import BACKPRESSURE_CAUSES, SimStats, StallCause
from repro.uarch.steering import (
    FifoDispatchSteering,
    LeastLoadedSteering,
    ModuloSteering,
    OutstandingOperand,
    Placement,
    RandomSteering,
    SteeringView,
    WindowDispatchSteering,
)

_heappush = heapq.heappush
_heappop = heapq.heappop

#: Dispatch policies that pick a cluster without looking at operands.
_BLIND_POLICIES = (
    SteeringPolicy.RANDOM,
    SteeringPolicy.MODULO,
    SteeringPolicy.LEAST_LOADED,
)

_INF = float("inf")

#: Cycles after a value's arrival in a cluster until it can be read
#: from that cluster's register file instead of a bypass path (the
#: REG WRITE stage depth in Figure 1); used only for the Figure 17
#: inter-cluster bypass-frequency accounting.
REGFILE_WRITE_DELAY = 2

#: Fetch-buffer depth in multiples of the fetch width.
_FETCH_BUFFER_FACTOR = 2

#: Tie-break priority when several causes block issue in one cycle:
#: structural contention first, then memory ordering, then bypass
#: latency (higher rank wins a tie on blocked-instruction count).
_ISSUE_BLOCK_RANK = {
    StallCause.REGFILE_PORT: 5,
    StallCause.FU_CONTENTION: 4,
    StallCause.CACHE_PORT: 3,
    StallCause.LOAD_STORE_ORDER: 2,
    StallCause.INTER_CLUSTER_WAIT: 1,
    StallCause.SCHED_WAIT: 0,
}


class PipelineSimulator:
    """One machine configuration bound to one trace.

    Use :func:`simulate` for the one-shot convenience form.

    Args:
        config: The machine to model.
        trace: The committed dynamic instruction stream to replay.
        tracer: Optional :class:`~repro.obs.events.EventTracer`; when
            attached, every lifecycle step of every instruction is
            emitted as a structured event.  ``None`` (the default)
            keeps the hot path at one branch per event site.
        cycle_skip: Jump the clock over provably idle cycles (the
            default).  ``False`` steps every cycle like the reference
            model; statistics are identical either way.
    """

    def __init__(
        self,
        config: MachineConfig,
        trace: Trace,
        tracer: EventTracer | None = None,
        cycle_skip: bool = True,
    ):
        self.config = config
        self.trace = trace
        self.tracer = tracer
        self.insts = trace.insts
        info = dependence_info(trace)
        self.producers = info.producers
        self.consumers = info.consumers
        self.pre = preanalyze(trace)
        self.n_clusters = len(config.clusters)
        self.extra_bypass = config.extra_bypass_latency
        # Figure 10: a wakeup+select loop pipelined over N stages
        # delays every dependent wakeup by N-1 cycles.
        self.wakeup_bubble = config.wakeup_select_stages - 1
        self.predictor = GshareBranchPredictor(config.predictor)
        self.cache = SetAssociativeCache(config.cache)
        self.stats = SimStats(machine=config.name, workload=trace.name)
        self._steering = self._build_steering()
        # Machine scalars the cycle loop reads constantly, lifted out
        # of the frozen-dataclass property chain.
        self._policy = config.steering
        self._exec_driven = config.steering is SteeringPolicy.EXEC_DRIVEN
        self._cluster_caps = [c.capacity for c in config.clusters]
        self._cluster_fifo_flags = [c.uses_fifos for c in config.clusters]
        self._fu_counts = [c.fu_count for c in config.clusters]
        self._cache_ports = config.cache.ports
        self._total_capacity = config.total_capacity
        # Strategy objects: the wakeup/select scheduler and the
        # register-file port model named by the config (see
        # repro.uarch.scheduler / repro.uarch.regfile_model).
        self.scheduler = build_scheduler(self)
        self.regfile_model = build_regfile(self)
        self._sched_on_load_issue = getattr(
            self.scheduler, "on_load_issue", None
        )
        # A scheduler that holds candidates until cycles the event
        # machinery does not schedule cannot skip idle cycles.
        self.cycle_skip = cycle_skip and self.scheduler.supports_cycle_skip
        # A spinning cycle under random steering consumes RNG draws,
        # so skipping is legal only when no placement was attempted.
        self._skippable_steering = config.steering is not SteeringPolicy.RANDOM
        self._reset_state()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _build_steering(self):
        policy = self.config.steering
        if policy is SteeringPolicy.FIFO_DISPATCH:
            return FifoDispatchSteering(self.n_clusters)
        if policy is SteeringPolicy.WINDOW_DISPATCH:
            return WindowDispatchSteering(self.n_clusters)
        if policy is SteeringPolicy.RANDOM:
            return RandomSteering(self.n_clusters, seed=self.config.steering_seed)
        if policy is SteeringPolicy.MODULO:
            return ModuloSteering(self.n_clusters)
        if policy is SteeringPolicy.LEAST_LOADED:
            return LeastLoadedSteering(self.n_clusters)
        return None  # NONE and EXEC_DRIVEN place without a dispatch policy

    def _reset_state(self) -> None:
        n = len(self.insts)
        config = self.config
        self.cycle = 0
        # Per-instruction timing state.
        self.dispatched = bytearray(n)
        self.issued = bytearray(n)
        self.fetch_cycle = [0] * n
        self.dispatch_cycle = [0] * n
        self.issue_cycle = [0] * n
        self.complete_cycle = [_INF] * n
        self.commit_cycle = [0] * n
        self.cluster_of = [-1] * n
        self.pending: list[list[int] | None] = [None] * n
        self.home_cluster = [-1] * n  # cluster chosen at dispatch
        self.used_x_bypass = bytearray(n)
        # Wakeup plumbing.
        self.arrivals: dict[int, list[tuple[int, int]]] = {}
        self.waiting_on: list[list[int] | None] = [None] * n
        self.in_ready = bytearray(n)
        # Issue buffers.
        self.fifo_sets: list[FifoSet] = []
        self.fifo_of: dict[int, tuple[int, int]] = {}
        uses_fifos = any(c.uses_fifos for c in config.clusters)
        conceptual = config.steering is SteeringPolicy.WINDOW_DISPATCH
        if uses_fifos:
            self.fifo_sets = [
                FifoSet(c.fifo_count, c.fifo_depth) for c in config.clusters
            ]
        elif conceptual:
            # Section 5.6.2: each 32-entry window is modeled (for the
            # steering heuristic only) as eight FIFOs of four slots.
            self.fifo_sets = [
                FifoSet(max(1, c.window_size // 4), 4) for c in config.clusters
            ]
        self.conceptual_fifos = conceptual
        self.window_count = [0] * self.n_clusters
        # Non-compacting (position-priority) selection: track which
        # window slot each instruction occupies; lowest free slot is
        # allocated at dispatch and freed at issue.
        self.positional = config.selection is SelectionPolicy.POSITION
        self.slot_of: dict[int, int] = {}
        self.free_slots: list[list[int]] = [
            list(range(c.capacity)) for c in config.clusters
        ]
        for heap in self.free_slots:
            heapq.heapify(heap)
        self.ready_heaps: list[list[int]] = [[] for _ in range(self.n_clusters)]
        self.central_ready: list[int] = []
        # Frontend.
        self.fetch_ptr = 0
        self.next_fetch_cycle = 0
        self.pending_redirect: int | None = None
        self.fetch_buffer: deque[tuple[int, int]] = deque()  # (seq, ready cycle)
        self.fetch_buffer_cap = _FETCH_BUFFER_FACTOR * config.fetch_width
        # Resources.  Renaming is performed for real: map tables, free
        # lists, and previous-mapping release at commit.
        self.in_flight = 0
        if (config.int_phys_regs <= FP_REG_BASE
                or config.fp_phys_regs <= FP_REG_BASE):
            raise ValueError("physical register files smaller than the ISA")
        self.int_renamer = RegisterRenamer(
            physical_registers=config.int_phys_regs, logical_registers=FP_REG_BASE
        )
        self.fp_renamer = RegisterRenamer(
            physical_registers=config.fp_phys_regs, logical_registers=FP_REG_BASE
        )
        self.prev_dest_phys: list[int | None] = [None] * n
        # Memory ordering.
        self.unissued_stores: list[int] = []
        self.inflight_store_words: dict[int, int] = {}
        self.commit_ptr = 0
        # Per-cycle stall attribution (see _attribute_cycle).
        self._dispatch_block: StallCause | None = None
        self._issue_block: StallCause | None = None
        # Cycle-skipping state.
        self._idle = False
        self._place_called = False
        self._last_cause: StallCause | None = None
        self.skipped_cycles = 0
        # Allocation-free steering plumbing: placements for the
        # policies that always answer "cluster 0", and one reusable
        # view/room pair for the policies that take a full view.
        self._placement0 = Placement(cluster=0)
        self._view = SteeringView(self.fifo_sets)
        self._room = [0] * self.n_clusters
        if self._steering is not None:
            self._steering.reset()
        self.scheduler.reset()
        self.regfile_model.reset()

    @property
    def free_int_regs(self) -> int:
        """Free integer physical registers (from the real free list)."""
        return self.int_renamer.free_count

    @property
    def free_fp_regs(self) -> int:
        """Free floating-point physical registers."""
        return self.fp_renamer.free_count

    # ------------------------------------------------------------------
    # wakeup plumbing
    # ------------------------------------------------------------------

    def _avail_cycle(self, producer: int, cluster: int):
        """Cycle the producer's value can wake consumers in ``cluster``."""
        complete = self.complete_cycle[producer] + self.wakeup_bubble
        if self.cluster_of[producer] != cluster:
            return complete + self.extra_bypass
        return complete

    def _schedule_arrival(self, consumer: int, cluster: int, at_cycle) -> None:
        self.arrivals.setdefault(at_cycle, []).append((consumer, cluster))

    def _process_arrivals(self) -> None:
        events = self.arrivals.pop(self.cycle, None)
        if not events:
            return
        cycle = self.cycle
        tracer = self.tracer
        pending = self.pending
        in_ready = self.in_ready
        exec_driven = self._exec_driven
        home_cluster = self.home_cluster
        fifo_flags = self._cluster_fifo_flags
        central_ready = self.central_ready
        ready_heaps = self.ready_heaps
        for seq, cluster in events:
            counts = pending[seq]
            counts[cluster] -= 1
            if counts[cluster] == 0:
                if tracer is not None:
                    tracer.emit(cycle, EventKind.WAKEUP, seq, cluster)
                if exec_driven:
                    if not in_ready[seq]:
                        in_ready[seq] = 1
                        _heappush(central_ready, seq)
                elif not fifo_flags[home_cluster[seq]]:
                    # FIFO clusters poll their heads each cycle instead.
                    if cluster == home_cluster[seq] and not in_ready[seq]:
                        in_ready[seq] = 1
                        _heappush(ready_heaps[cluster], seq)

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------

    def _commit(self) -> None:
        budget = self.config.retire_width
        n = len(self.insts)
        seq = self.commit_ptr
        if seq >= n or not self.issued[seq]:
            return
        cycle = self.cycle
        horizon = cycle - 1
        tracer = self.tracer
        stats = self.stats
        issued = self.issued
        complete_cycle = self.complete_cycle
        pre = self.pre
        is_store = pre.is_store
        mem_word = pre.mem_word
        dest_kind = pre.dest_kind
        prev_dest_phys = self.prev_dest_phys
        used_x_bypass = self.used_x_bypass
        commit_cycle = self.commit_cycle
        inflight_store_words = self.inflight_store_words
        committed = 0
        while budget and seq < n:
            if not issued[seq] or complete_cycle[seq] > horizon:
                break
            if is_store[seq]:
                word = mem_word[seq]
                if word >= 0:
                    count = inflight_store_words.get(word, 0) - 1
                    if count > 0:
                        inflight_store_words[word] = count
                    else:
                        inflight_store_words.pop(word, None)
            kind = dest_kind[seq]
            if kind:
                previous = prev_dest_phys[seq]
                if previous is not None:
                    renamer = (
                        self.int_renamer if kind == DEST_INT else self.fp_renamer
                    )
                    renamer.release(previous)
            if used_x_bypass[seq]:
                stats.inter_cluster_bypasses += 1
            if tracer is not None:
                tracer.emit(cycle, EventKind.COMMIT, seq, self.cluster_of[seq])
            commit_cycle[seq] = cycle
            seq += 1
            committed += 1
            budget -= 1
        if committed:
            self.commit_ptr = seq
            self.in_flight -= committed
            stats.committed += committed

    # ------------------------------------------------------------------
    # issue (wakeup already done; this is select + execute)
    # ------------------------------------------------------------------

    def _oldest_unissued_store(self):
        heap = self.unissued_stores
        issued = self.issued
        while heap and issued[heap[0]]:
            _heappop(heap)
        return heap[0] if heap else None

    def _gather_candidates(self) -> list[tuple[int, int, int | None]]:
        """Collect issue candidates as (seq, cluster, fifo_index).

        Thin delegation kept for tests/tools that probe the issue
        stage directly; the issue loop itself calls the scheduler
        strategy (which may additionally *hold* candidates back).
        """
        return self.scheduler.gather()[0]

    def _requeue(self, leftovers: list[tuple[int, int, int | None]]) -> None:
        """Return unissued window candidates to their ready pools."""
        self.scheduler.requeue(leftovers)

    def _pick_exec_cluster(
        self, seq: int, fu_budget: list[int]
    ) -> tuple[int | None, StallCause | None]:
        """Execution-driven steering (Section 5.6.1): choose the
        cluster that provides the source values first, if it has a
        free unit; otherwise the other, if usable; else defer.

        Returns:
            ``(cluster, None)`` on success, or ``(None, cause)`` when
            deferred -- :data:`StallCause.INTER_CLUSTER_WAIT` if a
            free unit exists but the operands have not yet crossed the
            bypass to it, else :data:`StallCause.FU_CONTENTION`.
        """
        avail = [0, 0]
        for k in range(self.n_clusters):
            worst = 0
            for producer in self.pre.real_producers[seq]:
                cycle = self._avail_cycle(producer, k)
                if cycle > worst:
                    worst = cycle
            avail[k] = worst
        order = sorted(range(self.n_clusters), key=lambda k: (avail[k], k))
        for k in order:
            if avail[k] <= self.cycle and fu_budget[k] > 0:
                return k, None
        if any(budget > 0 for budget in fu_budget):
            return None, StallCause.INTER_CLUSTER_WAIT
        return None, StallCause.FU_CONTENTION

    def _load_latency(self, seq: int) -> int:
        if self.inflight_store_words.get(self.pre.mem_word[seq]):
            self.stats.store_forwards += 1
        return self.cache.load_latency(self.pre.mem_addr[seq])

    def _issue_one(self, seq: int, cluster: int, fifo_index: int | None) -> None:
        now = self.cycle
        tracer = self.tracer
        pre = self.pre
        if tracer is not None:
            origin = (
                f"fifo={fifo_index}" if fifo_index is not None
                else f"slot={self.slot_of[seq]}" if seq in self.slot_of
                else "window"
            )
            tracer.emit(now, EventKind.SELECT, seq, cluster, detail=origin)
        if pre.is_load[seq]:
            latency = self._load_latency(seq)
            on_load_issue = self._sched_on_load_issue
            if on_load_issue is not None:
                # Real-time load-delay feedback (load_delay_tracking).
                on_load_issue(seq, latency)
        else:
            latency = self.config.fu_latency
            if pre.is_store[seq]:
                self.cache.access(pre.mem_addr[seq])  # write-allocate fill
                word = pre.mem_word[seq]
                self.inflight_store_words[word] = (
                    self.inflight_store_words.get(word, 0) + 1
                )
        self.issued[seq] = 1
        self.issue_cycle[seq] = now
        complete = now + latency
        self.complete_cycle[seq] = complete
        self.cluster_of[seq] = cluster
        if tracer is not None:
            tracer.emit(now, EventKind.ISSUE, seq, cluster)
            tracer.emit(
                now, EventKind.EXECUTE, seq, cluster,
                detail=self.insts[seq].op_class.name.lower(), dur=latency,
            )
        # Leave the issue buffer.
        if fifo_index is not None:
            fifo = self.fifo_sets[cluster].fifos[fifo_index]
            fifo.pop_head()
            self.fifo_of.pop(seq, None)
        else:
            if self.conceptual_fifos:
                placement = self.fifo_of.pop(seq, None)
                if placement is not None:
                    self.fifo_sets[placement[0]].fifos[placement[1]].remove(seq)
            # The buffer slot belongs to the dispatch-time (home)
            # cluster -- for execution-driven steering that is the
            # central window, not the execution cluster chosen here.
            self.window_count[self.home_cluster[seq]] -= 1
        if self.positional:
            slot = self.slot_of.pop(seq, None)
            if slot is not None:
                _heappush(self.free_slots[self.home_cluster[seq]], slot)
        # Inter-cluster bypass accounting (Figure 17 bottom): count the
        # instruction if any operand came from the other cluster and
        # had not yet been written to this cluster's register file.
        if self.n_clusters > 1:
            cluster_of = self.cluster_of
            for producer in pre.real_producers[seq]:
                if cluster_of[producer] == cluster:
                    continue
                arrival = self._avail_cycle(producer, cluster)
                if now < arrival + REGFILE_WRITE_DELAY:
                    self.used_x_bypass[seq] = 1
                    if tracer is not None:
                        tracer.emit(
                            now, EventKind.BYPASS, seq, cluster,
                            detail=f"from={cluster_of[producer]}",
                        )
                    break
        # Wake dispatched consumers.
        waiters = self.waiting_on[seq]
        if waiters:
            arrivals = self.arrivals
            base = complete + self.wakeup_bubble
            if self.n_clusters == 1:
                bucket = arrivals.get(base)
                if bucket is None:
                    bucket = arrivals[base] = []
                for consumer in waiters:
                    bucket.append((consumer, 0))
            else:
                extra = self.extra_bypass
                avail = [
                    base if cluster == k else base + extra
                    for k in range(self.n_clusters)
                ]
                for consumer in waiters:
                    for k, at_cycle in enumerate(avail):
                        arrivals.setdefault(at_cycle, []).append((consumer, k))
            self.waiting_on[seq] = None
        # A resolved mispredicted branch restarts fetch.
        if self.pending_redirect == seq:
            self.pending_redirect = None
            self.next_fetch_cycle = complete

    def _issue(self) -> int:
        exec_driven = self._exec_driven
        config = self.config
        budget = config.issue_width
        fu_budget = self._fu_counts.copy()
        mem_budget = self._cache_ports
        oldest_store = self._oldest_unissued_store()
        leftovers: list[tuple[int, int, int | None]] = []
        issued_count = 0
        # Why ready instructions failed to issue this cycle, by cause;
        # _attribute_cycle picks the dominant one.
        blocked: dict[StallCause, int] = {}
        self._issue_block = None
        pre = self.pre
        is_mem_flags = pre.is_mem
        is_load_flags = pre.is_load
        is_store_flags = pre.is_store
        issue_one = self._issue_one
        candidates, held = self.scheduler.gather()
        if held:
            # The scheduler refused to expose these to select (e.g. a
            # predicted-unready consumer); charge and requeue them.
            for candidate, cause in held:
                blocked[cause] = blocked.get(cause, 0) + 1
                leftovers.append(candidate)
        regfile = self.regfile_model
        ports_limited = regfile.limited
        if ports_limited:
            regfile.new_cycle()
            read_budget = regfile.budget
            reads_of = regfile.reads
        for candidate in candidates:
            seq, cluster, fifo_index = candidate
            if budget == 0:
                leftovers.append(candidate)
                continue
            is_mem = is_mem_flags[seq]
            if is_mem and mem_budget == 0:
                blocked[StallCause.CACHE_PORT] = (
                    blocked.get(StallCause.CACHE_PORT, 0) + 1
                )
                leftovers.append(candidate)
                continue
            if (
                is_load_flags[seq]
                and oldest_store is not None
                and oldest_store < seq
            ):
                blocked[StallCause.LOAD_STORE_ORDER] = (
                    blocked.get(StallCause.LOAD_STORE_ORDER, 0) + 1
                )
                leftovers.append(candidate)
                continue
            if exec_driven:
                chosen, defer_cause = self._pick_exec_cluster(seq, fu_budget)
                if chosen is None:
                    blocked[defer_cause] = blocked.get(defer_cause, 0) + 1
                    leftovers.append(candidate)
                    continue
                cluster = chosen
            elif fu_budget[cluster] == 0:
                blocked[StallCause.FU_CONTENTION] = (
                    blocked.get(StallCause.FU_CONTENTION, 0) + 1
                )
                leftovers.append(candidate)
                continue
            if ports_limited:
                needed_reads = reads_of[seq]
                if needed_reads > read_budget[cluster]:
                    blocked[StallCause.REGFILE_PORT] = (
                        blocked.get(StallCause.REGFILE_PORT, 0) + 1
                    )
                    leftovers.append(candidate)
                    continue
                read_budget[cluster] -= needed_reads
            issue_one(seq, cluster, fifo_index)
            budget -= 1
            fu_budget[cluster] -= 1
            if is_mem:
                mem_budget -= 1
            if is_store_flags[seq]:
                oldest_store = self._oldest_unissued_store()
            issued_count += 1
        if blocked:
            # The cause blocking the most ready instructions wins;
            # ties break on a fixed structural-first order.
            self._issue_block = max(
                blocked, key=lambda c: (blocked[c], _ISSUE_BLOCK_RANK[c])
            )
        if leftovers:
            self._requeue(leftovers)
        histogram = self.stats.issue_histogram
        histogram[issued_count] = histogram.get(issued_count, 0) + 1
        return issued_count

    # ------------------------------------------------------------------
    # dispatch (rename + steer + insert into issue buffers)
    # ------------------------------------------------------------------

    def _outstanding_operands(self, seq: int) -> list[OutstandingOperand]:
        outstanding = []
        fifo_of = self.fifo_of
        for producer in self.pre.real_producers[seq]:
            placement = fifo_of.get(producer)
            if placement is None:
                continue  # already issued, or never buffered
            cluster, fifo_index = placement
            fifo = self.fifo_sets[cluster].fifos[fifo_index]
            outstanding.append(
                OutstandingOperand(
                    producer=producer,
                    cluster=cluster,
                    fifo=fifo_index,
                    is_tail=fifo.tail == producer,
                )
            )
        return outstanding

    def _place(self, seq: int) -> tuple[Placement | None, StallCause]:
        """Choose where ``seq`` dispatches to; (None, cause) = stall."""
        policy = self._policy
        window_count = self.window_count
        if policy is SteeringPolicy.NONE:
            if window_count[0] >= self._cluster_caps[0]:
                return None, StallCause.WINDOW_FULL
            return self._placement0, StallCause.WINDOW_FULL
        if policy is SteeringPolicy.EXEC_DRIVEN:
            if sum(window_count) >= self._total_capacity:
                return None, StallCause.WINDOW_FULL
            return self._placement0, StallCause.WINDOW_FULL
        view = self._view
        if policy in _BLIND_POLICIES:
            room = self._room
            caps = self._cluster_caps
            for k in range(self.n_clusters):
                room[k] = caps[k] - window_count[k]
            view.window_room = room
            placement = self._steering.place(view, [])
            return placement, StallCause.WINDOW_FULL
        # FIFO_DISPATCH / WINDOW_DISPATCH.
        if self.conceptual_fifos:
            room = self._room
            caps = self._cluster_caps
            for k in range(self.n_clusters):
                room[k] = caps[k] - window_count[k]
            view.window_room = room
        else:
            view.window_room = None
        placement = self._steering.place(view, self._outstanding_operands(seq))
        return placement, StallCause.NO_FIFO

    def _apply_placement(self, seq: int, placement: Placement) -> None:
        cluster = placement.cluster
        self.home_cluster[seq] = cluster
        if self.positional and self.free_slots[cluster]:
            self.slot_of[seq] = _heappop(self.free_slots[cluster])
        if placement.fifo is not None:
            self.fifo_sets[cluster].fifos[placement.fifo].push(seq)
            self.fifo_of[seq] = (cluster, placement.fifo)
            if self.conceptual_fifos:
                self.window_count[cluster] += 1
        else:
            self.window_count[cluster] += 1

    def _init_pending(self, seq: int) -> None:
        now = self.cycle
        n_clusters = self.n_clusters
        issued = self.issued
        waiting_on = self.waiting_on
        producers = self.pre.real_producers[seq]
        if n_clusters == 1:
            count = 0
            complete_cycle = self.complete_cycle
            bubble = self.wakeup_bubble
            arrivals = self.arrivals
            for producer in producers:
                if not issued[producer]:
                    waiters = waiting_on[producer]
                    if waiters is None:
                        waiting_on[producer] = [seq]
                    else:
                        waiters.append(seq)
                    count += 1
                else:
                    arrival = complete_cycle[producer] + bubble
                    if arrival > now:
                        count += 1
                        arrivals.setdefault(arrival, []).append((seq, 0))
            counts = [count]
        else:
            counts = [0] * n_clusters
            for producer in producers:
                if not issued[producer]:
                    waiters = waiting_on[producer]
                    if waiters is None:
                        waiting_on[producer] = [seq]
                    else:
                        waiters.append(seq)
                    for k in range(n_clusters):
                        counts[k] += 1
                else:
                    for k in range(n_clusters):
                        arrival = self._avail_cycle(producer, k)
                        if arrival > now:
                            counts[k] += 1
                            self._schedule_arrival(seq, k, arrival)
        self.pending[seq] = counts
        if self._exec_driven:
            if min(counts) == 0:
                self.in_ready[seq] = 1
                _heappush(self.central_ready, seq)
        else:
            home = self.home_cluster[seq]
            if not self._cluster_fifo_flags[home] and counts[home] == 0:
                self.in_ready[seq] = 1
                _heappush(self.ready_heaps[home], seq)

    def _dispatch(self) -> int:
        budget = self.config.dispatch_width
        tracer = self.tracer
        dispatched_count = 0
        self._dispatch_block = None
        fetch_buffer = self.fetch_buffer
        if not fetch_buffer:
            return 0
        cycle = self.cycle
        pre = self.pre
        dest_kind = pre.dest_kind
        logical_dest = pre.logical_dest
        is_store_flags = pre.is_store
        int_renamer = self.int_renamer
        fp_renamer = self.fp_renamer
        int_free = int_renamer._free
        fp_free = fp_renamer._free
        max_in_flight = self.config.max_in_flight
        place = self._place
        apply_placement = self._apply_placement
        init_pending = self._init_pending
        dispatched = self.dispatched
        dispatch_cycle = self.dispatch_cycle
        prev_dest_phys = self.prev_dest_phys
        # The per-instruction helpers are inlined below for the common
        # shapes -- unless a wrapper (profiler, test shadow) sits on
        # the instance, in which case the method path is kept so the
        # wrapper observes every call.
        shadowed = self.__dict__
        simple_place = (
            self._policy is SteeringPolicy.NONE
            and not self.positional
            and "_place" not in shadowed
            and "_apply_placement" not in shadowed
        )
        simple_pending = (
            self.n_clusters == 1
            and not self._exec_driven
            and "_init_pending" not in shadowed
        )
        if simple_place:
            window_count = self.window_count
            cap0 = self._cluster_caps[0]
            placement0 = self._placement0
            home_cluster = self.home_cluster
        if simple_pending:
            real_producers = pre.real_producers
            issued = self.issued
            waiting_on = self.waiting_on
            complete_cycle = self.complete_cycle
            bubble = self.wakeup_bubble
            arrivals = self.arrivals
            pending = self.pending
            in_ready = self.in_ready
            home_windowed = not self._cluster_fifo_flags[0]
            ready_heap0 = self.ready_heaps[0]
        while budget and fetch_buffer:
            seq, ready_cycle = fetch_buffer[0]
            if ready_cycle > cycle:
                break
            if self.in_flight >= max_in_flight:
                self._note_dispatch_block(StallCause.IN_FLIGHT)
                break
            kind = dest_kind[seq]
            if kind:
                if kind == DEST_INT:
                    if not int_free:
                        self._note_dispatch_block(StallCause.INT_REGS)
                        break
                elif not fp_free:
                    self._note_dispatch_block(StallCause.FP_REGS)
                    break
            if simple_place:
                if window_count[0] >= cap0:
                    self._note_dispatch_block(StallCause.WINDOW_FULL)
                    break
                placement = placement0
                fetch_buffer.popleft()
                home_cluster[seq] = 0
                window_count[0] += 1
            else:
                self._place_called = True
                placement, stall_cause = place(seq)
                if placement is None:
                    self._note_dispatch_block(stall_cause)
                    break
                fetch_buffer.popleft()
                apply_placement(seq, placement)
            if tracer is not None:
                rule = getattr(self._steering, "last_rule", "")
                fifo = placement.fifo
                tracer.emit(
                    cycle, EventKind.STEER, seq, placement.cluster,
                    detail=(f"fifo={fifo} {rule}".strip() if fifo is not None
                            else rule),
                )
            if kind:
                # Single-destination rename fast path; the previous
                # mapping is remembered and freed at commit.
                renamer = int_renamer if kind == DEST_INT else fp_renamer
                phys_dest, prev_dest = renamer.rename_dest(logical_dest[seq])
                prev_dest_phys[seq] = prev_dest
                if tracer is not None:
                    tracer.emit(
                        cycle, EventKind.RENAME, seq,
                        detail=f"r{pre.dest[seq]}->p{phys_dest}",
                    )
            if tracer is not None:
                tracer.emit(cycle, EventKind.DISPATCH, seq, placement.cluster)
            if is_store_flags[seq]:
                _heappush(self.unissued_stores, seq)
            dispatched[seq] = 1
            dispatch_cycle[seq] = cycle
            self.in_flight += 1
            if simple_pending:
                count = 0
                for producer in real_producers[seq]:
                    if not issued[producer]:
                        waiters = waiting_on[producer]
                        if waiters is None:
                            waiting_on[producer] = [seq]
                        else:
                            waiters.append(seq)
                        count += 1
                    else:
                        arrival = complete_cycle[producer] + bubble
                        if arrival > cycle:
                            count += 1
                            bucket = arrivals.get(arrival)
                            if bucket is None:
                                arrivals[arrival] = [(seq, 0)]
                            else:
                                bucket.append((seq, 0))
                pending[seq] = [count]
                if home_windowed and count == 0:
                    in_ready[seq] = 1
                    _heappush(ready_heap0, seq)
            else:
                init_pending(seq)
            budget -= 1
            dispatched_count += 1
        return dispatched_count

    def _note_dispatch_block(self, cause: StallCause) -> None:
        """Record why dispatch stopped this cycle (counter + cause)."""
        self.stats.note_stall(cause)
        self._dispatch_block = cause

    # ------------------------------------------------------------------
    # fetch
    # ------------------------------------------------------------------

    def _fetch(self) -> None:
        cycle = self.cycle
        if cycle < self.next_fetch_cycle or self.pending_redirect is not None:
            return
        n = len(self.insts)
        fetch_ptr = self.fetch_ptr
        if fetch_ptr >= n:
            return
        budget = self.config.fetch_width
        ready_at = cycle + self.config.front_end_stages
        tracer = self.tracer
        fetch_buffer = self.fetch_buffer
        cap = self.fetch_buffer_cap
        fetch_cycle = self.fetch_cycle
        pre = self.pre
        is_branch = pre.is_branch
        pc = pre.pc
        taken = pre.taken
        predictor = self.predictor
        fetched = 0
        while budget and fetch_ptr < n:
            if len(fetch_buffer) >= cap:
                break
            fetch_buffer.append((fetch_ptr, ready_at))
            fetch_cycle[fetch_ptr] = cycle
            if tracer is not None:
                tracer.emit(
                    cycle, EventKind.FETCH, fetch_ptr,
                    detail=self.insts[fetch_ptr].opcode,
                )
            seq = fetch_ptr
            fetch_ptr += 1
            fetched += 1
            budget -= 1
            if is_branch[seq]:
                prediction = predictor.predict_and_update(pc[seq], taken[seq])
                if prediction != taken[seq]:
                    # Mispredicted: fetch halts until the branch
                    # executes and redirects the front end.
                    self.stats.mispredicts += 1
                    if tracer is not None:
                        tracer.emit(
                            cycle, EventKind.SQUASH, seq, detail="mispredict"
                        )
                    self.pending_redirect = seq
                    self.next_fetch_cycle = _INF
                    break
        self.fetch_ptr = fetch_ptr
        if fetched:
            self.stats.fetched += fetched

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def _buffered_instructions(self) -> int:
        """Instructions currently in issue windows/FIFOs."""
        buffered = sum(self.window_count)
        if self.fifo_sets and not self.conceptual_fifos:
            buffered += sum(fs.occupancy for fs in self.fifo_sets)
        return buffered

    def step(self) -> None:
        """Advance one cycle."""
        cycle = self.cycle
        had_arrivals = cycle in self.arrivals
        if had_arrivals:
            self._process_arrivals()
        commit_before = self.commit_ptr
        self._commit()
        issued = self._issue()
        self._place_called = False
        dispatched = self._dispatch()
        fetch_before = self.fetch_ptr
        self._fetch()
        buffered = sum(self.window_count)
        if self.fifo_sets and not self.conceptual_fifos:
            for fifo_set in self.fifo_sets:
                for fifo in fifo_set.fifos:
                    buffered += len(fifo._entries)
        self.stats.occupancy_sum += buffered
        self._attribute_cycle(dispatched, issued)
        self.cycle = cycle + 1
        # An idle cycle mutated nothing: every stage would repeat the
        # exact same (non-)work until an external event lands.  The
        # two guarded exceptions are clock-resolved waits (exec-driven
        # steering) and placement attempts that consume RNG draws.
        self._idle = (
            dispatched == 0
            and issued == 0
            and not had_arrivals
            and commit_before == self.commit_ptr
            and fetch_before == self.fetch_ptr
            and (self._skippable_steering or not self._place_called)
            and self._issue_block is not StallCause.INTER_CLUSTER_WAIT
        )

    def _fast_forward(self, max_cycles: int) -> None:
        """Jump the clock from an idle cycle to the next event.

        Called only after :meth:`step` proved the just-simulated cycle
        idle.  Each skipped cycle's statistics are replicated exactly
        as the per-cycle loop would have accumulated them: one zero
        entry in the issue histogram, one stall cycle charged to the
        same cause, one dispatch-stall count when dispatch was
        blocked, and the (unchanged) buffer occupancy.

        The next event is the earliest of: a scheduled operand
        arrival, the commit head completing, the fetch buffer's head
        becoming dispatchable, and fetch resuming -- capped at the
        run's cycle bound so a genuine deadlock still trips the
        no-forward-progress guard with identical state.
        """
        cycle = self.cycle
        n = len(self.insts)
        candidates = []
        if self.arrivals:
            candidates.append(min(self.arrivals))
        ptr = self.commit_ptr
        if ptr < n and self.issued[ptr]:
            candidates.append(self.complete_cycle[ptr] + 1)
        fetch_buffer = self.fetch_buffer
        if fetch_buffer:
            # A head with ready_cycle < cycle is stuck on a resource,
            # not on time; one at exactly `cycle` clamps the skip to
            # zero (the current cycle is live, not idle).
            ready_cycle = fetch_buffer[0][1]
            if ready_cycle >= cycle:
                candidates.append(ready_cycle)
        if (
            self.pending_redirect is None
            and self.fetch_ptr < n
            and len(fetch_buffer) < self.fetch_buffer_cap
        ):
            resume = self.next_fetch_cycle
            if resume >= cycle:
                candidates.append(resume)
        if not candidates:
            # Nothing scheduled can ever change the (provably idle)
            # pipeline state again; the reference model would spin to
            # the cycle bound and raise there, so failing now reports
            # the same deadlock without the spin.
            raise RuntimeError(
                f"no forward progress possible at cycle {cycle}: no "
                f"scheduled event remains "
                f"({self.commit_ptr}/{n} committed) -- simulator bug"
            )
        target = min(candidates)
        if target > max_cycles + 1:
            target = max_cycles + 1
        skipped = target - cycle
        if skipped <= 0:
            return
        stats = self.stats
        cause = self._last_cause
        stall_cycles = stats.stall_cycles
        stall_cycles[cause] = stall_cycles.get(cause, 0) + skipped
        histogram = stats.issue_histogram
        histogram[0] = histogram.get(0, 0) + skipped
        block = self._dispatch_block
        if block is not None:
            dispatch_stalls = stats.dispatch_stalls
            dispatch_stalls[block] = dispatch_stalls.get(block, 0) + skipped
        stats.occupancy_sum += self._buffered_instructions() * skipped
        self.cycle = target
        self.skipped_cycles += skipped

    def _attribute_cycle(self, dispatched: int, issued: int) -> None:
        """Charge this cycle to exactly one cause.

        The partition (which :meth:`SimStats.validate` checks sums to
        total cycles):

        * dispatch progressed -> active;
        * dispatch hit backpressure (window/FIFO/in-flight full) while
          issue also moved nothing -> the issue-side culprit
          (FU contention, cache port, load-store order, inter-cluster
          wait) when one was observed, else the dispatch cause;
        * dispatch blocked on a rename/window resource -> that cause;
        * nothing to dispatch -> fetch-starved, or drain once the
          trace is exhausted.
        """
        if dispatched:
            cause = None
        elif self._dispatch_block is not None:
            cause = self._dispatch_block
            if (
                issued == 0
                and self._issue_block is not None
                and cause in BACKPRESSURE_CAUSES
            ):
                cause = self._issue_block
        elif self.fetch_ptr >= len(self.insts) and not self.fetch_buffer:
            cause = StallCause.DRAIN
        else:
            cause = StallCause.FETCH_STARVED
        self._last_cause = cause
        if cause is None:
            self.stats.active_cycles += 1
        else:
            stall_cycles = self.stats.stall_cycles
            stall_cycles[cause] = stall_cycles.get(cause, 0) + 1

    def run(self, max_cycles: int | None = None) -> SimStats:
        """Simulate until the whole trace commits.

        Args:
            max_cycles: Safety bound; defaults to 100 cycles per
                instruction plus slack.

        Returns:
            The populated :class:`SimStats`.

        Raises:
            RuntimeError: if the pipeline fails to make progress
                within the cycle bound (a deadlock would be a
                simulator bug).
        """
        n = len(self.insts)
        if max_cycles is None:
            max_cycles = 100 * n + 1_000
        step = self.step
        cycle_skip = self.cycle_skip
        while self.commit_ptr < n:
            if self.cycle > max_cycles:
                raise RuntimeError(
                    f"no forward progress after {self.cycle} cycles "
                    f"({self.commit_ptr}/{n} committed) -- simulator bug"
                )
            step()
            if cycle_skip and self._idle:
                self._fast_forward(max_cycles)
        self.stats.cycles = self.cycle
        self.stats.branch_lookups = self.predictor.lookups
        self.stats.branch_hits = self.predictor.hits
        self.stats.cache_accesses = self.cache.accesses
        self.stats.cache_misses = self.cache.misses
        return self.stats


#: Valid ``simulate(..., mode=...)`` values.
SIMULATE_MODES = ("reference", "fast", "compiled")


def simulate(
    config: MachineConfig,
    trace: Trace,
    max_cycles: int | None = None,
    tracer: EventTracer | None = None,
    fast: bool = True,
    mode: str | None = None,
) -> SimStats:
    """Run one machine over one trace and return its statistics.

    Args:
        fast: Run the optimized simulator (the default).  ``False``
            runs the frozen seed model
        (:func:`repro.uarch.pipeline_reference.simulate_reference`)
        instead -- the oracle the equivalence suite pins this module
        against; results are identical, only slower.
        mode: Explicit model selection overriding ``fast``:
            ``"reference"`` (frozen seed model), ``"fast"`` (the
            optimized interpreter), or ``"compiled"`` (the per-config
            compiled pipeline from :mod:`repro.uarch.compile`, falling
            back to the fast interpreter on unsupported shapes --
            results are identical either way).
    """
    if mode is None:
        mode = "fast" if fast else "reference"
    if mode not in SIMULATE_MODES:
        raise ValueError(
            f"unknown simulate mode {mode!r}; expected one of "
            f"{', '.join(SIMULATE_MODES)}"
        )
    if mode == "reference":
        from repro.uarch.pipeline_reference import simulate_reference

        if not supports_reference(config):
            raise ValueError(
                f"the frozen reference model predates the strategy "
                f"layer and covers only the classic schedulers with an "
                f"unlimited regfile; {config.name!r} uses "
                f"{config.scheduler}/{config.regfile}"
            )
        return simulate_reference(config, trace, max_cycles=max_cycles,
                                  tracer=tracer)
    if mode == "compiled":
        from repro.uarch import compile as compile_mod

        simulator = PipelineSimulator(config, trace, tracer=tracer)
        if compile_mod.supports_compile(config):
            return compile_mod.run_compiled(simulator, max_cycles=max_cycles)
        compile_mod.note_fallback()
        return simulator.run(max_cycles=max_cycles)
    return PipelineSimulator(config, trace, tracer=tracer).run(
        max_cycles=max_cycles
    )
