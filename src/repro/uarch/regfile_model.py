"""Pluggable physical-register-file port models.

The paper sizes the register file generously (Table 3: enough read
ports for every issue slot's two operands), so the seed simulator
never stalled on register ports.  :data:`REGFILE_REGISTRY` makes the
port model a strategy selected by ``MachineConfig.regfile``:

* ``unlimited`` -- the paper's model: ``2 x issue_width`` read ports
  per cluster, never a structural hazard (a no-op at issue time);
* ``ports_limited`` -- a reduced-read-port file in the spirit of Los
  (arXiv:2502.00147): each cluster has ``regfile_read_ports`` read
  ports per cycle; a selected instruction whose operand reads exceed
  the remaining budget is denied issue that cycle and charged to
  :data:`~repro.uarch.stats.StallCause.REGFILE_PORT`.  Fewer ports
  shrink the register file's word lines and bitlines, so the matching
  delay model shows the clock gain that the IPC loss buys.

The port model only *denies* issue slots; all ordering, budgets, and
stall attribution stay in the pipeline's issue loop, so every model
inherits the accounting invariants checked by ``SimStats.validate``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.uarch.pipeline import PipelineSimulator


class RegfileStrategy:
    """Base class: per-cycle register-file read-port arbitration."""

    #: Registry key; also the value ``MachineConfig.regfile`` takes.
    name = ""
    #: Bumped on any timing-behaviour change (cache-key component).
    version = 1
    #: True when the pipeline must consult the port budget at issue.
    limited = False

    def __init__(self, sim: "PipelineSimulator"):
        self.sim = sim

    def reset(self) -> None:
        """Clear per-run state (called from ``_reset_state``)."""

    def new_cycle(self) -> None:
        """Restore the per-cycle port budget (limited models only)."""


class UnlimitedRegfile(RegfileStrategy):
    """The paper's fully-ported file: never a structural hazard."""

    name = "unlimited"


class PortsLimitedRegfile(RegfileStrategy):
    """Reduced read ports with issue-time port-conflict stalls.

    Each cluster owns ``config.regfile_read_ports`` read ports per
    cycle.  Operand read counts are precomputed per instruction from
    the trace (``srcs`` lists actually-read architectural registers),
    and the budget is claimed only when an instruction really issues,
    so a denied candidate costs nothing.
    """

    name = "ports_limited"
    version = 1
    limited = True

    def __init__(self, sim: "PipelineSimulator"):
        super().__init__(sim)
        self.read_ports = sim.config.regfile_read_ports
        #: Read-port demand per instruction (at most 2 in this ISA).
        self.reads = [len(inst.srcs) for inst in sim.insts]
        widest = max(self.reads, default=0)
        if widest > self.read_ports:
            raise ValueError(
                f"an instruction reads {widest} registers but the "
                f"ports_limited file has only {self.read_ports} read "
                f"ports per cluster; it could never issue"
            )
        self.budget = [0] * sim.n_clusters

    def reset(self) -> None:
        self.new_cycle()

    def new_cycle(self) -> None:
        ports = self.read_ports
        budget = self.budget
        for cluster in range(len(budget)):
            budget[cluster] = ports


#: All registered register-file models, keyed by name.  The planted
#: bug self-test swaps entries here, so look models up at
#: simulator-construction time rather than caching classes.
REGFILE_REGISTRY: dict[str, type[RegfileStrategy]] = {
    UnlimitedRegfile.name: UnlimitedRegfile,
    PortsLimitedRegfile.name: PortsLimitedRegfile,
}


def build_regfile(sim: "PipelineSimulator") -> RegfileStrategy:
    """Instantiate the register-file model a simulator's config names.

    Raises:
        ValueError: if the config names an unregistered model.
    """
    name = sim.config.regfile
    try:
        model_class = REGFILE_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown regfile strategy {name!r}; registered: "
            f"{sorted(REGFILE_REGISTRY)}"
        ) from None
    return model_class(sim)
