"""Cycle-level out-of-order timing simulator.

A trace-driven timing model of the paper's baseline superscalar
(Table 3) and of the proposed dependence-based microarchitecture,
including the clustered variants of Section 5.6.  The committed
dynamic instruction stream comes from :mod:`repro.isa` /
:mod:`repro.workloads`; this package replays it through a parametric
pipeline: fetch (with gshare branch prediction), rename, dispatch with
a steering policy, wakeup/select (flexible window or FIFO heads),
execution with cache and store-set constraints, operand bypassing with
per-cluster latencies, and in-order commit.

Three interchangeable backends run the model: the frozen reference
(:mod:`repro.uarch.pipeline_reference`), the fast interpreter
(:mod:`repro.uarch.pipeline`), and per-config compiled step functions
(:mod:`repro.uarch.compile`) -- select one with
``simulate(..., mode=...)``; statistics are byte-identical across all
three.
"""

from repro.uarch.config import (
    CacheConfig,
    ClusterConfig,
    MachineConfig,
    PredictorConfig,
)
from repro.uarch.predictor import GshareBranchPredictor
from repro.uarch.cache import SetAssociativeCache
from repro.uarch.stats import SimStats
from repro.uarch.pipeline import PipelineSimulator, simulate

__all__ = [
    "CacheConfig",
    "ClusterConfig",
    "MachineConfig",
    "PredictorConfig",
    "GshareBranchPredictor",
    "SetAssociativeCache",
    "SimStats",
    "PipelineSimulator",
    "simulate",
]
