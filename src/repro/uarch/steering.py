"""Instruction steering policies (Sections 5.1 and 5.6).

A steering policy decides, at dispatch time, which cluster (and which
FIFO, for FIFO machines) each renamed instruction goes to.  Policies
see a narrow view of machine state through :class:`SteeringView` so
they stay decoupled from the pipeline internals.

Policies:

* :class:`FifoDispatchSteering` -- the paper's Section 5.1 heuristic
  over real issue FIFOs, with the two-free-list cluster extension of
  Section 5.5.
* :class:`WindowDispatchSteering` -- Section 5.6.2: the same heuristic
  run over *conceptual* FIFOs carved out of each cluster's flexible
  window.
* :class:`RandomSteering` -- Section 5.6.3 baseline: pick a random
  cluster, fall back to the other if its window is full.

Execution-driven steering (Section 5.6.1) assigns clusters at issue
time, not dispatch time; it lives in the pipeline's select stage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.uarch.fifos import FifoSet
from repro.workloads._datagen import Lcg


@dataclass(frozen=True, slots=True)
class Placement:
    """Where a dispatched instruction goes."""

    cluster: int
    fifo: int | None = None  #: FIFO index within the cluster, if any


@dataclass(frozen=True, slots=True)
class OutstandingOperand:
    """A source operand whose producer is still buffered in a FIFO."""

    producer: int  #: producer seq
    cluster: int
    fifo: int
    is_tail: bool  #: producer is the youngest entry of its FIFO


class SteeringView:
    """The machine state a steering policy may inspect.

    Attributes:
        fifo_sets: Per-cluster FIFO (or conceptual-FIFO) state.
        window_room: Per-cluster free window slots; ignored by pure
            FIFO machines (their capacity is the FIFOs themselves).
    """

    def __init__(self, fifo_sets: list[FifoSet], window_room: list[int] | None = None):
        self.fifo_sets = fifo_sets
        self.window_room = window_room

    def has_window_room(self, cluster: int) -> bool:
        """True if the cluster's window can accept an instruction."""
        if self.window_room is None:
            return True
        return self.window_room[cluster] > 0


class FifoDispatchSteering:
    """Section 5.1 heuristic (with the Section 5.5 cluster extension).

    Rules for instruction I:

    * no outstanding operands: steer to a new (empty) FIFO;
    * one outstanding operand produced by Isource in FIFO Fa: steer
      to Fa if Isource is the tail of Fa and Fa has room, else to a
      new FIFO;
    * two outstanding operands: apply the one-operand rule to the
      left; if its FIFO is unsuitable, to the right; else a new FIFO.

    If no empty FIFO is available (or the target cluster's window is
    full, for conceptual mode), dispatch stalls.

    With two clusters, empty FIFOs are drawn from a *current* free
    list; when it has no empty FIFO the other cluster's list becomes
    current -- keeping adjacent instructions in the same cluster.
    """

    #: Placement is attempted behind a producer only in these cases.
    def __init__(self, cluster_count: int):
        if cluster_count < 1:
            raise ValueError("cluster_count must be >= 1")
        self.cluster_count = cluster_count
        self._current_cluster = 0
        #: Rule applied by the most recent place() call (for STEER
        #: trace events): "behind_producer", "new_fifo", or "".
        self.last_rule = ""

    def reset(self) -> None:
        """Forget free-list state (for a fresh run)."""
        self._current_cluster = 0
        self.last_rule = ""

    def _behind_producer(
        self, view: SteeringView, operand: OutstandingOperand
    ) -> Placement | None:
        """Placement behind one producer, or None if unsuitable."""
        fifo = view.fifo_sets[operand.cluster].fifos[operand.fifo]
        if not operand.is_tail or fifo.is_full:
            return None
        if not view.has_window_room(operand.cluster):
            return None
        return Placement(cluster=operand.cluster, fifo=operand.fifo)

    def _new_fifo(self, view: SteeringView) -> Placement | None:
        """Placement in an empty FIFO via the free-list discipline."""
        for attempt in range(self.cluster_count):
            cluster = (self._current_cluster + attempt) % self.cluster_count
            if not view.has_window_room(cluster):
                continue
            index = view.fifo_sets[cluster].empty_fifo_index()
            if index is not None:
                # Switching the current list only happens when the
                # current one was exhausted (attempt > 0).
                self._current_cluster = cluster
                return Placement(cluster=cluster, fifo=index)
        return None

    def place(
        self, view: SteeringView, outstanding: list[OutstandingOperand]
    ) -> Placement | None:
        """Choose a placement; None means dispatch must stall."""
        for operand in outstanding[:2]:
            placement = self._behind_producer(view, operand)
            if placement is not None:
                self.last_rule = "behind_producer"
                return placement
        placement = self._new_fifo(view)
        self.last_rule = "new_fifo" if placement is not None else ""
        return placement


class WindowDispatchSteering(FifoDispatchSteering):
    """Section 5.6.2: the FIFO heuristic over conceptual FIFOs.

    Identical decision procedure; the pipeline maintains conceptual
    FIFO state (entries leave from any slot when they issue) and
    enforces the real constraint -- per-cluster window capacity --
    through ``view.window_room``.
    """


class ModuloSteering:
    """Round-robin cluster choice (ablation baseline).

    Like random steering it ignores dependences, but it balances load
    perfectly -- separating "dependence blindness" from "load
    imbalance" when interpreting the random-steering result.
    """

    def __init__(self, cluster_count: int):
        if cluster_count < 1:
            raise ValueError("cluster_count must be >= 1")
        self.cluster_count = cluster_count
        self._next = 0
        self.last_rule = "modulo"

    def reset(self) -> None:
        """Restart the rotation (for a fresh run)."""
        self._next = 0

    def place(
        self, view: SteeringView, outstanding: list[OutstandingOperand]
    ) -> Placement | None:
        """Next cluster in rotation; the other if full; None if both."""
        for attempt in range(self.cluster_count):
            cluster = (self._next + attempt) % self.cluster_count
            if view.has_window_room(cluster):
                self._next = (cluster + 1) % self.cluster_count
                return Placement(cluster=cluster)
        return None


class LeastLoadedSteering:
    """Emptiest-window cluster choice (ablation baseline).

    Pure load balancing with no dependence awareness; ties go to the
    lower-numbered cluster.
    """

    def __init__(self, cluster_count: int):
        if cluster_count < 1:
            raise ValueError("cluster_count must be >= 1")
        self.cluster_count = cluster_count
        self.last_rule = "least_loaded"

    def reset(self) -> None:
        """Stateless; present for interface symmetry."""

    def place(
        self, view: SteeringView, outstanding: list[OutstandingOperand]
    ) -> Placement | None:
        """Cluster with the most window room; None if all are full."""
        best = None
        best_room = 0
        for cluster in range(self.cluster_count):
            room = (
                view.window_room[cluster]
                if view.window_room is not None
                else 1
            )
            if room > best_room:
                best = cluster
                best_room = room
        if best is None:
            return None
        return Placement(cluster=best)


class RandomSteering:
    """Section 5.6.3: random cluster choice (comparison baseline)."""

    def __init__(self, cluster_count: int, seed: int = 12345):
        if cluster_count < 1:
            raise ValueError("cluster_count must be >= 1")
        self.cluster_count = cluster_count
        self._rng = Lcg(seed)
        self._seed = seed
        self.last_rule = "random"

    def reset(self) -> None:
        """Restart the random sequence (for a fresh run)."""
        self._rng = Lcg(self._seed)

    def place(
        self, view: SteeringView, outstanding: list[OutstandingOperand]
    ) -> Placement | None:
        """Random cluster; the other if full; None if both full."""
        first = self._rng.next_below(self.cluster_count)
        for attempt in range(self.cluster_count):
            cluster = (first + attempt) % self.cluster_count
            if view.has_window_room(cluster):
                return Placement(cluster=cluster)
        return None
