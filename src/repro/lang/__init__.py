"""Mini: a small C-like language compiled to the package's ISA.

Writing workload kernels in raw assembly is faithful but laborious;
Mini lets users express them at C level and compile to the same ISA
the paper experiments run on::

    from repro.lang import compile_source
    from repro.isa import Emulator

    program = compile_source('''
        var total;
        array data[64];

        func main() {
            var i;
            i = 0;
            while (i < 64) { data[i] = i * i; i = i + 1; }
            total = sum(0, 64);
            return total;
        }

        func sum(lo, hi) {
            var acc; var i;
            acc = 0; i = lo;
            while (i < hi) { acc = acc + data[i]; i = i + 1; }
            return acc;
        }
    ''')
    emulator = Emulator(program)
    emulator.run()

Language summary:

* ``var name;`` global or local 32-bit integers; ``array name[N];``
  global word arrays.
* Functions with up to four by-value parameters; ``return expr;``
  (``main``'s return value lands in ``r2`` and the emulator halts).
* Statements: assignment (variables and array elements), ``while``,
  ``if``/``else``, expression calls, ``return``.
* Expressions: ``+ - * / %``, bitwise ``& | ^``, shifts ``<< >>``,
  comparisons ``== != < <= > >=`` (yielding 0/1), unary ``-``,
  parentheses, integer literals, calls.  C-like precedence;
  division truncates toward zero; all arithmetic is 32-bit.
"""

from repro.lang.errors import CompileError
from repro.lang.lexer import Token, tokenize
from repro.lang.parser import parse
from repro.lang.codegen import compile_source, compile_to_assembly

__all__ = [
    "CompileError",
    "Token",
    "tokenize",
    "parse",
    "compile_source",
    "compile_to_assembly",
]
