"""Mini lexer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.errors import CompileError

KEYWORDS = frozenset({"var", "array", "func", "while", "if", "else", "return",
                      "break", "continue"})

#: Multi-character operators, longest first so they win the scan.
_OPERATORS = ("<<", ">>", "==", "!=", "<=", ">=", "&&", "||",
              "+", "-", "*", "/", "%", "&", "|", "^", "<", ">", "!",
              "=", "(", ")", "{", "}", "[", "]", ";", ",")


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is ``ident``, ``number``, ``keyword``, ``op``, or ``eof``.
    """

    kind: str
    text: str
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind}:{self.text!r}@{self.line})"


def tokenize(source: str) -> list[Token]:
    """Scan source text into tokens (ending with an ``eof`` token).

    Raises:
        CompileError: on an unrecognised character.
    """
    tokens: list[Token] = []
    line = 1
    index = 0
    length = len(source)
    while index < length:
        char = source[index]
        if char == "\n":
            line += 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            continue
        if char == "#":  # comment to end of line
            while index < length and source[index] != "\n":
                index += 1
            continue
        if char.isdigit():
            start = index
            while index < length and (source[index].isalnum() or source[index] == "x"):
                index += 1
            text = source[start:index]
            try:
                int(text, 0)
            except ValueError:
                raise CompileError(f"bad number literal {text!r}", line) from None
            tokens.append(Token("number", text, line))
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            continue
        for operator in _OPERATORS:
            if source.startswith(operator, index):
                tokens.append(Token("op", operator, line))
                index += len(operator)
                break
        else:
            raise CompileError(f"unexpected character {char!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens
