"""Compilation errors."""

from __future__ import annotations


class CompileError(ValueError):
    """Raised for any lexical, syntactic, or semantic error.

    Carries the source line number when known.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        prefix = f"line {line}: " if line is not None else ""
        super().__init__(f"{prefix}{message}")
