"""Mini abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Node:
    """Base class carrying the source line."""

    line: int


# ---- expressions ----------------------------------------------------------


@dataclass(frozen=True)
class NumberLit(Node):
    value: int


@dataclass(frozen=True)
class VarRef(Node):
    name: str


@dataclass(frozen=True)
class ArrayRef(Node):
    name: str
    index: "Expr"


@dataclass(frozen=True)
class Unary(Node):
    op: str  #: '-' (negate) or '!' (logical not)
    operand: "Expr"


@dataclass(frozen=True)
class Binary(Node):
    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Call(Node):
    name: str
    args: tuple["Expr", ...]


Expr = NumberLit | VarRef | ArrayRef | Unary | Binary | Call


# ---- statements -----------------------------------------------------------


@dataclass(frozen=True)
class Assign(Node):
    target: VarRef | ArrayRef
    value: Expr


@dataclass(frozen=True)
class While(Node):
    condition: Expr
    body: tuple["Stmt", ...]


@dataclass(frozen=True)
class If(Node):
    condition: Expr
    then_body: tuple["Stmt", ...]
    else_body: tuple["Stmt", ...]


@dataclass(frozen=True)
class Return(Node):
    value: Expr | None


@dataclass(frozen=True)
class Break(Node):
    pass


@dataclass(frozen=True)
class Continue(Node):
    pass


@dataclass(frozen=True)
class ExprStmt(Node):
    expr: Expr  #: usually a call evaluated for effect


@dataclass(frozen=True)
class VarDecl(Node):
    name: str


Stmt = Assign | While | If | Return | ExprStmt | VarDecl | Break | Continue


# ---- top level ------------------------------------------------------------


@dataclass(frozen=True)
class ArrayDecl(Node):
    name: str
    size: int


@dataclass(frozen=True)
class Function(Node):
    name: str
    params: tuple[str, ...]
    body: tuple[Stmt, ...]


@dataclass
class Module:
    """A parsed compilation unit."""

    globals: list[VarDecl] = field(default_factory=list)
    arrays: list[ArrayDecl] = field(default_factory=list)
    functions: list[Function] = field(default_factory=list)
