"""Mini recursive-descent parser."""

from __future__ import annotations

from repro.lang import ast_nodes as ast
from repro.lang.errors import CompileError
from repro.lang.lexer import Token, tokenize

#: Binary operator precedence, higher binds tighter (C-like).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

#: Maximum array size accepted (keeps data segments sane).
MAX_ARRAY_WORDS = 1 << 20


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0

    # ---- token plumbing ------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.position += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.current
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise CompileError(
                f"expected {wanted!r}, found {token.text or 'end of input'!r}",
                token.line,
            )
        return self.advance()

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        token = self.current
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    # ---- grammar ----------------------------------------------------------

    def parse_module(self) -> ast.Module:
        module = ast.Module()
        while self.current.kind != "eof":
            token = self.current
            if token.kind == "keyword" and token.text == "var":
                module.globals.append(self._var_decl())
            elif token.kind == "keyword" and token.text == "array":
                module.arrays.append(self._array_decl())
            elif token.kind == "keyword" and token.text == "func":
                module.functions.append(self._function())
            else:
                raise CompileError(
                    f"expected declaration, found {token.text!r}", token.line
                )
        return module

    def _var_decl(self) -> ast.VarDecl:
        line = self.expect("keyword", "var").line
        name = self.expect("ident").text
        self.expect("op", ";")
        return ast.VarDecl(line=line, name=name)

    def _array_decl(self) -> ast.ArrayDecl:
        line = self.expect("keyword", "array").line
        name = self.expect("ident").text
        self.expect("op", "[")
        size_token = self.expect("number")
        size = int(size_token.text, 0)
        if not 1 <= size <= MAX_ARRAY_WORDS:
            raise CompileError(f"array size {size} out of range", size_token.line)
        self.expect("op", "]")
        self.expect("op", ";")
        return ast.ArrayDecl(line=line, name=name, size=size)

    def _function(self) -> ast.Function:
        line = self.expect("keyword", "func").line
        name = self.expect("ident").text
        self.expect("op", "(")
        params: list[str] = []
        if not self.accept("op", ")"):
            while True:
                params.append(self.expect("ident").text)
                if self.accept("op", ")"):
                    break
                self.expect("op", ",")
        if len(params) > 4:
            raise CompileError(
                f"function {name!r} has {len(params)} parameters (max 4)", line
            )
        if len(set(params)) != len(params):
            raise CompileError(f"duplicate parameter in {name!r}", line)
        body = self._block()
        return ast.Function(line=line, name=name, params=tuple(params), body=body)

    def _block(self) -> tuple[ast.Stmt, ...]:
        self.expect("op", "{")
        statements: list[ast.Stmt] = []
        while not self.accept("op", "}"):
            statements.append(self._statement())
        return tuple(statements)

    def _statement(self) -> ast.Stmt:
        token = self.current
        if token.kind == "keyword":
            if token.text == "var":
                return self._var_decl()
            if token.text == "while":
                self.advance()
                self.expect("op", "(")
                condition = self._expression()
                self.expect("op", ")")
                body = self._block()
                return ast.While(line=token.line, condition=condition, body=body)
            if token.text == "if":
                self.advance()
                self.expect("op", "(")
                condition = self._expression()
                self.expect("op", ")")
                then_body = self._block()
                else_body: tuple[ast.Stmt, ...] = ()
                if self.accept("keyword", "else"):
                    if self.current.kind == "keyword" and self.current.text == "if":
                        else_body = (self._statement(),)
                    else:
                        else_body = self._block()
                return ast.If(
                    line=token.line,
                    condition=condition,
                    then_body=then_body,
                    else_body=else_body,
                )
            if token.text == "return":
                self.advance()
                value = None
                if not (self.current.kind == "op" and self.current.text == ";"):
                    value = self._expression()
                self.expect("op", ";")
                return ast.Return(line=token.line, value=value)
            if token.text == "break":
                self.advance()
                self.expect("op", ";")
                return ast.Break(line=token.line)
            if token.text == "continue":
                self.advance()
                self.expect("op", ";")
                return ast.Continue(line=token.line)
            raise CompileError(f"unexpected keyword {token.text!r}", token.line)
        # Assignment or expression statement.
        expr = self._expression()
        if self.accept("op", "="):
            if not isinstance(expr, (ast.VarRef, ast.ArrayRef)):
                raise CompileError("assignment target must be a variable or "
                                   "array element", token.line)
            value = self._expression()
            self.expect("op", ";")
            return ast.Assign(line=token.line, target=expr, value=value)
        self.expect("op", ";")
        return ast.ExprStmt(line=token.line, expr=expr)

    # ---- expressions (precedence climbing) --------------------------------

    def _expression(self, min_precedence: int = 1) -> ast.Expr:
        left = self._unary()
        while True:
            token = self.current
            if token.kind != "op":
                return left
            precedence = _PRECEDENCE.get(token.text)
            if precedence is None or precedence < min_precedence:
                return left
            self.advance()
            right = self._expression(precedence + 1)
            left = ast.Binary(line=token.line, op=token.text, left=left, right=right)

    def _unary(self) -> ast.Expr:
        token = self.current
        if token.kind == "op" and token.text in ("-", "!"):
            self.advance()
            return ast.Unary(line=token.line, op=token.text, operand=self._unary())
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "number":
            self.advance()
            return ast.NumberLit(line=token.line, value=int(token.text, 0))
        if self.accept("op", "("):
            expr = self._expression()
            self.expect("op", ")")
            return expr
        if token.kind == "ident":
            self.advance()
            if self.accept("op", "("):
                args: list[ast.Expr] = []
                if not self.accept("op", ")"):
                    while True:
                        args.append(self._expression())
                        if self.accept("op", ")"):
                            break
                        self.expect("op", ",")
                if len(args) > 4:
                    raise CompileError(
                        f"call to {token.text!r} has {len(args)} arguments (max 4)",
                        token.line,
                    )
                return ast.Call(line=token.line, name=token.text, args=tuple(args))
            if self.accept("op", "["):
                index = self._expression()
                self.expect("op", "]")
                return ast.ArrayRef(line=token.line, name=token.text, index=index)
            return ast.VarRef(line=token.line, name=token.text)
        raise CompileError(f"expected expression, found {token.text!r}", token.line)


def parse(source: str) -> ast.Module:
    """Parse Mini source into a module AST.

    Raises:
        CompileError: on any lexical or syntax error.
    """
    return _Parser(tokenize(source)).parse_module()
