"""Calibration of delay-model constants against the paper's data.

The paper obtained absolute delays from Hspice simulation of sized CMOS
circuits; the process decks are not available, so the models here keep
the paper's *functional forms* and fit their constants to the paper's
published numbers:

* Table 2 -- rename, wakeup+select, and bypass delays at the (4-way,
  32-entry) and (8-way, 64-entry) design points for all three
  technologies.  These are *hard anchors*: the fit weights them so
  heavily that the models interpolate them essentially exactly.
* Table 1 -- bypass wire lengths/delays (reproduced exactly, in closed
  form, by :mod:`repro.delay.bypass`).
* Table 4 -- reservation-table delays (fit in closed form).
* Section 4.2 text -- wakeup delay grows ~34% from 2-way to 4-way and
  ~46% from 4-way to 8-way at 64 entries.  These are *soft anchors*.
* Figure 8 -- selection delay at 64 entries; the split of Table 2's
  combined "wakeup + select" number between the two structures is not
  published, so we choose the selection delay at 64 entries per
  technology (``SELECT_AT_64_PS``) consistent with Figures 5 and 8 and
  derive the wakeup anchors from Table 2 by subtraction.  Because the
  arbiter tree has the same depth for 32- and 64-entry windows, the
  same selection delay applies to both Table 2 rows, which makes the
  derived wakeup anchors unique.

All fits are non-negative least squares over non-negative regressors,
which guarantees the fitted models are monotone non-decreasing in issue
width and window size.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np
from scipy.optimize import nnls

from repro.technology.params import Technology

#: Weight for anchors that must be interpolated (Table 2 data).
HARD_WEIGHT = 1000.0
#: Weight for shape constraints quoted approximately in the text.
SOFT_WEIGHT = 1.0

# --------------------------------------------------------------------------
# Published data (transcribed from the paper).
# --------------------------------------------------------------------------

#: Table 2: {tech name: {(issue width, window size):
#:   (rename ps, wakeup+select ps, bypass ps)}}.
TABLE2_PS: dict[str, dict[tuple[int, int], tuple[float, float, float]]] = {
    "0.8um": {(4, 32): (1577.9, 2903.7, 184.9), (8, 64): (1710.5, 3369.4, 1056.4)},
    "0.35um": {(4, 32): (627.2, 1248.4, 184.9), (8, 64): (726.6, 1484.8, 1056.4)},
    "0.18um": {(4, 32): (351.0, 578.0, 184.9), (8, 64): (427.9, 724.0, 1056.4)},
}

#: Table 1: bypass wire length (lambda) and delay (ps) by issue width.
TABLE1 = {4: (20500.0, 184.9), 8: (49000.0, 1056.4)}

#: Table 4: reservation-table delay at 0.18 um by issue width, with the
#: paper's physical register counts and table organisations.
TABLE4_018 = {
    4: {"physical_registers": 80, "entries": 10, "bits": 8, "delay_ps": 192.1},
    8: {"physical_registers": 128, "entries": 16, "bits": 8, "delay_ps": 251.7},
}

#: Section 4.2: wakeup delay growth at a 64-entry window.
WAKEUP_GROWTH_2_TO_4 = 1.34
WAKEUP_GROWTH_4_TO_8 = 1.46

#: Share of the delta between Table 2's two design points attributed to
#: window growth rather than issue-width growth, per technology (see
#: the mid-window soft anchor in :func:`_wakeup_coefficients`).
WAKEUP_WINDOW_SHARE = {"0.8um": 0.40, "0.35um": 0.50, "0.18um": 0.60}

#: Selection delay at a 64-entry window per technology (the modelling
#: choice that splits Table 2's combined wakeup+select; see module
#: docstring).  Values are consistent with the magnitudes in Figure 8.
SELECT_AT_64_PS = {"0.8um": 2000.0, "0.35um": 756.0, "0.18um": 360.0}

#: Share of the selection delay spent in the root cell (window-size
#: independent); the remainder is split over request/grant propagation.
SELECT_ROOT_FRACTION = 0.25
#: Of the propagation delay, the request path's share (it includes the
#: priority encoding; the grant path is a simple demux).
SELECT_REQUEST_SHARE = 0.55


def _check_tech(tech: Technology) -> str:
    if tech.name not in TABLE2_PS:
        known = ", ".join(TABLE2_PS)
        raise KeyError(f"no calibration data for technology {tech.name!r} (known: {known})")
    return tech.name


def fit_nonnegative(
    rows: list[list[float]], targets: list[float], weights: list[float]
) -> list[float]:
    """Weighted non-negative least squares.

    Args:
        rows: Regressor rows (one per observation).
        targets: Observed values.
        weights: Per-observation weights.

    Returns:
        Coefficient list with all entries >= 0 (plain floats).
    """
    matrix = np.asarray(rows, dtype=float)
    target = np.asarray(targets, dtype=float)
    weight = np.sqrt(np.asarray(weights, dtype=float))
    solution, _residual = nnls(matrix * weight[:, None], target * weight)
    # Plain Python floats: the models' public API must not leak numpy
    # scalar types.
    return [float(value) for value in solution]


# --------------------------------------------------------------------------
# Rename logic: T(IW) = c0 + c1*IW + c2*IW**2.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RenameCoefficients:
    """Fitted coefficients of the rename delay polynomial."""

    c0: float
    c1: float
    c2: float

    def evaluate(self, issue_width: int) -> float:
        return self.c0 + self.c1 * issue_width + self.c2 * issue_width**2


@lru_cache(maxsize=None)
def _rename_coefficients(tech_name: str) -> RenameCoefficients:
    anchors = TABLE2_PS[tech_name]
    t4 = anchors[(4, 32)][0]
    t8 = anchors[(8, 64)][0]
    # Figure 3 shows a nearly linear trend; the soft 2-wide point
    # extrapolates that linearity backwards.
    t2_soft = t4 - (t8 - t4) / 2.0
    rows = [[1.0, 4.0, 16.0], [1.0, 8.0, 64.0], [1.0, 2.0, 4.0]]
    targets = [t4, t8, t2_soft]
    weights = [HARD_WEIGHT, HARD_WEIGHT, SOFT_WEIGHT]
    c0, c1, c2 = fit_nonnegative(rows, targets, weights)
    return RenameCoefficients(c0=c0, c1=c1, c2=c2)


def rename_coefficients(tech: Technology) -> RenameCoefficients:
    """Fitted rename-delay coefficients for one technology."""
    return _rename_coefficients(_check_tech(tech))


# --------------------------------------------------------------------------
# Wakeup logic:
#   T(IW, WS) = c0 + c1*IW + c2*IW**2        (tag match + match OR)
#             + (c3 + c4*IW)*WS + c5*IW**2*WS**2   (tag drive)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class WakeupCoefficients:
    """Fitted coefficients of the wakeup delay model."""

    c0: float
    c1: float
    c2: float
    c3: float
    c4: float
    c5: float

    def base(self, issue_width: int) -> float:
        """Window-size-independent part (tag match + match OR)."""
        return self.c0 + self.c1 * issue_width + self.c2 * issue_width**2

    def tag_drive(self, issue_width: int, window_size: int) -> float:
        """Window-size-dependent part (tag drive)."""
        linear = (self.c3 + self.c4 * issue_width) * window_size
        quadratic = self.c5 * issue_width**2 * window_size**2
        return linear + quadratic

    def evaluate(self, issue_width: int, window_size: int) -> float:
        return self.base(issue_width) + self.tag_drive(issue_width, window_size)


def wakeup_anchor_ps(tech_name: str, issue_width: int, window_size: int) -> float:
    """Wakeup delay at a Table 2 design point (Table 2 minus selection)."""
    combined = TABLE2_PS[tech_name][(issue_width, window_size)][1]
    return combined - SELECT_AT_64_PS[tech_name]


def _row(issue_width: float, window_size: float) -> list[float]:
    return [
        1.0,
        issue_width,
        issue_width**2,
        window_size,
        issue_width * window_size,
        issue_width**2 * window_size**2,
    ]


@lru_cache(maxsize=None)
def _wakeup_coefficients(tech_name: str) -> WakeupCoefficients:
    hard_4_32 = wakeup_anchor_ps(tech_name, 4, 32)
    hard_8_64 = wakeup_anchor_ps(tech_name, 8, 64)
    # Soft shape anchors from the Section 4.2 growth percentages,
    # expressed relative to the hard 8-way/64-entry point.
    soft_4_64 = hard_8_64 / WAKEUP_GROWTH_4_TO_8
    soft_2_64 = soft_4_64 / WAKEUP_GROWTH_2_TO_4
    # A soft mid-window anchor pins the split between issue-width and
    # window-size terms, which the two hard anchors alone cannot
    # identify.  The share of the (4,32)->(8,64) delta attributed to
    # window growth rises as the feature size shrinks, because tag-line
    # wire delay does not scale while logic does (Figure 6).
    window_share = WAKEUP_WINDOW_SHARE[tech_name]
    soft_8_32 = hard_8_64 - window_share * (hard_8_64 - hard_4_32)
    rows = [_row(4, 32), _row(8, 64), _row(4, 64), _row(2, 64), _row(8, 32)]
    targets = [hard_4_32, hard_8_64, soft_4_64, soft_2_64, soft_8_32]
    weights = [
        HARD_WEIGHT,
        HARD_WEIGHT,
        10 * SOFT_WEIGHT,
        10 * SOFT_WEIGHT,
        10 * SOFT_WEIGHT,
    ]
    coefficients = fit_nonnegative(rows, targets, weights)
    return WakeupCoefficients(*coefficients)


def wakeup_coefficients(tech: Technology) -> WakeupCoefficients:
    """Fitted wakeup-delay coefficients for one technology."""
    return _wakeup_coefficients(_check_tech(tech))


# --------------------------------------------------------------------------
# Selection logic: T(WS) = (t_req + t_grant) * levels(WS) + t_root.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectionCoefficients:
    """Per-level propagation delays and the root-cell delay."""

    request_per_level: float
    grant_per_level: float
    root: float


@lru_cache(maxsize=None)
def _selection_coefficients(tech_name: str) -> SelectionCoefficients:
    anchor = SELECT_AT_64_PS[tech_name]
    # A 64-entry window needs a depth-3 tree of 4-input arbiters.
    levels_at_64 = 3
    root = SELECT_ROOT_FRACTION * anchor
    per_level = (anchor - root) / levels_at_64
    return SelectionCoefficients(
        request_per_level=SELECT_REQUEST_SHARE * per_level,
        grant_per_level=(1.0 - SELECT_REQUEST_SHARE) * per_level,
        root=root,
    )


def selection_coefficients(tech: Technology) -> SelectionCoefficients:
    """Fitted selection-delay coefficients for one technology."""
    return _selection_coefficients(_check_tech(tech))


# --------------------------------------------------------------------------
# Reservation table: T = a + b*entries + c*issue_width (at 0.18 um),
# scaled by the technology's logic-speed factor elsewhere.
# --------------------------------------------------------------------------

#: Port cost per issue-width unit, in ps at 0.18 um.  Fixed (the two
#: Table 4 points cannot identify all three constants); 5 ps/port is a
#: small fraction of the total, consistent with the table's weak
#: issue-width dependence.
RESERVATION_PORT_COST_PS = 5.0


@dataclass(frozen=True)
class ReservationCoefficients:
    """Reservation-table delay constants at 0.18 um."""

    base: float
    per_entry: float
    per_issue: float

    def evaluate(self, entries: int, issue_width: int) -> float:
        return self.base + self.per_entry * entries + self.per_issue * issue_width


@lru_cache(maxsize=None)
def _reservation_coefficients() -> ReservationCoefficients:
    point4 = TABLE4_018[4]
    point8 = TABLE4_018[8]
    c = RESERVATION_PORT_COST_PS
    lhs4 = point4["delay_ps"] - c * 4
    lhs8 = point8["delay_ps"] - c * 8
    per_entry = (lhs8 - lhs4) / (point8["entries"] - point4["entries"])
    base = lhs4 - per_entry * point4["entries"]
    return ReservationCoefficients(base=base, per_entry=per_entry, per_issue=c)


def reservation_coefficients() -> ReservationCoefficients:
    """Fitted reservation-table constants (0.18 um reference)."""
    return _reservation_coefficients()
