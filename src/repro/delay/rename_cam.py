"""CAM-scheme register rename delay model (Section 4.1.1).

The paper describes two rename organisations: the RAM scheme (map
table indexed by logical register, as in the R10000) and the CAM
scheme (one entry per *physical* register matched on the logical
designator, as in the HAL SPARC and the 21264).  It notes that

* for the design space studied, the two perform comparably, and
* the CAM scheme is **less scalable**, because its entry count equals
  the physical register count, which grows with issue width.

This model captures both statements.  Structurally the CAM rename is
the same circuit family as the wakeup array (broadcast a designator
down tag lines spanning all entries, match, then read out the
matching entry), so it reuses the wakeup functional form with the
physical register count as the "window", normalised to equal the RAM
scheme's delay at the paper's 4-wide/80-register design point.
"""

from __future__ import annotations

from repro.circuits.cam import CamGeometry
from repro.delay.base import check_issue_width
from repro.delay.calibration import wakeup_coefficients
from repro.delay.rename import RenameDelayModel
from repro.technology.params import Technology

#: Normalisation design point: the paper found RAM and CAM comparable
#: for the design space it explored, anchored here at a 4-wide machine
#: with 80 physical registers.
_ANCHOR_ISSUE_WIDTH = 4
_ANCHOR_PHYSICAL_REGISTERS = 80


class CamRenameDelayModel:
    """Rename delay under the CAM scheme.

    Example:
        >>> from repro.technology import TECH_018
        >>> cam = CamRenameDelayModel(TECH_018)
        >>> ram = RenameDelayModel(TECH_018)
        >>> abs(cam.total(4, 80) - ram.total(4)) < 1e-6   # comparable
        True
        >>> cam.total(8, 256) > cam.total(8, 128)         # less scalable
        True
    """

    #: The rename CAM loads each tag line with one comparator per
    #: entry (a single logical-designator match) where the wakeup
    #: array hangs two operand comparators per broadcast tag, so the
    #: wire-quadratic term is damped by this factor.
    _QUADRATIC_DAMPING = 0.25

    def __init__(self, tech: Technology) -> None:
        self.tech = tech
        self._wakeup = wakeup_coefficients(tech)
        anchor_shape = self._shape(_ANCHOR_ISSUE_WIDTH, _ANCHOR_PHYSICAL_REGISTERS)
        anchor_ram = RenameDelayModel(tech).total(_ANCHOR_ISSUE_WIDTH)
        self._scale = anchor_ram / anchor_shape

    def _shape(self, issue_width: int, physical_registers: int) -> float:
        c = self._wakeup
        linear = c.base(issue_width) + (c.c3 + c.c4 * issue_width) * physical_registers
        quadratic = c.c5 * issue_width**2 * physical_registers**2
        return linear + self._QUADRATIC_DAMPING * quadratic

    def geometry(self, issue_width: int, physical_registers: int) -> CamGeometry:
        """CAM array geometry: one entry per physical register."""
        check_issue_width(issue_width)
        if physical_registers < 2:
            raise ValueError(
                f"physical registers must be >= 2, got {physical_registers}"
            )
        # Matched on the 5-bit logical designator plus a valid bit.
        return CamGeometry(
            window_size=physical_registers, issue_width=issue_width, tag_bits=6
        )

    def total(self, issue_width: int, physical_registers: int) -> float:
        """CAM rename delay in picoseconds."""
        self.geometry(issue_width, physical_registers)  # validates
        return self._scale * self._shape(issue_width, physical_registers)

    def advantage_of_ram(self, issue_width: int, physical_registers: int) -> float:
        """RAM-scheme delay minus CAM-scheme delay (negative when the
        RAM scheme is faster, i.e. for large register files)."""
        ram = RenameDelayModel(self.tech).total(issue_width)
        return ram - self.total(issue_width, physical_registers)
