"""Pipelining requirements at a target clock (Section 4.5 / 5.3).

The paper's position: window logic and bypasses *cannot* be pipelined
without losing back-to-back execution of dependent instructions, but
everything else (rename, register file, caches) can -- at the cost of
deeper pipelines ("this may require that other stages not studied
here be more deeply pipelined", Section 5.3).  This module quantifies
that cost: given a structure's delay and a target clock period, how
many pipeline stages does the structure need?
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.delay.cache_access import CacheAccessDelayModel
from repro.delay.regfile import RegisterFileDelayModel
from repro.delay.rename import RenameDelayModel
from repro.delay.summary import dependence_based_window_logic, window_logic_delay
from repro.technology.params import Technology
from repro.uarch.config import CacheConfig

#: Per-stage overhead (latch setup + clock skew) as a fraction of the
#: clock period; the usable compute time per stage is (1 - overhead).
STAGE_OVERHEAD_FRACTION = 0.10


def stages_required(delay_ps: float, clock_ps: float) -> int:
    """Pipeline stages needed to fit ``delay_ps`` at ``clock_ps``.

    Each stage loses :data:`STAGE_OVERHEAD_FRACTION` of the period to
    latch overhead.

    Raises:
        ValueError: for non-positive delays or clock periods.
    """
    if delay_ps <= 0:
        raise ValueError(f"delay must be positive, got {delay_ps}")
    if clock_ps <= 0:
        raise ValueError(f"clock period must be positive, got {clock_ps}")
    usable = clock_ps * (1.0 - STAGE_OVERHEAD_FRACTION)
    return max(1, math.ceil(delay_ps / usable))


@dataclass(frozen=True)
class PipeliningPlan:
    """Stage counts for the pipelineable structures at a target clock."""

    tech: Technology
    clock_ps: float
    rename_stages: int
    regfile_stages: int
    cache_stages: int

    def format_report(self) -> str:
        return "\n".join(
            [
                f"target clock {self.clock_ps:.1f} ps ({self.tech.name}):",
                f"  rename        {self.rename_stages} stage(s)",
                f"  register file {self.regfile_stages} stage(s)",
                f"  data cache    {self.cache_stages} stage(s)",
            ]
        )


def pipelining_plan(
    tech: Technology,
    clock_ps: float,
    issue_width: int = 8,
    physical_registers: int = 120,
    cache: CacheConfig | None = None,
) -> PipeliningPlan:
    """How deeply each pipelineable structure must be staged to run at
    ``clock_ps`` -- e.g. at the dependence-based machine's faster
    clock."""
    rename = RenameDelayModel(tech).total(issue_width)
    regfile = RegisterFileDelayModel(tech).machine_total(
        physical_registers, issue_width
    )
    cache_delay = CacheAccessDelayModel(tech).total(cache or CacheConfig())
    return PipeliningPlan(
        tech=tech,
        clock_ps=clock_ps,
        rename_stages=stages_required(rename, clock_ps),
        regfile_stages=stages_required(regfile, clock_ps),
        cache_stages=stages_required(cache_delay, clock_ps),
    )


def dependence_based_plan(
    tech: Technology,
    issue_width: int = 8,
    physical_registers: int = 128,
    fifo_count: int = 8,
) -> PipeliningPlan:
    """The Section 5.3 scenario: clock the machine at its (small)
    window-logic delay and pipeline everything else to keep up."""
    clock = dependence_based_window_logic(
        tech, issue_width, physical_registers, fifo_count
    )
    return pipelining_plan(tech, clock, issue_width=issue_width)


def conventional_plan(
    tech: Technology, issue_width: int = 8, window_size: int = 64
) -> PipeliningPlan:
    """The conventional machine at its window-logic-bound clock."""
    clock = window_logic_delay(tech, issue_width, window_size)
    return pipelining_plan(tech, clock, issue_width=issue_width)
