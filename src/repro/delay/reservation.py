"""Reservation-table delay model (Section 5.3, Table 4).

In the dependence-based microarchitecture only the instructions at the
FIFO heads need to be woken, and they do so by interrogating a small
reservation table holding one bit per physical register (set while the
register awaits its value).  The table is tiny compared with the rename
table -- e.g. for a 4-way machine with 80 physical registers it is a
10-entry x 8-bit RAM -- so its access delay is far below the delay of a
CAM-based issue window, which is the source of the design's clock-speed
advantage.
"""

from __future__ import annotations

import math

from repro.delay.base import check_issue_width
from repro.delay.calibration import reservation_coefficients
from repro.technology.params import Technology

#: Bits stored per table entry (a column mux picks the addressed bit),
#: matching the paper's 10x8 / 16x8 organisations.
BITS_PER_ENTRY = 8


class ReservationTableDelayModel:
    """Reservation-table access delay.

    Table 4 gives 0.18 um numbers; other technologies scale by the
    technology's logic-speed factor (the table is a small RAM, the same
    circuit family as the rename table).

    Example:
        >>> from repro.technology import TECH_018
        >>> model = ReservationTableDelayModel(TECH_018)
        >>> round(model.total(4, physical_registers=80), 1)
        192.1
    """

    def __init__(self, tech: Technology) -> None:
        self.tech = tech
        self._coefficients = reservation_coefficients()

    @staticmethod
    def entries(physical_registers: int) -> int:
        """Number of table entries for a register-file size."""
        if physical_registers < 1:
            raise ValueError(
                f"physical register count must be >= 1, got {physical_registers}"
            )
        return math.ceil(physical_registers / BITS_PER_ENTRY)

    def total(self, issue_width: int, physical_registers: int) -> float:
        """Reservation-table access delay in picoseconds."""
        check_issue_width(issue_width)
        entries = self.entries(physical_registers)
        at_018 = self._coefficients.evaluate(entries, issue_width)
        return self.tech.scale_logic_delay(at_018)
