"""Delay models for the paper's critical pipeline structures (Section 4).

Each model follows the functional form the paper derives for its
structure and is calibrated against every numeric result the paper
publishes (Tables 1, 2, and 4 plus the growth percentages quoted in the
text).  All delays are in picoseconds; all models are deterministic and
cheap to evaluate.

Models:

* :class:`RenameDelayModel` -- register rename (RAM-scheme map table).
* :class:`WakeupDelayModel` -- issue-window wakeup (CAM tag broadcast).
* :class:`SelectionDelayModel` -- arbiter-tree selection.
* :class:`BypassDelayModel` -- operand bypass result wires.
* :class:`ReservationTableDelayModel` -- the dependence-based design's
  reservation table (Section 5.3).
* :mod:`repro.delay.critical_path` -- the single config-derived
  clock layer: a registry of structure builders and the
  :class:`CriticalPath` every clock consumer routes through.
* :mod:`repro.delay.summary` -- Table 2 aggregation and the Section
  5.5 clock-ratio computation (a thin critical-path consumer).
"""

from repro.delay.rename import RenameDelayModel
from repro.delay.rename_cam import CamRenameDelayModel
from repro.delay.wakeup import WakeupDelayModel
from repro.delay.select import SelectionDelayModel
from repro.delay.bypass import BypassDelayModel
from repro.delay.reservation import ReservationTableDelayModel
from repro.delay.regfile import RegisterFileDelayModel
from repro.delay.cache_access import CacheAccessDelayModel
from repro.delay.summary import (
    DelaySummary,
    clock_ratio_dependence_based,
    max_clock_improvement_4way,
    overall_delays,
    window_logic_delay,
)
from repro.delay.pipelining import (
    PipeliningPlan,
    pipelining_plan,
    stages_required,
)
# Note: the module name ``repro.delay.critical_path`` is itself part
# of the API (``from repro.delay import critical_path as cp``), so the
# builder function of the same name is deliberately not re-exported
# here -- it would shadow the submodule attribute.
from repro.delay.critical_path import (
    DELAY_MODEL_REGISTRY,
    CriticalPath,
    StructureDelay,
    clock_ps,
    delay_model,
    fifo_window_logic_ps,
    window_logic_ps,
)

__all__ = [
    "RenameDelayModel",
    "CamRenameDelayModel",
    "RegisterFileDelayModel",
    "CacheAccessDelayModel",
    "WakeupDelayModel",
    "SelectionDelayModel",
    "BypassDelayModel",
    "ReservationTableDelayModel",
    "DelaySummary",
    "overall_delays",
    "window_logic_delay",
    "clock_ratio_dependence_based",
    "max_clock_improvement_4way",
    "PipeliningPlan",
    "pipelining_plan",
    "stages_required",
    "CriticalPath",
    "StructureDelay",
    "DELAY_MODEL_REGISTRY",
    "delay_model",
    "clock_ps",
    "window_logic_ps",
    "fifo_window_logic_ps",
]
