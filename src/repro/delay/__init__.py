"""Delay models for the paper's critical pipeline structures (Section 4).

Each model follows the functional form the paper derives for its
structure and is calibrated against every numeric result the paper
publishes (Tables 1, 2, and 4 plus the growth percentages quoted in the
text).  All delays are in picoseconds; all models are deterministic and
cheap to evaluate.

Models:

* :class:`RenameDelayModel` -- register rename (RAM-scheme map table).
* :class:`WakeupDelayModel` -- issue-window wakeup (CAM tag broadcast).
* :class:`SelectionDelayModel` -- arbiter-tree selection.
* :class:`BypassDelayModel` -- operand bypass result wires.
* :class:`ReservationTableDelayModel` -- the dependence-based design's
  reservation table (Section 5.3).
* :mod:`repro.delay.summary` -- Table 2 aggregation, critical paths,
  and the Section 5.5 clock-ratio computation.
"""

from repro.delay.rename import RenameDelayModel
from repro.delay.rename_cam import CamRenameDelayModel
from repro.delay.wakeup import WakeupDelayModel
from repro.delay.select import SelectionDelayModel
from repro.delay.bypass import BypassDelayModel
from repro.delay.reservation import ReservationTableDelayModel
from repro.delay.regfile import RegisterFileDelayModel
from repro.delay.cache_access import CacheAccessDelayModel
from repro.delay.summary import (
    DelaySummary,
    clock_ratio_dependence_based,
    max_clock_improvement_4way,
    overall_delays,
    window_logic_delay,
)
from repro.delay.pipelining import (
    PipeliningPlan,
    pipelining_plan,
    stages_required,
)

__all__ = [
    "RenameDelayModel",
    "CamRenameDelayModel",
    "RegisterFileDelayModel",
    "CacheAccessDelayModel",
    "WakeupDelayModel",
    "SelectionDelayModel",
    "BypassDelayModel",
    "ReservationTableDelayModel",
    "DelaySummary",
    "overall_delays",
    "window_logic_delay",
    "clock_ratio_dependence_based",
    "max_clock_improvement_4way",
    "PipeliningPlan",
    "pipelining_plan",
    "stages_required",
]
