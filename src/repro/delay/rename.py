"""Register rename delay model (Section 4.1, Figure 3).

The RAM-scheme map table operates like a standard RAM: address decoders
drive wordlines, an access stack pulls a bitline low, and a sense
amplifier produces the output.  Issue width affects delay through wire
lengths: more ports make every cell bigger, lengthening the predecode,
wordline, and bitline wires.  Each component is ``c0 + c1*IW + c2*IW**2``
with a small quadratic term, so the total is effectively linear in
issue width (the paper's conclusion).

The dependence-check logic runs in parallel with the map-table access
and is hidden behind it for issue widths up to 8 (Section 4.1.1), so it
does not appear in the delay.
"""

from __future__ import annotations

from repro.circuits.ram import RamGeometry, rename_map_table_geometry
from repro.delay.base import check_issue_width
from repro.delay.calibration import rename_coefficients
from repro.technology.params import Technology

#: How the fitted constant term divides among the pipeline of RAM access
#: stages (representative of the breakdown in Figure 3 at 4-wide).
_BASE_SHARES = {"decoder": 0.28, "wordline": 0.12, "bitline": 0.36, "senseamp": 0.24}
#: How the fitted linear (per-issue-width) term divides; the bitline
#: takes the largest share because bitlines are longer than wordlines
#: (32 logical registers vs. an 8-bit designator), so per-port growth
#: costs more there -- this is why Figure 3's bitline component grows
#: fastest with issue width.
_LINEAR_SHARES = {"decoder": 0.15, "wordline": 0.20, "bitline": 0.45, "senseamp": 0.20}

#: Component evaluation order (RAM access pipeline order).
COMPONENTS = ("decoder", "wordline", "bitline", "senseamp")


class RenameDelayModel:
    """Rename (map-table access) delay as a function of issue width.

    Example:
        >>> from repro.technology import TECH_018
        >>> model = RenameDelayModel(TECH_018)
        >>> round(model.total(4), 1)
        351.0
    """

    def __init__(
        self,
        tech: Technology,
        logical_registers: int = 32,
        physical_registers: int = 120,
    ) -> None:
        self.tech = tech
        self.logical_registers = logical_registers
        self.physical_registers = physical_registers
        self._coefficients = rename_coefficients(tech)

    def geometry(self, issue_width: int) -> RamGeometry:
        """Map-table geometry at the given issue width."""
        check_issue_width(issue_width)
        return rename_map_table_geometry(
            issue_width,
            logical_registers=self.logical_registers,
            physical_registers=self.physical_registers,
        )

    def total(self, issue_width: int) -> float:
        """Total rename delay in picoseconds."""
        check_issue_width(issue_width)
        return self._coefficients.evaluate(issue_width)

    def components(self, issue_width: int) -> dict[str, float]:
        """Per-stage breakdown: decoder, wordline, bitline, senseamp.

        The components sum exactly to :meth:`total`.
        """
        check_issue_width(issue_width)
        c = self._coefficients
        breakdown = {}
        for name in COMPONENTS:
            value = _BASE_SHARES[name] * c.c0 + _LINEAR_SHARES[name] * c.c1 * issue_width
            if name == "bitline":
                value += c.c2 * issue_width**2
            breakdown[name] = value
        return breakdown
