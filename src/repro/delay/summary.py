"""Overall delay summary and clock-speed analysis (Table 2, Section 5.5).

Combines the individual structure models into the quantities the paper
reasons with:

* Table 2 rows (rename / wakeup+select / bypass per design point);
* the pipeline critical path for a machine configuration;
* the Section 5.5 clock-ratio between the dependence-based and
  window-based microarchitectures; and
* the Section 5.3 "up to 39%" clock improvement bound for a 4-way
  machine once window logic is no longer critical.

All clock-bound arithmetic lives in
:mod:`repro.delay.critical_path`; this module is a thin consumer that
packages it into the paper's tabular quantities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.delay import critical_path as cp
from repro.technology.params import Technology


@dataclass(frozen=True)
class DelaySummary:
    """One Table 2 row: delays for a (technology, issue width, window)
    design point, in picoseconds."""

    tech: Technology
    issue_width: int
    window_size: int
    rename_ps: float
    wakeup_ps: float
    select_ps: float
    bypass_ps: float

    @property
    def window_logic_ps(self) -> float:
        """Wakeup + select: the atomic window-logic loop delay."""
        return self.wakeup_ps + self.select_ps

    @property
    def critical_path_ps(self) -> float:
        """Longest delay among the studied structures.

        This is the clock-cycle bound if no structure is pipelined
        further.  Note the paper treats wakeup+select (and bypass) as
        atomic: they cannot be pipelined without losing back-to-back
        execution of dependent instructions (Section 4.5).
        """
        return max(self.rename_ps, self.window_logic_ps, self.bypass_ps)


def overall_delays(tech: Technology, issue_width: int, window_size: int) -> DelaySummary:
    """Compute one Table 2 row via the critical-path layer."""
    return DelaySummary(
        tech=tech,
        issue_width=issue_width,
        window_size=window_size,
        rename_ps=cp.rename_ps(tech, issue_width),
        wakeup_ps=cp.wakeup_ps(tech, issue_width, window_size),
        select_ps=cp.select_ps(tech, window_size),
        bypass_ps=cp.bypass_ps(tech, issue_width),
    )


def window_logic_delay(tech: Technology, issue_width: int, window_size: int) -> float:
    """Wakeup + select delay for a design point, in picoseconds."""
    return cp.window_logic_ps(tech, issue_width, window_size)


def clock_ratio_dependence_based(
    tech: Technology,
    window_issue_width: int = 8,
    window_size: int = 64,
    cluster_issue_width: int = 4,
    cluster_window_size: int = 32,
) -> float:
    """Section 5.5 clock-speed ratio f_dep / f_window.

    The paper argues that a clustered dependence-based machine's clock
    is bounded by the window logic of one 4-way/32-entry cluster (its
    local bypass structure is that of a conventional 4-way machine and
    inter-cluster bypasses take an extra cycle), while a conventional
    8-way machine's clock is bounded by its 8-way/64-entry window
    logic.  At 0.18 um this gives 724.0 / 578.0 ~ 1.25: "a clock that
    is 25% faster".

    Returns:
        The ratio (> 1 means the dependence-based machine clocks
        faster).
    """
    window_clock = window_logic_delay(tech, window_issue_width, window_size)
    dependence_clock = window_logic_delay(tech, cluster_issue_width, cluster_window_size)
    return window_clock / dependence_clock


def dependence_based_window_logic(
    tech: Technology,
    issue_width: int,
    physical_registers: int,
    fifo_count: int,
) -> float:
    """Window-logic delay of the dependence-based design itself.

    Wakeup is a reservation-table access (Table 4) and selection only
    arbitrates among the FIFO heads, so its tree covers ``fifo_count``
    requesters rather than the whole window.
    """
    return cp.fifo_window_logic_ps(
        tech, issue_width, physical_registers, fifo_count
    )


def max_clock_improvement_4way(tech: Technology) -> float:
    """Section 5.3's bound: with window logic out of the way, rename
    becomes the critical stage for a 4-way machine, so the clock period
    can improve by up to ``1 - rename/window_logic`` (about 39% at
    0.18 um).

    Returns:
        The fractional improvement (0.39 means 39%).
    """
    window = cp.window_logic_ps(tech, 4, 32)
    rename = cp.rename_ps(tech, 4)
    return 1.0 - rename / window
