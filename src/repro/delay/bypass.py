"""Operand bypass delay model (Section 4.4, Table 1).

The bypass delay is dominated by driving result values down result
wires that span the functional-unit stack.  Treating the result wire as
a distributed RC line::

    T = 0.5 * Rmetal * Cmetal * L**2

where ``L`` grows with issue width both because there are more
functional units to span and because each functional unit grows taller
with the number of result-wire tracks routed through it.  The delay is
therefore quadratic-and-worse in issue width, and -- because wire delay
is constant under the paper's scaling model -- identical across the
three technologies (Table 1).

This model is exact (closed form) rather than fitted: the track
constants in :mod:`repro.circuits.datapath` reproduce Table 1's wire
lengths, and the RC product in :mod:`repro.technology.params` is derived
from Table 1's 4-way row.
"""

from __future__ import annotations

from repro.circuits.datapath import BypassDatapath
from repro.delay.base import check_issue_width
from repro.technology.params import Technology
from repro.technology.wires import distributed_rc_delay_ps


class BypassDelayModel:
    """Bypass (result-wire) delay as a function of issue width.

    Example:
        >>> from repro.technology import TECH_018
        >>> model = BypassDelayModel(TECH_018)
        >>> round(model.total(4), 1)
        184.9
        >>> round(model.total(8), 1)
        1056.4
    """

    def __init__(self, tech: Technology, pipe_stages_after_result: int = 1) -> None:
        self.tech = tech
        self.pipe_stages_after_result = pipe_stages_after_result

    def datapath(self, issue_width: int) -> BypassDatapath:
        """The bypass datapath geometry for the given issue width."""
        check_issue_width(issue_width)
        return BypassDatapath(issue_width, self.pipe_stages_after_result)

    def wire_length_lambda(self, issue_width: int) -> float:
        """Result-wire length in lambda (Table 1's middle column)."""
        return self.datapath(issue_width).result_wire_length_lambda

    def total(self, issue_width: int) -> float:
        """Bypass delay in picoseconds (technology-invariant)."""
        length = self.wire_length_lambda(issue_width)
        return distributed_rc_delay_ps(self.tech, length)

    def path_count(self, issue_width: int) -> int:
        """Bypass paths in a fully bypassed design (2 * IW**2 * S)."""
        return self.datapath(issue_width).path_count
