"""Register-file access-time model.

The paper excludes the register file from its own analysis (Section
2.1) because Farkas, Jouppi, and Chow studied it separately -- but its
port scaling matters to the proposal: the clustered dependence-based
microarchitecture keeps **one register-file copy per cluster**, so
each copy needs only its own cluster's read ports, "making the access
time of the register file faster" (Section 5.4).

The model reuses the multi-ported-RAM geometry of the rename map
table (the same circuit family) and scales the rename model's fitted
per-technology delays by the geometry ratios: wordlines lengthen with
the per-bit port tracks, bitlines with the register count, and the
decoder with the address width.
"""

from __future__ import annotations

import math

from repro.circuits.ram import RamGeometry
from repro.delay.base import check_issue_width
from repro.delay.calibration import rename_coefficients
from repro.delay.rename import _BASE_SHARES, _LINEAR_SHARES
from repro.technology.params import Technology

#: Datapath width of a register-file entry in bits.
DATA_BITS = 64


class RegisterFileDelayModel:
    """Register-file access delay vs. size and port count.

    Example:
        >>> from repro.technology import TECH_018
        >>> model = RegisterFileDelayModel(TECH_018)
        >>> shared = model.total(120, read_ports=16, write_ports=8)
        >>> per_cluster = model.total(120, read_ports=8, write_ports=8)
        >>> per_cluster < shared   # Section 5.4's third advantage
        True
    """

    def __init__(self, tech: Technology) -> None:
        self.tech = tech
        self._coefficients = rename_coefficients(tech)

    @staticmethod
    def geometry(registers: int, read_ports: int, write_ports: int) -> RamGeometry:
        """Register-file array geometry."""
        return RamGeometry(
            rows=registers,
            bits=DATA_BITS,
            read_ports=read_ports,
            write_ports=write_ports,
        )

    def _reference_geometry(self) -> RamGeometry:
        """The rename map table the fitted constants describe (4-wide)."""
        return RamGeometry(rows=32, bits=7, read_ports=8, write_ports=4)

    def total(self, registers: int, read_ports: int, write_ports: int) -> float:
        """Access delay in picoseconds.

        Args:
            registers: Physical registers in this copy.
            read_ports: Read ports on this copy.
            write_ports: Write ports on this copy (with clustered
                copies, results are broadcast, so writes do not drop).
        """
        if registers < 2:
            raise ValueError(f"registers must be >= 2, got {registers}")
        if read_ports < 1 or write_ports < 1:
            raise ValueError("port counts must be >= 1")
        geometry = self.geometry(registers, read_ports, write_ports)
        reference = self._reference_geometry()
        coefficients = self._coefficients
        # Stage delays of the reference geometry, from the fitted
        # rename model (they sum to its total by construction, so the
        # reference geometry reproduces the fitted delay exactly).
        parts = {
            name: _BASE_SHARES[name] * coefficients.c0
            + _LINEAR_SHARES[name] * coefficients.c1 * 4
            for name in _BASE_SHARES
        }
        parts["bitline"] += coefficients.c2 * 16
        # Scale each stage by its geometric driver.
        decode_scale = geometry.decoder_fanin / reference.decoder_fanin
        wordline_scale = geometry.wordline_length_lambda / reference.wordline_length_lambda
        bitline_scale = geometry.bitline_length_lambda / reference.bitline_length_lambda
        sense_scale = math.sqrt(bitline_scale)  # tracks bitline slew
        return (
            parts["decoder"] * decode_scale
            + parts["wordline"] * wordline_scale
            + parts["bitline"] * bitline_scale
            + parts["senseamp"] * sense_scale
        )

    def machine_total(self, registers: int, issue_width: int) -> float:
        """Delay of a monolithic register file for an ``issue_width``
        machine: 2 reads + 1 write per issued instruction."""
        check_issue_width(issue_width)
        return self.total(registers, read_ports=2 * issue_width, write_ports=issue_width)

    def clustered_total(
        self, registers: int, issue_width: int, clusters: int
    ) -> float:
        """Delay of one per-cluster copy (Section 5.4).

        Each copy serves only its cluster's read ports but receives
        every cluster's writes (results are broadcast to all copies,
        as in the 21264).
        """
        check_issue_width(issue_width)
        if clusters < 1:
            raise ValueError(f"clusters must be >= 1, got {clusters}")
        per_cluster_issue = math.ceil(issue_width / clusters)
        return self.total(
            registers,
            read_ports=2 * per_cluster_issue,
            write_ports=issue_width,
        )
