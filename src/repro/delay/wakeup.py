"""Issue-window wakeup delay model (Section 4.2, Figures 5 and 6).

Every produced result broadcasts its tag down tag lines spanning the
window; each entry compares the tags against its two operand tags and
ORs the match lines.  The delay decomposes as::

    T = tag drive + tag match + match OR

Tag drive is quadratic in window size (the tag line is a distributed RC
wire whose length is proportional to the window) with an issue-width-
dependent weight (wider issue makes every entry taller and adds
comparator load); tag match and match OR are (nearly linear) functions
of issue width only.
"""

from __future__ import annotations

from repro.circuits.cam import CamGeometry, wakeup_array_geometry
from repro.delay.base import check_issue_width, check_window_size
from repro.delay.calibration import wakeup_coefficients
from repro.technology.params import Technology

#: Split of the window-size-independent base delay between the tag
#: match (comparator pull-down) and the match OR.  Chosen so that the
#: wire-dominated fraction (tag drive + tag match) of the 8-way,
#: 64-entry wakeup delay matches Figure 6: 52% at 0.8 um rising to 65%
#: at 0.18 um.
_TAG_MATCH_SHARE = 0.49

#: Component evaluation order.
COMPONENTS = ("tag_drive", "tag_match", "match_or")


class WakeupDelayModel:
    """Wakeup delay as a function of issue width and window size.

    Example:
        >>> from repro.technology import TECH_018
        >>> model = WakeupDelayModel(TECH_018)
        >>> model.total(8, 64) > model.total(4, 32)
        True
    """

    def __init__(self, tech: Technology, physical_registers: int = 120) -> None:
        self.tech = tech
        self.physical_registers = physical_registers
        self._coefficients = wakeup_coefficients(tech)

    def geometry(self, issue_width: int, window_size: int) -> CamGeometry:
        """Wakeup CAM geometry at the given design point."""
        check_issue_width(issue_width)
        check_window_size(window_size)
        return wakeup_array_geometry(
            issue_width, window_size, physical_registers=self.physical_registers
        )

    def total(self, issue_width: int, window_size: int) -> float:
        """Total wakeup delay in picoseconds."""
        check_issue_width(issue_width)
        check_window_size(window_size)
        return self._coefficients.evaluate(issue_width, window_size)

    def components(self, issue_width: int, window_size: int) -> dict[str, float]:
        """Breakdown into tag drive, tag match, and match OR.

        The components sum exactly to :meth:`total`.
        """
        check_issue_width(issue_width)
        check_window_size(window_size)
        c = self._coefficients
        base = c.base(issue_width)
        return {
            "tag_drive": c.tag_drive(issue_width, window_size),
            "tag_match": _TAG_MATCH_SHARE * base,
            "match_or": (1.0 - _TAG_MATCH_SHARE) * base,
        }

    def wire_fraction(self, issue_width: int, window_size: int) -> float:
        """Fraction of the delay in the wire-dominated components.

        Figure 6's observation: tag drive + tag match grow from 52% of
        the total at 0.8 um to 65% at 0.18 um (8-way, 64 entries),
        because wire delay does not scale with feature size.
        """
        parts = self.components(issue_width, window_size)
        total = sum(parts.values())
        return (parts["tag_drive"] + parts["tag_match"]) / total
