"""Shared validation helpers for delay models."""

from __future__ import annotations


def check_issue_width(issue_width: int) -> int:
    """Validate an issue width (instructions issued/renamed per cycle)."""
    if not isinstance(issue_width, int) or isinstance(issue_width, bool):
        raise TypeError(f"issue width must be an int, got {type(issue_width).__name__}")
    if issue_width < 1:
        raise ValueError(f"issue width must be >= 1, got {issue_width}")
    return issue_width


def check_window_size(window_size: int) -> int:
    """Validate an issue-window size (entries)."""
    if not isinstance(window_size, int) or isinstance(window_size, bool):
        raise TypeError(f"window size must be an int, got {type(window_size).__name__}")
    if window_size < 1:
        raise ValueError(f"window size must be >= 1, got {window_size}")
    return window_size
