"""Config-derived clock models: the single critical-path layer.

Every :class:`~repro.uarch.config.MachineConfig` can answer "what
clock does this design support at technology T?" through this module
and nowhere else.  A registry maps each studied pipeline structure
(rename, window logic, bypass, register file, cache access) to a
builder that constructs the structure's delay model *from* the config
-- issue width, window/FIFO shape, cluster count, physical registers,
ports are all derived, never re-typed at call sites -- and the
resulting :class:`CriticalPath` reports both the cycle-time bound and
the structure responsible for it.

Two accountings, encoded once (the paper's Sections 4.5 and 5.5):

* **clock bound** (:attr:`CriticalPath.clock_ps`): the slower of
  rename and any cluster's window logic.  Bypass is *excluded* from
  this bound because the paper's remedy for bypass delay --
  clustering -- applies to both kinds of machine and is evaluated
  separately (Figures 15/17); this is the accounting Section 5.5 and
  the complexity-effectiveness frontier use.
* **critical path** (:attr:`CriticalPath.critical_path_ps`): the
  longest delay among rename, window logic, and bypass -- Table 2's
  "critical" column, the cycle time if nothing is remedied.

The atomic-loop rule (Section 4.5) is carried on each entry: wakeup +
select and bypass form single-cycle loops that cannot be pipelined
without losing back-to-back execution of dependent instructions, so
their delays can never be hidden by adding stages.

Scalar helpers (:func:`rename_ps`, :func:`window_logic_ps`,
:func:`fifo_window_logic_ps`, ...) are the one home of the clock-bound
arithmetic; :mod:`repro.delay.summary`, :mod:`repro.core.frontier`,
and :mod:`repro.core.speedup` are thin consumers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.delay.bypass import BypassDelayModel
from repro.delay.cache_access import CacheAccessDelayModel
from repro.delay.regfile import RegisterFileDelayModel
from repro.delay.rename import RenameDelayModel
from repro.delay.reservation import ReservationTableDelayModel
from repro.delay.select import SelectionDelayModel
from repro.delay.wakeup import WakeupDelayModel
from repro.technology.params import Technology
from repro.uarch.config import MachineConfig


# ----------------------------------------------------------------------
# scalar clock-bound arithmetic (the single source)
# ----------------------------------------------------------------------


def rename_ps(
    tech: Technology,
    issue_width: int,
    logical_registers: int = 32,
    physical_registers: int = 120,
) -> float:
    """Rename (map-table) delay for one design point, in picoseconds."""
    model = RenameDelayModel(
        tech,
        logical_registers=logical_registers,
        physical_registers=physical_registers,
    )
    return model.total(issue_width)


def wakeup_ps(
    tech: Technology,
    issue_width: int,
    window_size: int,
    physical_registers: int = 120,
) -> float:
    """CAM wakeup delay for a flexible window, in picoseconds."""
    model = WakeupDelayModel(tech, physical_registers=physical_registers)
    return model.total(issue_width, window_size)


def select_ps(tech: Technology, requesters: int) -> float:
    """Arbiter-tree selection delay over ``requesters`` entries."""
    return SelectionDelayModel(tech).total(requesters)


def bypass_ps(tech: Technology, fu_span: int) -> float:
    """Bypass result-wire delay across a stack of ``fu_span`` units."""
    return BypassDelayModel(tech).total(fu_span)


def window_logic_ps(
    tech: Technology,
    issue_width: int,
    window_size: int,
    physical_registers: int = 120,
) -> float:
    """Wakeup + select: the atomic window-logic loop of a flexible
    window (the conventional machine's cycle-time bound)."""
    wakeup = wakeup_ps(tech, issue_width, window_size, physical_registers)
    return wakeup + select_ps(tech, window_size)


def fifo_window_logic_ps(
    tech: Technology,
    issue_width: int,
    tag_count: int,
    fifo_count: int,
) -> float:
    """The dependence-based design's window-logic loop.

    Wakeup is a reservation-table access (Table 4) indexed by result
    tag -- one ready bit per in-flight destination, so ``tag_count``
    is the machine's in-flight limit -- and selection only arbitrates
    among the FIFO heads, so its tree covers ``fifo_count`` requesters
    rather than the whole window.
    """
    wakeup = ReservationTableDelayModel(tech).total(issue_width, tag_count)
    return wakeup + select_ps(tech, fifo_count)


def ldt_window_logic_ps(
    tech: Technology,
    issue_width: int,
    tag_count: int,
    window_size: int,
) -> float:
    """The load-delay-tracking design's window-logic loop.

    Diavastos & Carlson (arXiv:2109.03112) replace the broadcast CAM
    with per-instruction ready-time countdowns: wakeup becomes an
    indexed reservation-table update (the same RAM structure as the
    dependence-based design, one entry per in-flight tag), while
    selection still arbitrates over the whole flexible window.  The
    clock gain over :func:`window_logic_ps` is exactly the CAM-vs-RAM
    wakeup difference; the IPC cost of mispredicted ready times is
    what the simulator's ``load_delay_tracking`` strategy measures.
    """
    wakeup = ReservationTableDelayModel(tech).total(issue_width, tag_count)
    return wakeup + select_ps(tech, window_size)


# ----------------------------------------------------------------------
# per-structure delay entries, built from a MachineConfig
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StructureDelay:
    """One pipeline structure's delay at a design point.

    Attributes:
        structure: Registry key of the builder that produced the entry
            (``"rename"``, ``"window"``, ``"bypass"``, ``"regfile"``,
            ``"cache"``).
        label: Human-readable description including the derived
            geometry, e.g. ``"cluster0 wakeup+select (4-way/32)"``.
        delay_ps: Delay in picoseconds.
        atomic: True for Section 4.5 single-cycle loops (window logic,
            bypass) that cannot be pipelined without an IPC penalty.
        clock_bounding: True when the structure participates in the
            Section 5.5 cycle-time bound (rename and window logic;
            bypass is excluded -- see the module docstring).
    """

    structure: str
    label: str
    delay_ps: float
    atomic: bool
    clock_bounding: bool


#: A registry entry: (config, technology) -> the structure's delay
#: entries (one per cluster for clustered structures).
StructureBuilder = Callable[
    [MachineConfig, Technology], "tuple[StructureDelay, ...]"
]

#: Pipeline structure name -> delay-model builder, in report order.
#: Extend the critical path by registering a new builder with
#: :func:`delay_model` (see docs/design_space.md).
DELAY_MODEL_REGISTRY: dict[str, StructureBuilder] = {}


def delay_model(name: str) -> Callable[[StructureBuilder], StructureBuilder]:
    """Register a structure's delay-model builder under ``name``."""

    def register(builder: StructureBuilder) -> StructureBuilder:
        DELAY_MODEL_REGISTRY[name] = builder
        return builder

    return register


@delay_model("rename")
def _rename_structure(
    config: MachineConfig, tech: Technology
) -> tuple[StructureDelay, ...]:
    delay = rename_ps(
        tech, config.issue_width, physical_registers=config.int_phys_regs
    )
    return (
        StructureDelay(
            structure="rename",
            label=f"rename ({config.issue_width}-way map table)",
            delay_ps=delay,
            atomic=False,
            clock_bounding=True,
        ),
    )


@delay_model("window")
def _window_structure(
    config: MachineConfig, tech: Technology
) -> tuple[StructureDelay, ...]:
    entries = []
    widths = config.cluster_issue_widths
    load_delay_tracking = config.scheduler == "load_delay_tracking"
    for index, (cluster, width) in enumerate(zip(config.clusters, widths)):
        if cluster.uses_fifos:
            delay = fifo_window_logic_ps(
                tech, width, config.reservation_tag_count, cluster.fifo_count
            )
            label = (
                f"cluster{index} reservation wakeup+select "
                f"({width}-way, {cluster.fifo_count} FIFO heads)"
            )
        elif load_delay_tracking:
            delay = ldt_window_logic_ps(
                tech, width, config.reservation_tag_count, cluster.window_size
            )
            label = (
                f"cluster{index} ready-time wakeup+select "
                f"({width}-way/{cluster.window_size})"
            )
        else:
            delay = window_logic_ps(
                tech, width, cluster.window_size, config.int_phys_regs
            )
            label = (
                f"cluster{index} wakeup+select "
                f"({width}-way/{cluster.window_size})"
            )
        entries.append(
            StructureDelay(
                structure="window",
                label=label,
                delay_ps=delay,
                atomic=True,
                clock_bounding=True,
            )
        )
    return tuple(entries)


@delay_model("bypass")
def _bypass_structure(
    config: MachineConfig, tech: Technology
) -> tuple[StructureDelay, ...]:
    entries = []
    for index, cluster in enumerate(config.clusters):
        entries.append(
            StructureDelay(
                structure="bypass",
                label=f"cluster{index} local bypass ({cluster.fu_count} FUs)",
                delay_ps=bypass_ps(tech, cluster.fu_count),
                atomic=True,
                clock_bounding=False,
            )
        )
    return tuple(entries)


@delay_model("regfile")
def _regfile_structure(
    config: MachineConfig, tech: Technology
) -> tuple[StructureDelay, ...]:
    model = RegisterFileDelayModel(tech)
    entries = []
    ports = config.cluster_read_ports
    for index, (cluster, read_ports) in enumerate(zip(config.clusters, ports)):
        write_ports = cluster.fu_count
        delay = model.total(config.int_phys_regs, read_ports, write_ports)
        entries.append(
            StructureDelay(
                structure="regfile",
                label=(
                    f"cluster{index} regfile ({config.int_phys_regs} regs, "
                    f"{read_ports}R/{write_ports}W)"
                ),
                delay_ps=delay,
                atomic=False,
                clock_bounding=False,
            )
        )
    return tuple(entries)


@delay_model("cache")
def _cache_structure(
    config: MachineConfig, tech: Technology
) -> tuple[StructureDelay, ...]:
    delay = CacheAccessDelayModel(tech).total(
        config.cache, ports=config.cache.ports
    )
    kilobytes = config.cache.size_bytes // 1024
    return (
        StructureDelay(
            structure="cache",
            label=f"cache access ({kilobytes} KB, {config.cache.ports} ports)",
            delay_ps=delay,
            atomic=False,
            clock_bounding=False,
        ),
    )


# ----------------------------------------------------------------------
# the critical path
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CriticalPath:
    """Every studied structure's delay for one (config, technology).

    Built by :func:`critical_path`; see the module docstring for the
    two accountings (:attr:`clock_ps` vs :attr:`critical_path_ps`).
    """

    config: MachineConfig
    tech: Technology
    structures: tuple[StructureDelay, ...]

    def _bounding(self) -> tuple[StructureDelay, ...]:
        return tuple(s for s in self.structures if s.clock_bounding)

    @property
    def clock_ps(self) -> float:
        """The supported clock period: Section 5.5's cycle bound."""
        return max(s.delay_ps for s in self._bounding())

    @property
    def bounding_structure(self) -> StructureDelay:
        """The structure that sets :attr:`clock_ps`."""
        return max(self._bounding(), key=lambda s: s.delay_ps)

    @property
    def frequency_ghz(self) -> float:
        """Clock frequency implied by :attr:`clock_ps`."""
        return 1000.0 / self.clock_ps

    @property
    def critical_path_ps(self) -> float:
        """Table 2's critical column: the longest delay among rename,
        window logic, and bypass (atomic loops included)."""
        candidates = [
            s.delay_ps for s in self.structures if s.clock_bounding or s.atomic
        ]
        return max(candidates)

    @property
    def critical_structure(self) -> StructureDelay:
        """The structure that sets :attr:`critical_path_ps`."""
        return max(
            (s for s in self.structures if s.clock_bounding or s.atomic),
            key=lambda s: s.delay_ps,
        )

    def rows(self) -> list[tuple[str, float, str]]:
        """(label, delay_ps, flags) rows for every structure, in
        registry order; flags mark atomic loops and the clock bound."""
        out = []
        for entry in self.structures:
            flags = []
            if entry.atomic:
                flags.append("atomic")
            if entry.clock_bounding:
                flags.append("bounds-clock")
            out.append((entry.label, entry.delay_ps, ", ".join(flags)))
        return out

    def format_report(self) -> str:
        """Aligned per-structure breakdown with the two bounds."""
        lines = [f"{self.config.name} @ {self.tech.name}"]
        for label, delay, flags in self.rows():
            note = f"  [{flags}]" if flags else ""
            lines.append(f"  {label:46s} {delay:8.1f} ps{note}")
        lines.append(
            f"  clock bound {self.clock_ps:8.1f} ps "
            f"({self.frequency_ghz:.2f} GHz) <- {self.bounding_structure.label}"
        )
        lines.append(
            f"  critical path {self.critical_path_ps:6.1f} ps "
            f"<- {self.critical_structure.label}"
        )
        return "\n".join(lines)


def critical_path(config: MachineConfig, tech: Technology) -> CriticalPath:
    """Build the full critical path of a machine at a technology.

    Every registered structure contributes its entries, with all
    geometry derived from ``config``.
    """
    structures: list[StructureDelay] = []
    for builder in DELAY_MODEL_REGISTRY.values():
        structures.extend(builder(config, tech))
    return CriticalPath(config=config, tech=tech, structures=tuple(structures))


def clock_ps(config: MachineConfig, tech: Technology) -> float:
    """The clock period (ps) a machine supports at a technology."""
    return critical_path(config, tech).clock_ps
