"""Selection-logic delay model (Section 4.3, Figure 8).

Selection is a tree of 4-input arbiter cells: requests propagate to the
root, the root grants one, and the grant propagates back down.  The
delay is therefore::

    T = (t_request + t_grant) * ceil(log4(window)) + t_root

The root-cell delay is independent of window size, which is why doubling
the window grows the delay by well under 2x (and not at all when the
tree depth does not change, e.g. 32 -> 64 entries).
"""

from __future__ import annotations

from repro.circuits.arbiter import ArbiterTree, selection_tree
from repro.delay.base import check_window_size
from repro.delay.calibration import selection_coefficients
from repro.technology.params import Technology

#: Component evaluation order.
COMPONENTS = ("request_propagation", "root", "grant_propagation")


class SelectionDelayModel:
    """Selection delay as a function of window size.

    The model assumes a single functional unit is being scheduled, as in
    Figure 8; scheduling multiple units replicates the tree and does not
    change the critical path through one tree.

    Example:
        >>> from repro.technology import TECH_018
        >>> model = SelectionDelayModel(TECH_018)
        >>> model.total(32) == model.total(64)  # same tree depth
        True
    """

    def __init__(self, tech: Technology) -> None:
        self.tech = tech
        self._coefficients = selection_coefficients(tech)

    def tree(self, window_size: int) -> ArbiterTree:
        """The arbiter tree for the given window size."""
        check_window_size(window_size)
        return selection_tree(window_size)

    def total(self, window_size: int) -> float:
        """Total selection delay in picoseconds."""
        parts = self.components(window_size)
        return sum(parts.values())

    def components(self, window_size: int) -> dict[str, float]:
        """Breakdown into request propagation, root cell, and grant
        propagation.  The components sum exactly to :meth:`total`."""
        check_window_size(window_size)
        levels = self.tree(window_size).levels
        c = self._coefficients
        return {
            "request_propagation": c.request_per_level * levels,
            "root": c.root,
            "grant_propagation": c.grant_per_level * levels,
        }
