"""Cache access-time model (Section 2.1's cited structure).

The paper excludes caches from its own delay analysis because Wada et
al. and Wilton & Jouppi published dedicated access-time models; it
only relies on the qualitative facts that cache delay grows with size
and associativity and that -- unlike window logic -- cache access *can
be pipelined*.  This model provides the same first-order behaviour in
the repository's framework: a folded data array (multi-ported RAM
geometry, so the same fitted constants as the rename path apply), a
tag array with comparators, and an associativity-wide output mux.
"""

from __future__ import annotations

import math

from repro.circuits.ram import RamGeometry
from repro.delay.calibration import rename_coefficients
from repro.technology.gates import GateLibrary
from repro.technology.params import Technology
from repro.uarch.config import CacheConfig


class CacheAccessDelayModel:
    """First-order cache access time vs. size, associativity, ports.

    Example:
        >>> from repro.technology import TECH_018
        >>> model = CacheAccessDelayModel(TECH_018)
        >>> small = model.total(CacheConfig(size_bytes=8 * 1024))
        >>> large = model.total(CacheConfig(size_bytes=64 * 1024))
        >>> small < large
        True
    """

    def __init__(self, tech: Technology) -> None:
        self.tech = tech
        self._gates = GateLibrary(tech)
        self._coefficients = rename_coefficients(tech)

    @staticmethod
    def data_array_geometry(config: CacheConfig, ports: int = 1) -> RamGeometry:
        """Folded data-array geometry: rows x (line x assoc) bits,
        folded toward square to keep wordlines and bitlines balanced."""
        rows = config.sets
        bits = 8 * config.line_bytes * config.associativity
        # Fold: move row-address bits into the column mux until the
        # array is within 4:1 aspect ratio.
        while rows > 4 * bits and rows % 2 == 0:
            rows //= 2
            bits *= 2
        while bits > 4 * rows:
            bits //= 2
            rows *= 2
        return RamGeometry(
            rows=max(2, rows), bits=max(1, bits), read_ports=ports, write_ports=1
        )

    def total(self, config: CacheConfig, ports: int = 1) -> float:
        """Cache access delay in picoseconds."""
        if ports < 1:
            raise ValueError(f"ports must be >= 1, got {ports}")
        geometry = self.data_array_geometry(config, ports)
        # Reuse the register-file scaling machinery by treating the
        # folded data array as a RAM of `rows` entries of `bits` bits.
        array_delay = self._scaled_array_delay(geometry)
        # Tag compare: a ~20-bit comparator (two-level) plus the
        # associativity-wide select mux.
        compare_delay = self._gates.chain_delay_ps(["nand4", "nor4", "inv"])
        mux_stages = max(1, math.ceil(math.log2(max(2, config.associativity))))
        mux_delay = mux_stages * self._gates.gate_delay_ps("nand2")
        return array_delay + compare_delay + mux_delay

    def _scaled_array_delay(self, geometry: RamGeometry) -> float:
        reference = RamGeometry(rows=32, bits=7, read_ports=8, write_ports=4)
        coefficients = self._coefficients
        reference_total = coefficients.evaluate(4)
        decode_scale = geometry.decoder_fanin / reference.decoder_fanin
        wordline_scale = (
            geometry.wordline_length_lambda / reference.wordline_length_lambda
        )
        bitline_scale = geometry.bitline_length_lambda / reference.bitline_length_lambda
        # Long cache wordlines/bitlines are hierarchical in practice:
        # take the square root of the raw ratios beyond the reference
        # (global + local segment), which keeps growth sub-linear as
        # the published models show.
        wordline_scale = math.sqrt(wordline_scale)
        bitline_scale = math.sqrt(bitline_scale)
        shares = {"decoder": 0.28, "wordline": 0.12, "bitline": 0.36, "senseamp": 0.24}
        return reference_total * (
            shares["decoder"] * decode_scale
            + shares["wordline"] * wordline_scale
            + shares["bitline"] * bitline_scale
            + shares["senseamp"] * math.sqrt(bitline_scale)
        )

    def is_pipelinable(self) -> bool:
        """Caches, unlike wakeup+select and bypass, can be pipelined
        (Section 6): dependent instructions do not need a cache result
        in the very next cycle unless they chain through memory."""
        return True
