"""Trace characterisation: mix, dependences, ILP limits, branches,
memory.

The dependence-based microarchitecture's premise is that dynamic
instruction streams consist of chains of dependent instructions with
short producer-consumer distances; these analyses make that structure
visible and quantify how much parallelism a machine of a given window
size could ever extract.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.emulator import Trace
from repro.isa.instructions import OpClass
from repro.uarch.config import PredictorConfig
from repro.uarch.depend import NO_PRODUCER, dependence_info
from repro.uarch.predictor import GshareBranchPredictor


def dependence_distance_histogram(trace: Trace) -> dict[int, int]:
    """Histogram of producer-to-consumer distances (in dynamic
    instructions), one sample per source operand with an in-trace
    producer.  Short distances are what make dependence steering
    work: the producer is usually still in a FIFO."""
    info = dependence_info(trace)
    histogram: dict[int, int] = {}
    for seq, producers in enumerate(info.producers):
        for producer in producers:
            if producer == NO_PRODUCER:
                continue
            distance = seq - producer
            histogram[distance] = histogram.get(distance, 0) + 1
    return histogram


def mean_dependence_distance(trace: Trace) -> float:
    """Mean producer-to-consumer distance (0 if no dependences)."""
    histogram = dependence_distance_histogram(trace)
    total = sum(histogram.values())
    if total == 0:
        return 0.0
    return sum(d * count for d, count in histogram.items()) / total


def short_dependence_fraction(trace: Trace, within: int = 8) -> float:
    """Fraction of source operands whose producer is at most
    ``within`` dynamic instructions away.

    This is the dependence-based microarchitecture's empirical
    premise: most producers are recent enough to still be buffered,
    so steering the consumer behind them succeeds.  The paper's
    benchmarks show 60-90% of operands produced within 8
    instructions.
    """
    if within < 1:
        raise ValueError(f"within must be >= 1, got {within}")
    histogram = dependence_distance_histogram(trace)
    total = sum(histogram.values())
    if total == 0:
        return 0.0
    near = sum(count for distance, count in histogram.items() if distance <= within)
    return near / total


def windowed_dataflow_ilp(trace: Trace, window: int = 128) -> float:
    """Dataflow-limited ILP discoverable within an in-flight window.

    Unit latencies and infinite functional units, but parallelism is
    only visible inside consecutive ``window``-sized chunks -- the
    resource a machine with that many in-flight instructions has.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if not trace.insts:
        return 0.0
    total_levels = 0
    insts = trace.insts
    for start in range(0, len(insts), window):
        level_of_reg: dict[int, int] = {}
        max_level = 0
        for inst in insts[start : start + window]:
            level = 1 + max((level_of_reg.get(s, 0) for s in inst.srcs), default=0)
            if inst.dest is not None:
                level_of_reg[inst.dest] = level
            if level > max_level:
                max_level = level
        total_levels += max_level
    return len(insts) / total_levels if total_levels else float("inf")


def unbounded_dataflow_ilp(trace: Trace) -> float:
    """Dataflow-limited ILP with an unbounded window (the classic
    oracle limit: unit latency, no resource or window constraints)."""
    if not trace.insts:
        return 0.0
    level_of_reg: dict[int, int] = {}
    max_level = 0
    for inst in trace.insts:
        level = 1 + max((level_of_reg.get(s, 0) for s in inst.srcs), default=0)
        if inst.dest is not None:
            level_of_reg[inst.dest] = level
        if level > max_level:
            max_level = level
    return len(trace.insts) / max_level if max_level else float("inf")


@dataclass(frozen=True)
class BranchProfile:
    """Conditional-branch behaviour of a trace."""

    count: int
    taken_fraction: float
    static_sites: int
    gshare_accuracy: float  #: accuracy of a Table 3 gshare over the trace


def branch_profile(trace: Trace) -> BranchProfile:
    """Profile the conditional branches (jumps are excluded: the
    baseline model predicts them perfectly)."""
    predictor = GshareBranchPredictor(PredictorConfig())
    count = 0
    taken = 0
    sites = set()
    for inst in trace.insts:
        if not inst.is_branch:
            continue
        count += 1
        taken += int(inst.taken)
        sites.add(inst.pc)
        predictor.predict_and_update(inst.pc, inst.taken)
    return BranchProfile(
        count=count,
        taken_fraction=taken / count if count else 0.0,
        static_sites=len(sites),
        gshare_accuracy=predictor.accuracy,
    )


@dataclass(frozen=True)
class MemoryProfile:
    """Memory behaviour of a trace."""

    loads: int
    stores: int
    unique_words: int
    unique_lines: int  #: 32-byte lines, matching the Table 3 D-cache


def memory_profile(trace: Trace, line_bytes: int = 32) -> MemoryProfile:
    """Count memory operations and the footprint they touch."""
    if line_bytes < 1:
        raise ValueError(f"line_bytes must be >= 1, got {line_bytes}")
    loads = stores = 0
    words: set[int] = set()
    lines: set[int] = set()
    for inst in trace.insts:
        if inst.mem_addr is None:
            continue
        if inst.is_load:
            loads += 1
        if inst.is_store:
            stores += 1
        words.add(inst.mem_addr >> 2)
        lines.add(inst.mem_addr // line_bytes)
    return MemoryProfile(
        loads=loads, stores=stores, unique_words=len(words), unique_lines=len(lines)
    )


def basic_block_lengths(trace: Trace) -> list[int]:
    """Dynamic basic-block lengths (instructions between control
    transfers).  Short blocks mean steering decisions come thick and
    fast."""
    lengths: list[int] = []
    current = 0
    for inst in trace.insts:
        current += 1
        is_control = inst.is_branch or inst.is_uncond
        if is_control:
            lengths.append(current)
            current = 0
    if current:
        lengths.append(current)
    return lengths


@dataclass(frozen=True)
class TraceProfile:
    """Everything :func:`profile_trace` measures, in one record."""

    name: str
    length: int
    class_mix: dict[OpClass, float]
    mean_dependence_distance: float
    short_dependence_fraction: float  #: operands produced within 8 insts
    ilp_window_128: float
    ilp_unbounded: float
    branches: BranchProfile
    memory: MemoryProfile
    mean_basic_block: float

    def format_report(self) -> str:
        """Multi-line human-readable characterisation."""
        mix = ", ".join(
            f"{cls.value}={100 * fraction:.1f}%"
            for cls, fraction in sorted(
                self.class_mix.items(), key=lambda item: -item[1]
            )
        )
        return "\n".join(
            [
                f"{self.name or 'trace'}: {self.length} instructions",
                f"  mix: {mix}",
                f"  mean dependence distance: "
                f"{self.mean_dependence_distance:.1f} insts "
                f"({100 * self.short_dependence_fraction:.0f}% within 8)",
                f"  dataflow ILP: {self.ilp_window_128:.1f} (128-window), "
                f"{self.ilp_unbounded:.1f} (unbounded)",
                f"  branches: {self.branches.count} "
                f"({100 * self.branches.taken_fraction:.0f}% taken, "
                f"{self.branches.static_sites} sites, gshare "
                f"{100 * self.branches.gshare_accuracy:.1f}%)",
                f"  memory: {self.memory.loads} loads / {self.memory.stores} "
                f"stores over {self.memory.unique_lines} lines",
                f"  mean basic block: {self.mean_basic_block:.1f} insts",
            ]
        )


def profile_trace(trace: Trace) -> TraceProfile:
    """Run every analysis over a trace and package the results."""
    length = len(trace.insts)
    counts = trace.class_counts()
    class_mix = {
        cls: count / length if length else 0.0 for cls, count in counts.items()
    }
    blocks = basic_block_lengths(trace)
    return TraceProfile(
        name=trace.name,
        length=length,
        class_mix=class_mix,
        mean_dependence_distance=mean_dependence_distance(trace),
        short_dependence_fraction=short_dependence_fraction(trace),
        ilp_window_128=windowed_dataflow_ilp(trace, 128),
        ilp_unbounded=unbounded_dataflow_ilp(trace),
        branches=branch_profile(trace),
        memory=memory_profile(trace),
        mean_basic_block=sum(blocks) / len(blocks) if blocks else 0.0,
    )
