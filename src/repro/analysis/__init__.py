"""Dynamic-trace analysis.

Tools to characterise the workloads driving the timing experiments:
instruction mix, register dependence structure (the property the
dependence-based microarchitecture exploits), dataflow ILP limits,
branch behaviour, and memory footprint.
"""

from repro.analysis.traces import (
    TraceProfile,
    basic_block_lengths,
    branch_profile,
    dependence_distance_histogram,
    memory_profile,
    profile_trace,
    short_dependence_fraction,
    unbounded_dataflow_ilp,
    windowed_dataflow_ilp,
)

__all__ = [
    "TraceProfile",
    "profile_trace",
    "dependence_distance_histogram",
    "short_dependence_fraction",
    "windowed_dataflow_ilp",
    "unbounded_dataflow_ilp",
    "branch_profile",
    "memory_profile",
    "basic_block_lengths",
]
