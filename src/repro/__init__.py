"""Reproduction of "Complexity-Effective Superscalar Processors".

Palacharla, Jouppi, and Smith; ISCA 1997.

The package has two halves, mirroring the paper:

``repro.technology``, ``repro.circuits``, ``repro.delay``
    Analytic delay models for the pipeline structures whose delay grows
    with issue width and window size (register rename, window wakeup,
    selection, operand bypass, and the dependence-based design's
    reservation table), calibrated against the paper's published Hspice
    data for 0.8 um, 0.35 um, and 0.18 um CMOS.

``repro.isa``, ``repro.workloads``, ``repro.uarch``, ``repro.core``
    A cycle-level out-of-order timing simulator (the paper used a
    modified SimpleScalar) with a conventional issue window, the
    proposed dependence-based FIFO microarchitecture, and the clustered
    variants of Section 5.6, plus workload kernels modeled on the
    SPEC'95 integer benchmarks the paper evaluated.

Typical entry points::

    from repro.technology import TECH_018
    from repro.delay import WakeupDelayModel

    model = WakeupDelayModel(TECH_018)
    picoseconds = model.total(issue_width=8, window_size=64)

    from repro.core import experiments
    result = experiments.run_fig13(max_instructions=20_000)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
