"""ASCII tables and bar charts."""

from __future__ import annotations

#: Glyph used for bar bodies.
_BAR = "#"


def text_table(headers: list[str], rows: list[list[object]]) -> str:
    """Render an aligned table.

    Args:
        headers: Column titles.
        rows: Cell values; floats are rendered with three decimals.

    Raises:
        ValueError: if any row width differs from the header width.
    """
    def render(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    cells = [[render(v) for v in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in cells)) if cells
        else len(headers[col])
        for col in range(len(headers))
    ]
    def line(parts):
        return "  ".join(part.rjust(width) for part, width in zip(parts, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def bar_chart(
    values: dict[str, float], width: int = 50, unit: str = ""
) -> str:
    """Render one series of labelled horizontal bars.

    Bars scale so the maximum value fills ``width`` characters.

    Raises:
        ValueError: for an empty series, non-positive width, or
            negative values.
    """
    if not values:
        raise ValueError("bar_chart needs at least one value")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if any(v < 0 for v in values.values()):
        raise ValueError("bar_chart values must be non-negative")
    peak = max(values.values()) or 1.0
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        bar = _BAR * max(0, round(width * value / peak))
        suffix = f" {value:.3f}{unit}"
        lines.append(f"{label.ljust(label_width)} |{bar}{suffix}")
    return "\n".join(lines)


def frontier_chart(points, width: int = 40) -> str:
    """Render a BIPS frontier as grouped bars, one group per
    technology node.

    Args:
        points: Frontier points (anything with ``label``, ``tech``,
            and ``bips`` attributes, e.g.
            :class:`~repro.core.frontier.FrontierPoint`); points
            without a technology label fall into one ``design`` group.

    Raises:
        ValueError: for empty input or technology groups holding
            different design sets.
    """
    series: dict[str, dict[str, float]] = {}
    for point in points:
        tech = point.tech or "design"
        label = point.label.split("@", 1)[0]
        series.setdefault(tech, {})[label] = point.bips
    return grouped_bar_chart(series, width=width, unit=" BIPS")


def grouped_bar_chart(
    series: dict[str, dict[str, float]], width: int = 40, unit: str = ""
) -> str:
    """Render grouped bars, one group per outer key (like Figure 13:
    one group per benchmark, one bar per machine).

    Raises:
        ValueError: for empty input or inconsistent inner keys.
    """
    if not series:
        raise ValueError("grouped_bar_chart needs at least one group")
    inner_keys = None
    for group in series.values():
        if inner_keys is None:
            inner_keys = list(group)
        elif list(group) != inner_keys:
            raise ValueError("every group must have the same bars")
    peak = max(
        (value for group in series.values() for value in group.values()),
        default=1.0,
    ) or 1.0
    label_width = max(len(name) for name in inner_keys)
    lines = []
    for group_name, group in series.items():
        lines.append(f"{group_name}:")
        for name, value in group.items():
            bar = _BAR * max(0, round(width * value / peak))
            lines.append(
                f"  {name.ljust(label_width)} |{bar} {value:.3f}{unit}"
            )
    return "\n".join(lines)
