"""Text rendering of tables and figure-style bar charts.

The paper's Figures 13, 15, and 17 are grouped bar charts; this
package renders the same comparisons as aligned text so experiment
results read like the figures without a plotting dependency.
"""

from repro.report.figures import (
    bar_chart,
    frontier_chart,
    grouped_bar_chart,
    text_table,
)
from repro.report.timeline import render_timeline

__all__ = [
    "bar_chart",
    "frontier_chart",
    "grouped_bar_chart",
    "text_table",
    "render_timeline",
]
