"""Pipeline timeline rendering (textbook pipe diagrams).

Renders a finished simulation's per-instruction stage cycles as the
classic instruction/cycle grid::

    seq opcode        0123456789
      0 li r1, 0      F.DI*C
      1 addu r1, ...  F.D.I*C

Stage letters: ``F`` fetch, ``D`` dispatch (rename/steer), ``I``
issue, ``*`` execution occupancy after issue, ``C`` commit.  This is
the fastest way to *see* timing effects -- e.g. the Figure 10 bubble
between dependent instructions when wakeup/select is pipelined.
"""

from __future__ import annotations

from repro.uarch.pipeline import PipelineSimulator

#: Stage glyphs, later stages overwrite earlier ones on collisions.
_GLYPHS = ("F", "D", "I", "*", "C")


def render_timeline(
    simulator: PipelineSimulator,
    first: int = 0,
    count: int = 16,
    max_width: int = 100,
) -> str:
    """Render the pipeline timeline of a committed instruction range.

    Args:
        simulator: A simulator whose :meth:`run` has completed.
        first: First dynamic sequence number to show.
        count: Number of instructions.
        max_width: Clip the cycle axis to this many columns.

    Raises:
        ValueError: for an empty or out-of-range instruction range.
    """
    n = len(simulator.insts)
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if not 0 <= first < n:
        raise ValueError(f"first={first} outside trace of {n} instructions")
    last = min(n, first + count)
    rows = range(first, last)

    base_cycle = min(simulator.fetch_cycle[seq] for seq in rows)
    end_cycle = max(simulator.commit_cycle[seq] for seq in rows)
    width = min(max_width, end_cycle - base_cycle + 1)

    def label(seq: int) -> str:
        inst = simulator.insts[seq]
        return f"{inst.opcode} (pc {inst.pc})"

    label_width = min(28, max(len(label(seq)) for seq in rows))
    lines = [
        f"{'seq':>5s} {'instruction'.ljust(label_width)} "
        f"cycles {base_cycle}..{base_cycle + width - 1}"
    ]
    for seq in rows:
        cells = ["."] * width

        def put(cycle, glyph):
            offset = cycle - base_cycle
            if 0 <= offset < width:
                cells[offset] = glyph

        issue = simulator.issue_cycle[seq]
        complete = simulator.complete_cycle[seq]
        put(simulator.fetch_cycle[seq], "F")
        put(simulator.dispatch_cycle[seq], "D")
        put(issue, "I")
        for cycle in range(issue + 1, int(complete)):
            put(cycle, "*")
        put(simulator.commit_cycle[seq], "C")
        text = label(seq)[:label_width]
        lines.append(f"{seq:5d} {text.ljust(label_width)} {''.join(cells)}")
    return "\n".join(lines)
