"""Pipeline timeline rendering (textbook pipe diagrams).

Renders a traced simulation's per-instruction lifecycle as the classic
instruction/cycle grid::

    seq opcode        0123456789
      0 li r1, 0      F.DI*C
      1 addu r1, ...  F.D.I*C

Stage letters: ``F`` fetch, ``D`` dispatch (rename/steer), ``I``
issue, ``*`` execution occupancy after issue, ``C`` commit.  This is
the fastest way to *see* timing effects -- e.g. the Figure 10 bubble
between dependent instructions when wakeup/select is pipelined.

The grid is built **only** from :class:`~repro.obs.events.TraceEvent`
records emitted by the pipeline itself, so the timeline can never
disagree with the simulator: attach an
:class:`~repro.obs.events.EventTracer` when constructing the
simulator and render after ``run()``::

    tracer = EventTracer()
    simulator = PipelineSimulator(config, trace, tracer=tracer)
    simulator.run()
    print(render_timeline(simulator, 0, 16))
"""

from __future__ import annotations

from repro.obs.events import EventKind, TraceEvent

#: Stage glyphs, later stages overwrite earlier ones on collisions.
_GLYPHS = ("F", "D", "I", "*", "C")


class _Row:
    """Stage cycles of one instruction, accumulated from events."""

    __slots__ = ("fetch", "dispatch", "issue", "complete", "commit")

    def __init__(self):
        self.fetch = None
        self.dispatch = None
        self.issue = None
        self.complete = None
        self.commit = None

    @property
    def missing(self) -> list[str]:
        return [
            name for name in self.__slots__ if getattr(self, name) is None
        ]


def rows_from_events(
    events: list[TraceEvent], first: int, last: int
) -> dict[int, _Row]:
    """Fold lifecycle events into per-instruction stage cycles.

    Only instructions with ``first <= seq < last`` are kept.  Events
    outside the lifecycle kinds used by the grid are ignored.
    """
    rows: dict[int, _Row] = {}

    def row(seq: int) -> _Row:
        if seq not in rows:
            rows[seq] = _Row()
        return rows[seq]

    for event in events:
        if not first <= event.seq < last:
            continue
        kind = event.kind
        if kind is EventKind.FETCH:
            row(event.seq).fetch = event.cycle
        elif kind is EventKind.DISPATCH:
            row(event.seq).dispatch = event.cycle
        elif kind is EventKind.ISSUE:
            row(event.seq).issue = event.cycle
        elif kind is EventKind.EXECUTE:
            row(event.seq).complete = event.cycle + event.dur
        elif kind is EventKind.COMMIT:
            row(event.seq).commit = event.cycle
    return rows


def render_timeline(
    simulator,
    first: int = 0,
    count: int = 16,
    max_width: int = 100,
) -> str:
    """Render the pipeline timeline of a committed instruction range.

    Args:
        simulator: A :class:`~repro.uarch.pipeline.PipelineSimulator`
            constructed with a tracer, whose :meth:`run` has
            completed.
        first: First dynamic sequence number to show.
        count: Number of instructions.
        max_width: Clip the cycle axis to this many columns.

    Raises:
        ValueError: for an empty or out-of-range instruction range,
            a simulator without a tracer, or a tracer whose ring
            buffer no longer holds the requested instructions.
    """
    n = len(simulator.insts)
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if not 0 <= first < n:
        raise ValueError(f"first={first} outside trace of {n} instructions")
    tracer = getattr(simulator, "tracer", None)
    if tracer is None:
        raise ValueError(
            "timeline rendering consumes tracer events: construct the "
            "simulator with PipelineSimulator(config, trace, "
            "tracer=EventTracer())"
        )
    last = min(n, first + count)
    rows = rows_from_events(tracer.events, first, last)
    for seq in range(first, last):
        missing = rows[seq].missing if seq in rows else ["all events"]
        if missing:
            raise ValueError(
                f"instruction {seq} is missing {', '.join(missing)} "
                f"events ({tracer.dropped} events were evicted; run the "
                f"simulation, or raise the tracer capacity)"
            )

    base_cycle = min(rows[seq].fetch for seq in rows)
    end_cycle = max(rows[seq].commit for seq in rows)
    width = min(max_width, end_cycle - base_cycle + 1)

    def label(seq: int) -> str:
        inst = simulator.insts[seq]
        return f"{inst.opcode} (pc {inst.pc})"

    label_width = min(28, max(len(label(seq)) for seq in rows))
    lines = [
        f"{'seq':>5s} {'instruction'.ljust(label_width)} "
        f"cycles {base_cycle}..{base_cycle + width - 1}"
    ]
    for seq in sorted(rows):
        cells = ["."] * width
        row = rows[seq]

        def put(cycle, glyph):
            offset = cycle - base_cycle
            if 0 <= offset < width:
                cells[offset] = glyph

        put(row.fetch, "F")
        put(row.dispatch, "D")
        put(row.issue, "I")
        for cycle in range(row.issue + 1, row.complete):
            put(cycle, "*")
        put(row.commit, "C")
        text = label(seq)[:label_width]
        lines.append(f"{seq:5d} {text.ljust(label_width)} {''.join(cells)}")
    return "\n".join(lines)
