"""First-class workloads: the registry every consumer draws from.

Machines got a real registry in :mod:`repro.core.machines`; this is
the workload-side mirror.  A :class:`Workload` bundles a *name*, a
*kind* (kernel / synthetic / external trace), a human description, a
trace loader, and -- critically -- a **content fingerprint**.  The
fingerprint plus :data:`WORKLOAD_VERSION` form the workload's
*identity*, which the campaign cache key, the grid fingerprint, and
the service cell keys all hash (see
:func:`repro.core.campaign.cache_key`).  That closes the latent
staleness hole where editing a kernel's source silently reused cached
``SimStats`` keyed only by its name.

Fingerprints are computed **at call time** from the workload's
current content (a kernel's source text read through its module
attribute, a synthetic scenario's canonical config, an external trace
file's bytes), so an edit -- or a test monkeypatching a kernel's
``source`` -- changes every derived cache key immediately.

Registration order is presentation order: the seven paper kernels
first (Figure 13/15/17 order), then the Mini-compiled extras, then
the ``zoo_*`` synthetic scenarios (:mod:`repro.workloads.zoo`), then
any external traces registered at runtime.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Callable

from repro.isa import Trace, assemble, run_to_trace

#: Behaviour version of the workload layer itself.  Bump when trace
#: generation semantics change in a way that alters simulation inputs
#: without changing any workload's content (every derived cache key
#: changes with it).
WORKLOAD_VERSION = 1

#: The closed set of workload kinds.
KIND_KERNEL = "kernel"
KIND_SYNTHETIC = "synthetic"
KIND_EXTERNAL = "external"
WORKLOAD_KINDS = (KIND_KERNEL, KIND_SYNTHETIC, KIND_EXTERNAL)

_TRACE_CACHE: dict[tuple[str, int], Trace] = {}


class Workload:
    """One registered workload: identity plus a trace loader.

    Args:
        name: Registry key (unique).
        kind: One of :data:`WORKLOAD_KINDS`.
        description: One-line human description (the ``repro
            workloads`` listing and ``/v1/workloads`` serve this).
        loader: ``loader(max_instructions) -> Trace``.
        content: Zero-argument callable returning the bytes that
            *define* this workload (source text, canonical config,
            trace-file bytes).  Called fresh on every
            :meth:`fingerprint` so edits are seen immediately.
    """

    def __init__(self, name: str, kind: str, description: str,
                 loader: Callable[[int], Trace],
                 content: Callable[[], bytes]) -> None:
        if kind not in WORKLOAD_KINDS:
            raise ValueError(
                f"kind must be one of {WORKLOAD_KINDS}, got {kind!r}")
        self.name = name
        self.kind = kind
        self.description = description
        self._loader = loader
        self._content = content

    def fingerprint(self) -> str:
        """sha256 hex digest of the workload's current content."""
        return hashlib.sha256(self._content()).hexdigest()

    def identity(self) -> dict:
        """The identity dict hashed into campaign/service cache keys."""
        return {
            "kind": self.kind,
            "fingerprint": self.fingerprint(),
            "version": WORKLOAD_VERSION,
        }

    def trace(self, max_instructions: int = 30_000) -> Trace:
        """The workload's dynamic trace, cached per (name, budget)."""
        key = (self.name, max_instructions)
        if key not in _TRACE_CACHE:
            _TRACE_CACHE[key] = self._loader(max_instructions)
        return _TRACE_CACHE[key]

    def __repr__(self) -> str:
        return f"Workload({self.name!r}, kind={self.kind!r})"


#: The registry: name -> Workload, in presentation order.
WORKLOAD_REGISTRY: dict[str, Workload] = {}


def register_workload(workload: Workload, replace: bool = False) -> Workload:
    """Add a workload to the registry (its name must be unique)."""
    if not replace and workload.name in WORKLOAD_REGISTRY:
        raise ValueError(f"workload {workload.name!r} already registered")
    WORKLOAD_REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    """Look a workload up by name.

    Raises:
        KeyError: for an unknown workload name.
    """
    try:
        return WORKLOAD_REGISTRY[name]
    except KeyError:
        known = ", ".join(WORKLOAD_REGISTRY)
        raise KeyError(
            f"unknown workload {name!r} (known: {known})") from None


def workload_names(kind: str | None = None) -> tuple[str, ...]:
    """Registered names in registration order, optionally by kind."""
    if kind is None:
        return tuple(WORKLOAD_REGISTRY)
    return tuple(name for name, w in WORKLOAD_REGISTRY.items()
                 if w.kind == kind)


def workload_identity(name: str) -> dict:
    """The cache-key identity of ``name`` -- total, never raising.

    Unregistered names (tests inject fake workloads with stub
    runners) fall back to a name-only identity, which preserves the
    old keying behaviour for them while still folding
    :data:`WORKLOAD_VERSION` in.
    """
    workload = WORKLOAD_REGISTRY.get(name)
    if workload is None:
        return {"kind": "unregistered", "fingerprint": name,
                "version": WORKLOAD_VERSION}
    return workload.identity()


# ----------------------------------------------------------------------
# built-in registrations
# ----------------------------------------------------------------------


def _register_kernel(name: str, module, description: str) -> None:
    """Register one hand-written assembly kernel.

    The content callable reads ``module.source`` through the module
    attribute *at call time*, so editing (or monkeypatching) a
    kernel's source changes its fingerprint -- and with it every
    campaign cache key -- immediately.
    """
    def loader(max_instructions: int) -> Trace:
        return run_to_trace(assemble(module.source()),
                            max_instructions=max_instructions, name=name)

    register_workload(Workload(
        name, KIND_KERNEL, description, loader,
        content=lambda: module.source().encode("utf-8"),
    ))


def _register_mini_kernel(name: str, description: str) -> None:
    """Register one Mini-compiled extra kernel (dct / qsort)."""
    from repro.workloads import extra

    def loader(max_instructions: int) -> Trace:
        from repro.isa import run_to_trace as _run
        from repro.lang import compile_source

        return _run(compile_source(extra._SOURCES[name]),
                    max_instructions=max_instructions, name=name)

    register_workload(Workload(
        name, KIND_KERNEL, description, loader,
        content=lambda: extra._SOURCES[name].encode("utf-8"),
    ))


def canonical_synthetic_content(config) -> bytes:
    """Canonical bytes of a synthetic scenario's generator config.

    ``length`` is excluded: the instruction budget is hashed into the
    cache key separately, exactly as it is for kernels.
    """
    fields = dataclasses.asdict(config)
    fields.pop("length", None)
    return json.dumps(fields, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def register_external_trace(path: str | Path,
                            name: str | None = None,
                            replace: bool = False) -> Workload:
    """Register an external trace file as a first-class workload.

    The file must be in the versioned JSON-lines format defined by
    :mod:`repro.workloads.trace_format`; it is validated eagerly so a
    malformed file fails here, not mid-campaign.  The fingerprint is
    the sha256 of the file bytes captured at registration.

    Args:
        path: Trace file in ``repro-trace`` JSONL format.
        name: Registry name (default ``trace:<file stem>``).
        replace: Allow re-registering an existing name.
    """
    from repro.workloads.trace_format import load_trace

    path = Path(path)
    full = load_trace(path)
    digest = hashlib.sha256(path.read_bytes()).digest()
    name = name or f"trace:{path.stem}"

    def loader(max_instructions: int) -> Trace:
        return Trace(insts=full.insts[:max_instructions],
                     halted=full.halted and max_instructions >= len(full),
                     name=name)

    return register_workload(Workload(
        name, KIND_EXTERNAL,
        f"external trace ({len(full)} insts from {path.name})",
        loader, content=lambda: digest,
    ), replace=replace)


def characterize(name: str, max_instructions: int = 5_000) -> dict:
    """A compact characterization of one workload (JSON-ready).

    This is what ``/v1/workloads?workload=...`` and the ``repro
    workloads`` listing serve: dynamic instruction mix, branch/load
    fractions, mean dependence distance, and memory footprint.
    """
    from repro.analysis.traces import (
        mean_dependence_distance,
        memory_profile,
    )

    workload = get_workload(name)
    trace = workload.trace(max_instructions)
    mix = {op_class.value: count
           for op_class, count in sorted(trace.class_counts().items(),
                                         key=lambda item: item[0].value)}
    memory = memory_profile(trace)
    return {
        "name": name,
        "kind": workload.kind,
        "instructions": len(trace),
        "halted": trace.halted,
        "class_mix": mix,
        "branch_fraction": round(trace.branch_fraction(), 4),
        "load_fraction": round(trace.load_fraction(), 4),
        "mean_dependence_distance": round(
            mean_dependence_distance(trace), 3),
        "memory_words": memory.unique_words,
    }


def _register_paper_kernels() -> None:
    from repro.workloads import (
        compress, gcc, go, li, m88ksim, perl, vortex,
    )

    for name, module, description in (
        ("compress", compress,
         "LZW-style compression: hashing, table probing"),
        ("gcc", gcc, "token scanner / state machine: irregular branches"),
        ("go", go, "board evaluation: nested loops, branchy checks"),
        ("li", li, "cons-cell interpreter: pointer chasing, low ILP"),
        ("m88ksim", m88ksim,
         "ISA simulator: fetch/decode loop, indirect jumps"),
        ("perl", perl, "string hashing, bucket-chain walks"),
        ("vortex", vortex, "object database: call-heavy traversal"),
    ):
        _register_kernel(name, module, description)
    _register_mini_kernel(
        "dct", "Mini-compiled 8x8 integer DCT sweep: high ILP")
    _register_mini_kernel(
        "qsort", "Mini-compiled quicksort: recursion, data-dependent "
                 "branches")


_register_paper_kernels()
