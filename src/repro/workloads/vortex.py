"""``vortex`` kernel: object-database record manipulation.

SPEC'95 147.vortex is an object-oriented database: it spends its time
looking records up through indices, validating their fields, and
updating them -- across many small procedure calls.  This kernel keeps
a table of 8-word records and a permuted primary index; its main loop
picks an id, calls ``lookup`` (index load), calls ``validate`` (branchy
field checks), and calls ``update`` or ``repair`` on the record.

Character: call-heavy control flow (jal/jr), records touched through
an index indirection, mixed predictable/unpredictable branches,
store-heavy updates.
"""

from __future__ import annotations

from repro.workloads._datagen import Lcg, words_directive

#: Number of records (power of two so ids can be masked).
RECORDS = 128
#: Words per record: [id, kind, balance, flags, a, b, checksum, pad].
RECORD_WORDS = 8


def _records_and_index() -> tuple[list[int], list[int]]:
    rng = Lcg(0x0DB)
    words: list[int] = []
    for record_id in range(RECORDS):
        kind = rng.next_below(4)
        balance = rng.next_below(1000)
        flags = rng.next_below(8)
        a = rng.next_below(500)
        b = rng.next_below(500)
        checksum = (record_id + kind + balance) & 0xFFFF
        words.extend([record_id, kind, balance, flags, a, b, checksum, 0])
    index = list(range(RECORDS))
    for i in range(len(index) - 1, 0, -1):
        j = rng.next_below(i + 1)
        index[i], index[j] = index[j], index[i]
    return words, index


def source() -> str:
    """Assembly source text for the vortex kernel."""
    record_words, index = _records_and_index()
    return f"""
# vortex: object-database lookup/validate/update transaction loop
        .data
records:
{words_directive(record_words)}
index:
{words_directive(index)}
stats:   .space 32

        .text
main:
        la   r8, records
        la   r9, index
        la   r10, stats
        li   r11, 1             # transaction id seed

txn_loop:
        # next id: lcg step, masked into range
        li   r2, 75
        mult r11, r11, r2
        addiu r11, r11, 74
        andi r11, r11, 16383
        andi r12, r11, {RECORDS - 1}   # record id

        move r4, r12            # argument: id
        jal  lookup             # r2 = record address
        move r13, r2

        move r4, r13            # argument: record address
        jal  validate           # r2 = 0 ok, 1 bad checksum, 2 frozen
        beq  r2, r0, do_update
        li   r3, 1
        beq  r2, r3, do_repair
        lw   r5, 8(r10)         # frozen: count and skip
        addiu r5, r5, 1
        sw   r5, 8(r10)
        b    txn_loop

do_update:
        move r4, r13
        jal  update
        lw   r5, 0(r10)
        addiu r5, r5, 1
        sw   r5, 0(r10)
        b    txn_loop

do_repair:
        move r4, r13
        jal  repair
        lw   r5, 4(r10)
        addiu r5, r5, 1
        sw   r5, 4(r10)
        b    txn_loop

# ---- lookup(id in r4) -> record address in r2 -------------------------
lookup:
        sll  r2, r4, 2
        addu r2, r2, r9
        lw   r2, 0(r2)          # physical record number via index
        sll  r2, r2, 5          # * RECORD_WORDS * 4
        addu r2, r2, r8
        jr   $ra

# ---- validate(addr in r4) -> status in r2 -----------------------------
validate:
        lw   r5, 12(r4)         # flags
        andi r6, r5, 4          # frozen bit
        beq  r6, r0, check_sum
        li   r2, 2
        jr   $ra
check_sum:
        lw   r5, 0(r4)          # id
        lw   r6, 4(r4)          # kind
        lw   r7, 8(r4)          # balance
        addu r5, r5, r6
        addu r5, r5, r7
        andi r5, r5, 65535
        lw   r6, 24(r4)         # stored checksum
        beq  r5, r6, sum_ok
        li   r2, 1
        jr   $ra
sum_ok:
        li   r2, 0
        jr   $ra

# ---- update(addr in r4): post a transaction to the record -------------
update:
        lw   r5, 8(r4)          # balance
        lw   r6, 16(r4)         # a
        lw   r7, 20(r4)         # b
        addu r5, r5, r6
        subu r5, r5, r7
        bgez r5, bal_ok
        li   r5, 0              # clamp at zero
bal_ok:
        andi r5, r5, 65535
        sw   r5, 8(r4)
        # rotate a and b
        addiu r6, r6, 7
        andi r6, r6, 511
        sw   r6, 16(r4)
        addiu r7, r7, 3
        andi r7, r7, 511
        sw   r7, 20(r4)
        # refresh the checksum
        lw   r6, 0(r4)
        lw   r7, 4(r4)
        addu r6, r6, r7
        addu r6, r6, r5
        andi r6, r6, 65535
        sw   r6, 24(r4)
        jr   $ra

# ---- repair(addr in r4): rebuild the checksum -------------------------
repair:
        lw   r5, 0(r4)
        lw   r6, 4(r4)
        lw   r7, 8(r4)
        addu r5, r5, r6
        addu r5, r5, r7
        andi r5, r5, 65535
        sw   r5, 24(r4)
        jr   $ra
"""
