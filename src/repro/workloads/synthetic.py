"""Parameterised synthetic trace generation.

For controlled studies (and fast tests) it is useful to generate
dynamic traces directly, with dialled-in dependence distance, branch
behaviour, and memory mix, instead of running a real kernel.  The
generator builds a static loop body whose slots have fixed classes and
register dependences, then unrolls it dynamically with per-iteration
branch outcomes -- so a gshare predictor and the steering heuristics
see realistic, learnable structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.emulator import DynInst, Trace
from repro.isa.instructions import OpClass
from repro.workloads._datagen import Lcg

#: Registers the generator cycles through for destinations.
_DEST_REGS = tuple(range(1, 25))


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of a synthetic trace.

    Attributes:
        length: Dynamic instructions to generate.
        body_size: Static loop-body slots (the PC footprint).
        load_fraction: Fraction of slots that are loads.
        store_fraction: Fraction of slots that are stores.
        branch_fraction: Fraction of slots that are conditional
            branches.
        branch_taken_probability: Per-branch probability of being
            taken each iteration; 0 or 1 makes branches perfectly
            predictable, 0.5 makes them maximally unpredictable.
        mean_dependence_distance: Average distance (in dynamic
            instructions) to a source operand's producer; small values
            make long serial chains.
        memory_words: Size of the address pool touched by loads and
            stores.
        seed: Generator seed (traces are deterministic per seed).
    """

    length: int = 10_000
    body_size: int = 64
    load_fraction: float = 0.20
    store_fraction: float = 0.10
    branch_fraction: float = 0.15
    branch_taken_probability: float = 0.6
    mean_dependence_distance: float = 4.0
    memory_words: int = 4096
    seed: int = 1

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError(f"length must be >= 0, got {self.length}")
        if self.body_size < 2:
            raise ValueError(f"body_size must be >= 2, got {self.body_size}")
        fractions = self.load_fraction + self.store_fraction + self.branch_fraction
        if not 0.0 <= fractions <= 1.0:
            raise ValueError("class fractions must sum to within [0, 1]")
        if not 0.0 <= self.branch_taken_probability <= 1.0:
            raise ValueError("branch_taken_probability must be a probability")
        if self.mean_dependence_distance < 1.0:
            raise ValueError("mean_dependence_distance must be >= 1")
        if self.memory_words < 1:
            raise ValueError("memory_words must be >= 1")


def _pick_class(rng: Lcg, config: SyntheticConfig) -> OpClass:
    roll = rng.next_below(1000) / 1000.0
    if roll < config.load_fraction:
        return OpClass.LOAD
    roll -= config.load_fraction
    if roll < config.store_fraction:
        return OpClass.STORE
    roll -= config.store_fraction
    if roll < config.branch_fraction:
        return OpClass.BRANCH
    return OpClass.IALU


def _geometric(rng: Lcg, mean: float) -> int:
    """Geometric-ish positive distance with the given mean."""
    if mean <= 1.0:
        return 1
    success = 1.0 / mean
    distance = 1
    while rng.next_below(10_000) / 10_000.0 > success and distance < 64:
        distance += 1
    return distance


def synthetic_trace(config: SyntheticConfig) -> Trace:
    """Generate a synthetic dynamic :class:`Trace` from a config."""
    rng = Lcg(config.seed)
    # ---- static loop body ---------------------------------------------
    classes = [_pick_class(rng, config) for _ in range(config.body_size)]
    classes[-1] = OpClass.BRANCH  # loop-closing backward branch
    # Per-slot branch bias: individual branches lean taken or not, so a
    # history predictor has something to learn when the global
    # probability is not extreme.
    biases = []
    for op_class in classes:
        if op_class is OpClass.BRANCH:
            base = config.branch_taken_probability
            lean = (rng.next_below(400) - 200) / 1000.0  # +-0.2
            biases.append(min(0.98, max(0.02, base + lean)))
        else:
            biases.append(0.0)
    # ---- dynamic unroll --------------------------------------------------
    insts: list[DynInst] = []
    recent_dests: list[int] = []  # architectural dests, most recent last
    dest_cursor = 0
    pc = 0
    for seq in range(config.length):
        op_class = classes[pc]
        # Source operands: reference recent producers at geometric
        # distances (this is what sets the trace's ILP).
        srcs = []
        for _operand in range(2 if op_class is not OpClass.LOAD else 1):
            if recent_dests:
                distance = _geometric(rng, config.mean_dependence_distance)
                index = max(0, len(recent_dests) - distance)
                srcs.append(recent_dests[index])
        dest = None
        if op_class in (OpClass.IALU, OpClass.LOAD):
            dest = _DEST_REGS[dest_cursor % len(_DEST_REGS)]
            dest_cursor += 1
        mem_addr = None
        if op_class in (OpClass.LOAD, OpClass.STORE):
            mem_addr = 4 * rng.next_below(config.memory_words)
        taken = False
        next_pc = pc + 1
        is_branch = op_class is OpClass.BRANCH
        if is_branch:
            taken = rng.next_below(10_000) / 10_000.0 < biases[pc]
            if pc == config.body_size - 1:
                taken = True  # the loop branch always closes the loop
                next_pc = 0
            elif taken:
                # Mid-body branches skip forward a couple of slots
                # (if-shaped control flow), keeping the dynamic class
                # mix close to the configured static mix.
                next_pc = pc + 2 + rng.next_below(3)
        if next_pc >= config.body_size:
            next_pc = 0
        opcode = {
            OpClass.IALU: "addu",
            OpClass.LOAD: "lw",
            OpClass.STORE: "sw",
            OpClass.BRANCH: "bne",
        }[op_class]
        insts.append(
            DynInst(
                seq=seq,
                pc=pc,
                opcode=opcode,
                op_class=op_class,
                srcs=tuple(srcs),
                dest=dest,
                mem_addr=mem_addr,
                is_store=op_class is OpClass.STORE,
                is_load=op_class is OpClass.LOAD,
                is_branch=is_branch,
                is_uncond=False,
                taken=taken,
                next_pc=next_pc,
            )
        )
        if dest is not None:
            recent_dests.append(dest)
            if len(recent_dests) > 64:
                recent_dests.pop(0)
        pc = next_pc
    return Trace(insts=insts, halted=False, name=f"synthetic(seed={config.seed})")
