"""Deterministic input-data generation for the workload kernels.

Every kernel embeds its input in the ``.data`` section at assembly
time.  The bytes come from a fixed linear-congruential generator so
that traces are bit-for-bit reproducible across runs and platforms
without depending on Python's ``random`` module.
"""

from __future__ import annotations


class Lcg:
    """Numerical-Recipes-style 32-bit linear congruential generator."""

    def __init__(self, seed: int):
        self.state = seed & 0xFFFFFFFF

    def next_u32(self) -> int:
        """Next 32-bit value."""
        self.state = (self.state * 1664525 + 1013904223) & 0xFFFFFFFF
        return self.state

    def next_below(self, bound: int) -> int:
        """Uniform-ish value in [0, bound)."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return (self.next_u32() >> 8) % bound


def words_directive(values: list[int], per_line: int = 12) -> str:
    """Format a list of integers as ``.word`` directive lines."""
    lines = []
    for start in range(0, len(values), per_line):
        chunk = values[start : start + per_line]
        lines.append("    .word " + ", ".join(str(v) for v in chunk))
    return "\n".join(lines)


def skewed_bytes(count: int, seed: int, alphabet: int = 32) -> list[int]:
    """A byte stream with repetition structure (compressible text-like).

    Roughly half the bytes repeat a recent byte, giving LZW-style
    kernels realistic hash-table hit behaviour.
    """
    rng = Lcg(seed)
    history: list[int] = []
    output: list[int] = []
    for _ in range(count):
        if history and rng.next_below(100) < 55:
            value = history[rng.next_below(min(len(history), 8))]
        else:
            value = 1 + rng.next_below(alphabet)
        output.append(value)
        history.insert(0, value)
        if len(history) > 8:
            history.pop()
    return output
