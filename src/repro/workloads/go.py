"""``go`` kernel: board evaluation over a 19x19 position.

SPEC'95 099.go evaluates Go positions: nested loops over the board,
neighbour inspection with bounds checks, and pattern scoring -- lots of
short branchy computations with good spatial locality.  This kernel
sweeps a 19x19 board, counts each stone's liberties (empty neighbours)
with explicit edge tests, scores groups by colour, and mutates a stone
each sweep so successive evaluations differ.

Character: predictable loop branches mixed with data-dependent
neighbour tests, 2D index arithmetic, dense loads.
"""

from __future__ import annotations

from repro.workloads._datagen import Lcg, words_directive

#: Board edge length (standard Go board).
BOARD = 19
#: Cells total.
CELLS = BOARD * BOARD


def _board() -> list[int]:
    """A plausible mid-game position: ~55% empty, rest alternating."""
    rng = Lcg(0x60B0A2D)
    cells = []
    for _index in range(CELLS):
        roll = rng.next_below(100)
        if roll < 55:
            cells.append(0)  # empty
        elif roll < 78:
            cells.append(1)  # black
        else:
            cells.append(2)  # white
    return cells


def source() -> str:
    """Assembly source text for the go kernel."""
    cells = _board()
    return f"""
# go: 19x19 board sweep with liberty counting
        .data
board:
{words_directive(cells)}
libmap: .space {4 * CELLS}      # per-cell liberty scores
scores: .space 16               # per-colour scores and best-cell data

        .text
main:
        la   r8, board
        la   r9, scores
        la   r7, libmap
        li   r25, 0             # sweep counter

sweep:
        li   r10, 0             # row
        li   r11, 0             # black score accumulator
        li   r12, 0             # white score accumulator
row_loop:
        li   r13, 0             # col
col_loop:
        # cell index = row*19 + col
        sll  r14, r10, 4        # row*16
        sll  r15, r10, 1        # row*2
        addu r14, r14, r15
        addu r14, r14, r10      # row*19
        addu r14, r14, r13
        sll  r15, r14, 2
        addu r15, r15, r8
        lw   r16, 0(r15)        # stone colour
        beq  r16, r0, next_cell # empty: nothing to score

        li   r17, 0             # liberties of this stone
        # north neighbour (row-1)
        blez r10, south
        lw   r18, {-4 * BOARD}(r15)
        bne  r18, r0, south
        addiu r17, r17, 1
south:
        li   r19, {BOARD - 1}
        bge  r10, r19, west
        lw   r18, {4 * BOARD}(r15)
        bne  r18, r0, west
        addiu r17, r17, 1
west:
        blez r13, east
        lw   r18, -4(r15)
        bne  r18, r0, east
        addiu r17, r17, 1
east:
        bge  r13, r19, tally
        lw   r18, 4(r15)
        bne  r18, r0, tally
        addiu r17, r17, 1
tally:
        # record this stone's liberty count in the liberty map
        sll  r18, r14, 2
        addu r18, r18, r7
        sw   r17, 0(r18)
        # weight: stones in atari (1 liberty) count double negative
        li   r19, 1
        bgt  r17, r19, healthy
        subu r17, r17, r19      # 0 or -? -> penalise
healthy:
        li   r19, 1
        bne  r16, r19, white_stone
        addu r11, r11, r17
        b    next_cell
white_stone:
        addu r12, r12, r17

next_cell:
        addiu r13, r13, 1
        li   r19, {BOARD}
        blt  r13, r19, col_loop
        addiu r10, r10, 1
        blt  r10, r19, row_loop

        # store sweep result and mutate one cell so sweeps differ
        sw   r11, 0(r9)
        sw   r12, 4(r9)
        subu r20, r11, r12
        sw   r20, 8(r9)
        # pseudo-random cell: lcg on the sweep counter
        li   r21, 1103515245
        mult r22, r25, r21
        addiu r22, r22, 12345
        srl  r22, r22, 8
        li   r23, {CELLS}
        rem  r22, r22, r23
        sll  r22, r22, 2
        addu r22, r22, r8
        lw   r24, 0(r22)
        addiu r24, r24, 1       # rotate colour 0 -> 1 -> 2 -> 0
        li   r23, 3
        rem  r24, r24, r23
        sw   r24, 0(r22)
        addiu r25, r25, 1
        b    sweep
"""
