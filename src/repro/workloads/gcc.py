"""``gcc`` kernel: token scanning with a dispatch-table state machine.

SPEC'95 126.gcc is dominated by irregular control flow: scanning
tokens, switching on their kinds, and updating many small data
structures.  This kernel scans a pseudo token stream and dispatches
each token kind through a jump table to a handler; handlers do small,
kind-specific work (operator-precedence checks, identifier interning
into a counter table, literal accumulation, nested comment skipping).

Character: high branch density, poorly predictable indirect dispatch,
short dependence chains with moderate ILP.
"""

from __future__ import annotations

from repro.workloads._datagen import Lcg, words_directive

#: Token stream length.
TOKEN_COUNT = 384
#: Number of token kinds (size of the dispatch table).
KIND_COUNT = 8
#: Kind code that opens a comment (skipped by an inner scan loop).
COMMENT_KIND = 6
#: Kind code that closes a comment.
COMMENT_END_KIND = 7


def _token_stream() -> list[int]:
    """(kind, value) pairs packed as kind*256 + value, biased toward
    identifiers/operators like real source text, with occasional
    comments that always eventually close."""
    rng = Lcg(0x6CC)
    tokens: list[int] = []
    weights = [22, 20, 16, 12, 10, 8, 6, 6]  # kinds 0..7
    total = sum(weights)
    pending_comment = False
    while len(tokens) < TOKEN_COUNT:
        pick = rng.next_below(total)
        kind = 0
        for k, weight in enumerate(weights):
            if pick < weight:
                kind = k
                break
            pick -= weight
        if pending_comment:
            # Inside a comment: close soon so scans stay bounded.
            kind = COMMENT_END_KIND if rng.next_below(3) == 0 else 0
        if kind == COMMENT_KIND:
            pending_comment = True
        if kind == COMMENT_END_KIND:
            pending_comment = False
        tokens.append(kind * 256 + rng.next_below(64))
    # Force-close any trailing comment.
    tokens[-1] = COMMENT_END_KIND * 256
    return tokens


def source() -> str:
    """Assembly source text for the gcc kernel."""
    tokens = _token_stream()
    return f"""
# gcc: token scanner with jump-table dispatch
        .data
tokens:
{words_directive(tokens)}
dispatch: .space {4 * KIND_COUNT}
idents:  .space 256            # identifier counter table (64 slots)
stats:   .space 64

        .text
main:
        la   r8, tokens
        li   r9, {TOKEN_COUNT}
        li   r10, 0             # token index
        la   r11, dispatch
        la   r12, idents
        la   r13, stats
        li   r14, 0             # paren depth
        li   r15, 0             # literal accumulator
        # fill the dispatch table with handler addresses
        li   r2, h_ident
        sw   r2, 0(r11)
        li   r2, h_number
        sw   r2, 4(r11)
        li   r2, h_operator
        sw   r2, 8(r11)
        li   r2, h_lparen
        sw   r2, 12(r11)
        li   r2, h_rparen
        sw   r2, 16(r11)
        li   r2, h_keyword
        sw   r2, 20(r11)
        li   r2, h_comment
        sw   r2, 24(r11)
        li   r2, h_commentend
        sw   r2, 28(r11)

scan:
        blt  r10, r9, fetch     # wrap the stream when exhausted
        li   r10, 0
fetch:
        sll  r16, r10, 2
        addu r16, r16, r8
        lw   r17, 0(r16)        # token = kind*256 + value
        srl  r18, r17, 8        # kind
        andi r19, r17, 255      # value
        sll  r20, r18, 2
        addu r20, r20, r11
        lw   r21, 0(r20)        # handler address
        addiu r10, r10, 1
        jr   r21

h_ident:                        # intern: bump a counter keyed by value
        andi r22, r19, 63
        sll  r22, r22, 2
        addu r22, r22, r12
        lw   r23, 0(r22)
        addiu r23, r23, 1
        sw   r23, 0(r22)
        b    scan

h_number:                       # accumulate literal value
        addu r15, r15, r19
        slti r22, r15, 4096
        bne  r22, r0, scan
        sra  r15, r15, 1        # keep the accumulator bounded
        b    scan

h_operator:                     # precedence check: branchy compare tree
        slti r22, r19, 16
        beq  r22, r0, op_high
        addu r15, r15, r19
        b    scan
op_high:
        slti r22, r19, 40
        beq  r22, r0, op_max
        subu r15, r15, r19
        b    scan
op_max:
        sll  r15, r15, 1
        andi r15, r15, 8191
        b    scan

h_lparen:
        addiu r14, r14, 1
        b    scan

h_rparen:
        blez r14, scan          # unmatched close: ignore
        addiu r14, r14, -1
        b    scan

h_keyword:                      # tally keyword kinds
        andi r22, r19, 15
        sll  r22, r22, 2
        addu r22, r22, r13
        lw   r23, 0(r22)
        addiu r23, r23, 1
        sw   r23, 0(r22)
        b    scan

h_comment:                      # skip tokens until the comment closes
skip:
        blt  r10, r9, skip_fetch
        li   r10, 0
skip_fetch:
        sll  r16, r10, 2
        addu r16, r16, r8
        lw   r17, 0(r16)
        srl  r18, r17, 8
        addiu r10, r10, 1
        li   r22, {COMMENT_END_KIND}
        bne  r18, r22, skip
        b    scan

h_commentend:                   # stray close: count it
        lw   r23, 60(r13)
        addiu r23, r23, 1
        sw   r23, 60(r13)
        b    scan
"""
