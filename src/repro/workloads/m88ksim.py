"""``m88ksim`` kernel: an instruction-set simulator's dispatch loop.

SPEC'95 124.m88ksim simulates a Motorola 88100: fetch a guest
instruction word, crack its bitfields, dispatch on the opcode, and
execute against guest architectural state.  This kernel does exactly
that for a small synthetic guest ISA: 8 guest opcodes over a 16-entry
guest register file held in memory, with guest branches that redirect
the guest PC.

Character: a serial fetch-decode dependence chain every iteration,
indirect dispatch (jr) with data-dependent targets, guest register
loads/stores with good locality.
"""

from __future__ import annotations

from repro.workloads._datagen import Lcg, words_directive

#: Number of guest instructions.
GUEST_PROGRAM = 192
#: Guest opcodes 0..7: add, sub, and, or, xor, shift, load-imm, branch.
GUEST_OPCODES = 8


def _guest_program() -> list[int]:
    """Encoded guest instructions: op<<24 | rd<<16 | rs<<8 | imm."""
    rng = Lcg(0x88100)
    words = []
    for index in range(GUEST_PROGRAM):
        op = rng.next_below(GUEST_OPCODES)
        rd = rng.next_below(16)
        rs = rng.next_below(16)
        imm = rng.next_below(256)
        if op == 7:
            # Guest branch: displacement in imm (biased backwards but
            # bounded so the guest program keeps moving forward).
            imm = rng.next_below(16)
        words.append((op << 24) | (rd << 16) | (rs << 8) | imm)
    return words


def source() -> str:
    """Assembly source text for the m88ksim kernel."""
    program_words = _guest_program()
    return f"""
# m88ksim: guest-ISA fetch/decode/dispatch/execute loop
        .data
gprog:
{words_directive(program_words)}
gregs:  .space 64               # 16 guest registers
handlers: .space {4 * GUEST_OPCODES}

        .text
main:
        la   r8, gprog
        la   r9, gregs
        la   r10, handlers
        li   r11, 0             # guest pc
        li   r12, {GUEST_PROGRAM}
        # install the guest opcode handlers
        li   r2, g_add
        sw   r2, 0(r10)
        li   r2, g_sub
        sw   r2, 4(r10)
        li   r2, g_and
        sw   r2, 8(r10)
        li   r2, g_or
        sw   r2, 12(r10)
        li   r2, g_xor
        sw   r2, 16(r10)
        li   r2, g_shift
        sw   r2, 20(r10)
        li   r2, g_li
        sw   r2, 24(r10)
        li   r2, g_branch
        sw   r2, 28(r10)

fetch:
        blt  r11, r12, decode   # wrap the guest pc
        li   r11, 0
decode:
        sll  r13, r11, 2        # fetch guest word (serial chain)
        addu r13, r13, r8
        lw   r14, 0(r13)
        srl  r15, r14, 24       # op
        srl  r16, r14, 16       # rd
        andi r16, r16, 15
        srl  r17, r14, 8        # rs
        andi r17, r17, 15
        andi r18, r14, 255      # imm
        sll  r19, r15, 2        # handler dispatch
        addu r19, r19, r10
        lw   r20, 0(r19)
        addiu r11, r11, 1       # default: guest pc advances
        # guest register operand addresses
        sll  r21, r16, 2
        addu r21, r21, r9       # &gregs[rd]
        sll  r22, r17, 2
        addu r22, r22, r9       # &gregs[rs]
        jr   r20

g_add:
        lw   r23, 0(r21)
        lw   r24, 0(r22)
        addu r23, r23, r24
        sw   r23, 0(r21)
        b    fetch
g_sub:
        lw   r23, 0(r21)
        lw   r24, 0(r22)
        subu r23, r23, r24
        sw   r23, 0(r21)
        b    fetch
g_and:
        lw   r23, 0(r21)
        lw   r24, 0(r22)
        and  r23, r23, r24
        sw   r23, 0(r21)
        b    fetch
g_or:
        lw   r23, 0(r21)
        lw   r24, 0(r22)
        or   r23, r23, r24
        sw   r23, 0(r21)
        b    fetch
g_xor:
        lw   r23, 0(r21)
        lw   r24, 0(r22)
        xor  r23, r23, r24
        sw   r23, 0(r21)
        b    fetch
g_shift:
        lw   r23, 0(r22)
        andi r24, r18, 7
        sllv r23, r23, r24
        andi r23, r23, 65535    # keep guest values bounded
        sw   r23, 0(r21)
        b    fetch
g_li:
        sw   r18, 0(r21)
        b    fetch
g_branch:                       # guest conditional: taken if reg != 0
        lw   r23, 0(r22)
        beq  r23, r0, fetch     # not taken: fall through
        subu r11, r11, r18      # jump backwards by imm
        bgez r11, fetch
        li   r11, 0
        b    fetch
"""
