"""The external trace format: versioned JSON-lines, strictly loaded.

This is the ingestion front end for traces produced *outside* the
bundled emulator -- hand-built streams, other simulators, converted
gem5 output.  The format is deliberately boring:

* **Line 1 -- header**::

      {"format": "repro-trace", "version": 1,
       "name": "...", "halted": false, "count": 1234}

* **One line per committed instruction**, in commit order::

      {"pc": 12, "op": "lw", "srcs": [4], "dest": 7,
       "mem": 1024, "taken": false, "next": 13}

  ``op`` must be a mnemonic from the ISA opcode table
  (:data:`repro.isa.instructions.OPCODES`); execution class and the
  load/store/branch/jump flags are *derived* from it, never stated,
  so a file cannot contradict the ISA.  ``srcs`` lists architectural
  source registers (1-63; register 0 is never a true dependence),
  ``dest`` is the destination register or ``null``, ``mem`` is the
  byte address for loads/stores (``null`` otherwise), and ``next`` is
  the static index of the following dynamic instruction.

The loader (:func:`load_trace`) validates everything it can --
header shape, version, opcode, register ranges, memory-operand
rules, control-flow consistency (``next`` must chain to the next
line's ``pc``), and the instruction count -- and raises
:class:`TraceFormatError` with the offending line number.  The
exporter (:func:`save_trace`) writes the same format for our own
traces, and round-trips byte-identically.

:data:`TRACE_FORMAT_VERSION` is bumped on any incompatible layout
change; a version-mismatched file is rejected, never misread.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.isa.emulator import DynInst, Trace
from repro.isa.instructions import OPCODES, OpClass

#: Version of the JSON-lines trace layout (header ``version`` field).
TRACE_FORMAT_VERSION = 1

#: Header ``format`` magic.
TRACE_FORMAT_NAME = "repro-trace"

#: Flat architectural register space (int 0-31, fp 32-63).
_NUM_REGS = 64


class TraceFormatError(ValueError):
    """A malformed external trace file (always names the line)."""


def _fail(line_number: int, message: str) -> None:
    raise TraceFormatError(f"line {line_number}: {message}")


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------


def trace_lines(trace: Trace) -> Iterable[str]:
    """The JSONL lines of ``trace`` (header first), without newlines."""
    yield json.dumps({
        "format": TRACE_FORMAT_NAME,
        "version": TRACE_FORMAT_VERSION,
        "name": trace.name,
        "halted": trace.halted,
        "count": len(trace),
    }, sort_keys=True, separators=(",", ":"))
    for inst in trace:
        yield json.dumps({
            "pc": inst.pc,
            "op": inst.opcode,
            "srcs": list(inst.srcs),
            "dest": inst.dest,
            "mem": inst.mem_addr,
            "taken": inst.taken,
            "next": inst.next_pc,
        }, sort_keys=True, separators=(",", ":"))


def save_trace(trace: Trace, path: str | Path) -> Path:
    """Export ``trace`` to ``path`` in the JSONL format."""
    path = Path(path)
    path.write_text("\n".join(trace_lines(trace)) + "\n", encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# strict loading
# ----------------------------------------------------------------------


def _parse_header(line: str) -> dict:
    try:
        header = json.loads(line)
    except ValueError:
        _fail(1, "header is not valid JSON")
    if not isinstance(header, dict):
        _fail(1, "header must be a JSON object")
    if header.get("format") != TRACE_FORMAT_NAME:
        _fail(1, f"not a {TRACE_FORMAT_NAME} file "
                 f"(format={header.get('format')!r})")
    version = header.get("version")
    if version != TRACE_FORMAT_VERSION:
        _fail(1, f"trace format version {version!r} is not supported "
                 f"(this loader reads version {TRACE_FORMAT_VERSION})")
    count = header.get("count")
    if not isinstance(count, int) or count < 0:
        _fail(1, f"count must be a non-negative integer, got {count!r}")
    if not isinstance(header.get("halted"), bool):
        _fail(1, "halted must be a boolean")
    return header


def _parse_record(record: dict, line_number: int, seq: int) -> DynInst:
    for field_name in ("pc", "op", "srcs", "dest", "mem", "taken", "next"):
        if field_name not in record:
            _fail(line_number, f"missing field {field_name!r}")
    pc, next_pc = record["pc"], record["next"]
    if not isinstance(pc, int) or pc < 0:
        _fail(line_number, f"pc must be a non-negative integer, got {pc!r}")
    if not isinstance(next_pc, int) or next_pc < 0:
        _fail(line_number, f"next must be a non-negative integer, "
                           f"got {next_pc!r}")
    opcode = record["op"]
    info = OPCODES.get(opcode)
    if info is None:
        _fail(line_number, f"unknown opcode {opcode!r}")
    op_class = info.op_class
    srcs = record["srcs"]
    if (not isinstance(srcs, list)
            or not all(isinstance(r, int) and 0 < r < _NUM_REGS
                       for r in srcs)):
        _fail(line_number, f"srcs must be registers in 1..{_NUM_REGS - 1}, "
                           f"got {srcs!r}")
    dest = record["dest"]
    if dest is not None and not (isinstance(dest, int)
                                 and 0 < dest < _NUM_REGS):
        _fail(line_number, f"dest must be null or a register in "
                           f"1..{_NUM_REGS - 1}, got {dest!r}")
    mem_addr = record["mem"]
    is_load = op_class is OpClass.LOAD
    is_store = op_class is OpClass.STORE
    if is_load or is_store:
        if not isinstance(mem_addr, int) or mem_addr < 0:
            _fail(line_number, f"{opcode} needs a non-negative mem "
                               f"address, got {mem_addr!r}")
    elif mem_addr is not None:
        _fail(line_number, f"{opcode} must not carry a mem address")
    taken = record["taken"]
    if not isinstance(taken, bool):
        _fail(line_number, f"taken must be a boolean, got {taken!r}")
    is_branch = op_class is OpClass.BRANCH
    is_uncond = op_class is OpClass.JUMP
    if is_uncond and not taken:
        _fail(line_number, f"unconditional {opcode} must be taken")
    if not is_branch and not is_uncond:
        if taken:
            _fail(line_number, f"non-control {opcode} cannot be taken")
        if next_pc != pc + 1:
            _fail(line_number, f"non-control {opcode} must fall through "
                               f"to pc+1, got next={next_pc}")
    elif is_branch and not taken and next_pc != pc + 1:
        _fail(line_number, "a not-taken branch must fall through to pc+1")
    return DynInst(
        seq=seq, pc=pc, opcode=opcode, op_class=op_class,
        srcs=tuple(srcs), dest=dest, mem_addr=mem_addr,
        is_store=is_store, is_load=is_load,
        is_branch=is_branch, is_uncond=is_uncond,
        taken=taken, next_pc=next_pc,
    )


def load_trace_lines(lines: Iterable[str]) -> Trace:
    """Parse and validate JSONL lines into a :class:`Trace`."""
    iterator = iter(lines)
    try:
        first = next(iterator)
    except StopIteration:
        _fail(1, "empty file (expected a header line)")
    header = _parse_header(first)
    insts: list[DynInst] = []
    for line_number, line in enumerate(iterator, start=2):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            _fail(line_number, "not valid JSON")
        if not isinstance(record, dict):
            _fail(line_number, "instruction record must be a JSON object")
        inst = _parse_record(record, line_number, seq=len(insts))
        if insts and insts[-1].next_pc != inst.pc:
            _fail(line_number,
                  f"control-flow break: previous next={insts[-1].next_pc} "
                  f"but this pc={inst.pc}")
        insts.append(inst)
    if len(insts) != header["count"]:
        _fail(1, f"header count={header['count']} but file holds "
                 f"{len(insts)} instructions (truncated or padded?)")
    return Trace(insts=insts, halted=header["halted"],
                 name=str(header.get("name", "")))


def load_trace(path: str | Path) -> Trace:
    """Load and strictly validate one external trace file.

    Raises:
        TraceFormatError: naming the offending line, for any malformed
            header, record, or count mismatch.
        OSError: if the file cannot be read.
    """
    text = Path(path).read_text(encoding="utf-8")
    return load_trace_lines(text.splitlines())


# ----------------------------------------------------------------------
# gem5-style converter (skeleton)
# ----------------------------------------------------------------------

#: gem5 O3 operation classes -> our representative mnemonics.  The
#: mapping is lossy on purpose: the timing model cares about execution
#: class, operands, and control flow, not the exact x86/Arm opcode.
GEM5_CLASS_MAP = {
    "IntAlu": "addu",
    "IntMult": "mult",
    "IntDiv": "div",
    "FloatAdd": "add.s",
    "FloatMult": "mul.s",
    "MemRead": "lw",
    "MemWrite": "sw",
}


def convert_gem5_records(records: Iterable[dict],
                         name: str = "gem5") -> Trace:
    """Convert gem5-style instruction records into a :class:`Trace`.

    This is a converter *skeleton*: it handles the structural mapping
    (op classes, register operands, memory addresses, branch
    outcomes) for records already parsed into dicts with keys
    ``op_class`` (a gem5 O3 class name, or ``"Branch"`` /
    ``"Jump"``), ``pc``, and optionally ``srcs`` / ``dest`` /
    ``addr`` / ``taken`` / ``next_pc``.  Parsing a raw gem5 trace
    file (O3PipeView or ``Exec`` debug output) into such records is
    format-specific and left to the caller.

    Raises:
        TraceFormatError: for an unmapped gem5 operation class.
    """
    insts: list[DynInst] = []
    for seq, record in enumerate(records):
        gem5_class = record.get("op_class", "IntAlu")
        pc = int(record.get("pc", seq))
        if gem5_class == "Branch":
            opcode = "bne"
        elif gem5_class == "Jump":
            opcode = "j"
        else:
            opcode = GEM5_CLASS_MAP.get(gem5_class)
            if opcode is None or opcode not in OPCODES:
                raise TraceFormatError(
                    f"record {seq}: no mapping for gem5 op class "
                    f"{gem5_class!r}")
        info = OPCODES[opcode]
        taken = bool(record.get("taken",
                                info.op_class is OpClass.JUMP))
        next_pc = int(record.get("next_pc", pc + 1))
        insts.append(DynInst(
            seq=seq, pc=pc, opcode=opcode, op_class=info.op_class,
            srcs=tuple(record.get("srcs", ())),
            dest=record.get("dest"),
            mem_addr=record.get("addr"),
            is_store=info.op_class is OpClass.STORE,
            is_load=info.op_class is OpClass.LOAD,
            is_branch=info.op_class is OpClass.BRANCH,
            is_uncond=info.op_class is OpClass.JUMP,
            taken=taken, next_pc=next_pc,
        ))
    return Trace(insts=insts, halted=False, name=name)
