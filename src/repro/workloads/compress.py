"""``compress`` kernel: LZW-style compression.

SPEC'95 129.compress spends its time hashing (prefix, byte) pairs and
probing a code table.  This kernel reproduces that inner loop: it reads
a compressible byte stream, hashes each (prefix, symbol) pair, probes
an open-addressed code table, extends the prefix on a hit, and emits a
code plus a table insert on a miss.  When the code table fills past
half, it is flushed -- exactly as compress resets its dictionary.

Character: data-dependent branches (hit/miss/probe), a serial hash
dependence chain, and loads whose addresses depend on recent
computation.
"""

from __future__ import annotations

from repro.workloads._datagen import skewed_bytes, words_directive

#: Number of input symbols (the kernel loops over them indefinitely).
INPUT_SYMBOLS = 256
#: Code-table slots (power of two for masking).
TABLE_SIZE = 1024


def source() -> str:
    """Assembly source text for the compress kernel."""
    symbols = skewed_bytes(INPUT_SYMBOLS, seed=0xC0DE, alphabet=48)
    table_mask = TABLE_SIZE - 1
    flush_limit = 256 + TABLE_SIZE // 2
    return f"""
# compress: LZW-style hash/probe compression loop
        .data
input:
{words_directive(symbols)}
keys:   .space {4 * TABLE_SIZE}
codes:  .space {4 * TABLE_SIZE}
output: .space 1024

        .text
main:
        la   r8, input          # input base
        li   r9, {INPUT_SYMBOLS} # input length
        li   r10, 0             # input index
        li   r11, 0             # current prefix code
        la   r12, keys
        la   r13, codes
        la   r14, output
        li   r15, 256           # next free code
        li   r16, 0             # output index

outer:
        blt  r10, r9, body      # wrap the input when exhausted
        li   r10, 0
        li   r11, 0
body:
        sll  r17, r10, 2
        addu r17, r17, r8
        lw   r18, 0(r17)        # c = input[i]
        sll  r19, r11, 5        # hash = ((prefix << 5) ^ c) & mask
        xor  r19, r19, r18
        andi r19, r19, {table_mask}
        sll  r20, r11, 8        # key = (prefix << 8) | c
        or   r20, r20, r18

probe:
        sll  r21, r19, 2
        addu r22, r21, r12
        lw   r23, 0(r22)        # key stored at slot
        beq  r23, r20, hit
        beq  r23, r0, miss
        addiu r19, r19, 1       # linear probe to next slot
        andi r19, r19, {table_mask}
        b    probe

hit:
        addu r24, r21, r13
        lw   r11, 0(r24)        # prefix = code[slot]
        addiu r10, r10, 1
        b    outer

miss:
        sw   r20, 0(r22)        # insert key
        addu r24, r21, r13
        sw   r15, 0(r24)        # assign next code
        addiu r15, r15, 1
        sll  r25, r16, 2        # emit current prefix
        addu r25, r25, r14
        sw   r11, 0(r25)
        addiu r16, r16, 1
        andi r16, r16, 255
        move r11, r18           # restart prefix at the symbol
        addiu r10, r10, 1
        li   r5, {flush_limit}  # dictionary full? flush it
        blt  r15, r5, outer

flush:                          # clear the key table, reset codes
        li   r6, 0
        move r7, r12
clear:
        sw   r0, 0(r7)
        addiu r7, r7, 4
        addiu r6, r6, 1
        li   r5, {TABLE_SIZE}
        blt  r6, r5, clear
        li   r15, 256
        li   r11, 0
        b    outer
"""
