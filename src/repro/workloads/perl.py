"""``perl`` kernel: string hashing and associative-array operations.

SPEC'95 134.perl interprets scripts dominated by hash (associative
array) operations: hashing strings byte by byte and walking bucket
chains.  This kernel interns a table of words into a chained hash
table: for each word it computes the classic ``h = h*31 + c`` hash over
the bytes, walks the bucket chain comparing keys, and either bumps the
value on a hit or links a new node on a miss.

Character: serial byte-hash chains (each step needs the previous
hash), pointer chasing through bucket chains, string compare loops
with data-dependent exits.
"""

from __future__ import annotations

from repro.workloads._datagen import Lcg

#: Number of distinct words interned.
WORD_COUNT = 48
#: Hash buckets (power of two).
BUCKETS = 32
#: Maximum nodes in the chain pool.
POOL = 256


def _words() -> list[str]:
    """Deterministic pseudo-words, 3-10 lowercase letters."""
    rng = Lcg(0x9E71)
    words = []
    seen = set()
    while len(words) < WORD_COUNT:
        length = 3 + rng.next_below(8)
        word = "".join(chr(ord("a") + rng.next_below(26)) for _ in range(length))
        if word not in seen:
            seen.add(word)
            words.append(word)
    return words


def source() -> str:
    """Assembly source text for the perl kernel."""
    words = _words()
    string_directives = []
    offsets = []
    cursor = 0
    for word in words:
        offsets.append(cursor)
        string_directives.append(f'    .asciiz "{word}"')
        cursor += len(word) + 1
    strings_block = "\n".join(string_directives)
    offsets_block = "\n".join(
        f"    .word {offset}" for offset in offsets
    )
    bucket_mask = BUCKETS - 1
    return f"""
# perl: string hashing + chained associative array
        .data
strtab:
{strings_block}
        .align 2
offsets:
{offsets_block}
buckets: .space {4 * BUCKETS}
# node pool: each node is 16 bytes [key_ptr, value, next, pad]
pool:    .space {16 * POOL}

        .text
main:
        la   r8, strtab
        la   r9, offsets
        la   r10, buckets
        la   r11, pool
        li   r12, 0             # next free node index
        li   r13, 0             # word cursor

lookup_loop:
        li   r2, {WORD_COUNT}
        blt  r13, r2, pick
        li   r13, 0
pick:
        sll  r14, r13, 2
        addu r14, r14, r9
        lw   r15, 0(r14)        # string offset
        addu r15, r15, r8       # string address
        addiu r13, r13, 3       # stride through the table (coprime)

        # ---- hash the string: h = h*31 + c (serial chain) ----------
        li   r16, 0             # h
        move r17, r15           # byte cursor
hash_loop:
        lb   r18, 0(r17)
        beq  r18, r0, hash_done
        sll  r19, r16, 5
        subu r19, r19, r16      # h*31
        addu r16, r19, r18
        addiu r17, r17, 1
        b    hash_loop
hash_done:
        andi r20, r16, {bucket_mask}
        sll  r20, r20, 2
        addu r20, r20, r10      # &buckets[h]

        # ---- walk the chain ------------------------------------------
        lw   r21, 0(r20)        # node address (0 = empty)
chain_loop:
        beq  r21, r0, insert
        lw   r22, 0(r21)        # node key pointer
        # string compare key vs probe
        move r23, r22
        move r24, r15
cmp_loop:
        lb   r25, 0(r23)
        lb   r4, 0(r24)
        bne  r25, r4, cmp_fail
        beq  r25, r0, found     # both NUL: equal
        addiu r23, r23, 1
        addiu r24, r24, 1
        b    cmp_loop
cmp_fail:
        lw   r21, 8(r21)        # next node
        b    chain_loop

found:
        lw   r5, 4(r21)         # bump the value
        addiu r5, r5, 1
        sw   r5, 4(r21)
        b    lookup_loop

insert:                          # link a new node at the bucket head
        li   r2, {POOL}
        blt  r12, r2, have_node
        li   r12, 0             # pool exhausted: recycle from start
have_node:
        sll  r5, r12, 4
        addu r5, r5, r11        # node address
        addiu r12, r12, 1
        sw   r15, 0(r5)         # key pointer
        li   r6, 1
        sw   r6, 4(r5)          # value = 1
        lw   r6, 0(r20)
        sw   r6, 8(r5)          # next = old head
        sw   r5, 0(r20)         # head = node
        b    lookup_loop
"""
