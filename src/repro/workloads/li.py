"""``li`` kernel: cons-cell list interpreter.

SPEC'95 130.li is a Lisp interpreter: its time goes to walking cons
cells (car/cdr pointer chasing) and mutating them.  This kernel builds
a heap of cons cells whose allocation order is shuffled (so successive
cdr links jump around memory), then repeatedly interprets a work list
per list: sum the cars, measure the length, increment each car, and
destructively reverse the list.

Character: long serial load-load dependence chains (each cdr load
feeds the next address), little ILP -- the workload the paper found
most sensitive to FIFO steering (8% degradation in Figure 13).
"""

from __future__ import annotations

from repro.workloads._datagen import Lcg, words_directive

#: Number of cons cells in the heap (cell 0 is reserved as nil).
HEAP_CELLS = 512
#: Number of lists threaded through the heap.
LIST_COUNT = 12


def _heap_and_heads() -> tuple[list[int], list[int]]:
    """Build the shuffled cons heap.

    Returns:
        (heap words [car0, cdr0, car1, cdr1, ...], head cell indices).
    """
    rng = Lcg(0x11)
    # Shuffle cell indices 1..HEAP_CELLS-1 (Fisher-Yates with the LCG).
    cells = list(range(1, HEAP_CELLS))
    for i in range(len(cells) - 1, 0, -1):
        j = rng.next_below(i + 1)
        cells[i], cells[j] = cells[j], cells[i]
    heap = [0] * (2 * HEAP_CELLS)  # cell 0 = nil
    heads = []
    cursor = 0
    for _list_index in range(LIST_COUNT):
        length = 8 + rng.next_below(24)
        length = min(length, len(cells) - cursor)
        if length <= 0:
            break
        chain = cells[cursor : cursor + length]
        cursor += length
        heads.append(chain[0])
        for position, cell in enumerate(chain):
            heap[2 * cell] = rng.next_below(100)  # car: small value
            next_cell = chain[position + 1] if position + 1 < length else 0
            heap[2 * cell + 1] = next_cell  # cdr: cell index (0 = nil)
    return heap, heads


def source() -> str:
    """Assembly source text for the li kernel."""
    heap, heads = _heap_and_heads()
    return f"""
# li: cons-cell walking and mutation (pointer chasing)
        .data
heap:
{words_directive(heap)}
heads:
{words_directive(heads)}
results: .space {4 * len(heads)}

        .text
main:
        la   r8, heap
        la   r9, heads
        li   r10, {len(heads)}  # list count
        la   r11, results

interp:
        li   r12, 0             # list index
list_loop:
        sll  r13, r12, 2
        addu r13, r13, r9
        lw   r14, 0(r13)        # head cell index

        # --- pass 1: sum cars and count length (serial chase) -------
        li   r15, 0             # sum
        li   r16, 0             # length
        move r17, r14
sum_loop:
        beq  r17, r0, sum_done
        sll  r18, r17, 3        # cell address = heap + 8*cell
        addu r18, r18, r8
        lw   r19, 0(r18)        # car
        addu r15, r15, r19
        addiu r16, r16, 1
        lw   r17, 4(r18)        # cdr -> next cell (serial dependence)
        b    sum_loop
sum_done:
        sll  r20, r12, 2
        addu r20, r20, r11
        sw   r15, 0(r20)        # record the sum

        # --- pass 2: increment each car (chase + store) --------------
        move r17, r14
inc_loop:
        beq  r17, r0, inc_done
        sll  r18, r17, 3
        addu r18, r18, r8
        lw   r19, 0(r18)
        addiu r19, r19, 1
        slti r21, r19, 1000     # keep cars bounded
        bne  r21, r0, inc_store
        li   r19, 0
inc_store:
        sw   r19, 0(r18)
        lw   r17, 4(r18)
        b    inc_loop
inc_done:

        # --- pass 3: destructive reverse ------------------------------
        li   r22, 0             # prev = nil
        move r17, r14           # cursor = head
rev_loop:
        beq  r17, r0, rev_done
        sll  r18, r17, 3
        addu r18, r18, r8
        lw   r23, 4(r18)        # next = cdr
        sw   r22, 4(r18)        # cdr = prev
        move r22, r17           # prev = cursor
        move r17, r23           # cursor = next
        b    rev_loop
rev_done:
        sw   r22, 0(r13)        # new head

        addiu r12, r12, 1
        blt  r12, r10, list_loop
        b    interp
"""
