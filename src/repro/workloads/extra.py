"""Extra workloads written in Mini (not part of the paper's suite).

The paper evaluated seven SPEC'95 integer benchmarks; these additional
kernels are provided for users exploring beyond that set, and they
double as end-to-end exercises of the bundled compiler: they are
written in the Mini language and compiled to the ISA at load time.

* ``dct`` -- an 8x8 integer discrete-cosine-transform sweep (the inner
  kernel of ijpeg-style image compression): multiply-heavy with
  regular access patterns and high ILP.
* ``qsort`` -- repeated in-place quicksort of a shuffled array:
  recursive calls, data-dependent branches, partition loops.
"""

from __future__ import annotations

from repro.isa import Program, Trace, run_to_trace
from repro.lang import compile_source

#: Names of the extra (non-paper) workloads.
EXTRA_WORKLOAD_NAMES: tuple[str, ...] = ("dct", "qsort")

_DCT = """
# 8x8 integer DCT applied across a 32x32 image, repeated forever
array image[1024];
array coeff[64];
array output[1024];

func main() {
    setup();
    while (1) { sweep(); }
    return 0;
}

func setup() {
    var i;
    i = 0;
    while (i < 1024) { image[i] = (i * 31 + 7) % 256; i = i + 1; }
    i = 0;
    while (i < 64) { coeff[i] = (i * 13 + 5) % 16 - 8; i = i + 1; }
    return 0;
}

func sweep() {
    var bx; var by;
    by = 0;
    while (by < 4) {
        bx = 0;
        while (bx < 4) {
            block(bx * 8, by * 8);
            bx = bx + 1;
        }
        by = by + 1;
    }
    return 0;
}

func block(x0, y0) {
    var u; var v; var acc;
    u = 0;
    while (u < 8) {
        v = 0;
        while (v < 8) {
            acc = dot(x0, y0 + u, v);
            output[(y0 + u) * 32 + x0 + v] = acc >> 4;
            v = v + 1;
        }
        u = u + 1;
    }
    return 0;
}

func dot(x0, row, v) {
    var k; var acc;
    acc = 0;
    k = 0;
    while (k < 8) {
        acc = acc + image[row * 32 + x0 + k] * coeff[v * 8 + k];
        k = k + 1;
    }
    return acc;
}
"""

_QSORT = """
# repeated quicksort of a 128-element array reshuffled each round
array data[128];
var seed;

func main() {
    seed = 12345;
    while (1) {
        shuffle();
        quicksort(0, 127);
    }
    return 0;
}

func rand() {
    seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
    return seed >> 8;
}

func shuffle() {
    var i;
    i = 0;
    while (i < 128) { data[i] = rand() % 1000; i = i + 1; }
    return 0;
}

func quicksort(lo, hi) {
    var p;
    if (lo >= hi) { return 0; }
    p = partition(lo, hi);
    quicksort(lo, p - 1);
    quicksort(p + 1, hi);
    return 0;
}

func partition(lo, hi) {
    var pivot; var i; var j; var t;
    pivot = data[hi];
    i = lo;
    j = lo;
    while (j < hi) {
        if (data[j] < pivot) {
            t = data[i]; data[i] = data[j]; data[j] = t;
            i = i + 1;
        }
        j = j + 1;
    }
    t = data[i]; data[i] = data[hi]; data[hi] = t;
    return i;
}
"""

_SOURCES = {"dct": _DCT, "qsort": _QSORT}
_PROGRAM_CACHE: dict[str, Program] = {}
_TRACE_CACHE: dict[tuple[str, int], Trace] = {}


def build_extra_program(name: str) -> Program:
    """Compile (and cache) an extra workload by name.

    Raises:
        KeyError: for an unknown extra-workload name.
    """
    if name not in _SOURCES:
        known = ", ".join(EXTRA_WORKLOAD_NAMES)
        raise KeyError(f"unknown extra workload {name!r} (known: {known})")
    if name not in _PROGRAM_CACHE:
        _PROGRAM_CACHE[name] = compile_source(_SOURCES[name])
    return _PROGRAM_CACHE[name]


def get_extra_trace(name: str, max_instructions: int = 30_000) -> Trace:
    """Execute (and cache) an extra workload to its dynamic trace."""
    key = (name, max_instructions)
    if key not in _TRACE_CACHE:
        _TRACE_CACHE[key] = run_to_trace(
            build_extra_program(name), max_instructions=max_instructions, name=name
        )
    return _TRACE_CACHE[key]
