"""The synthetic workload zoo: named scenarios across three axes.

The paper's seven kernels sit in a realistic but narrow band of
behaviour.  The zoo sweeps the :class:`~repro.workloads.synthetic.
SyntheticConfig` space along the three axes the dependence-based
microarchitecture is sensitive to, giving every consumer of the
workload registry (campaigns, the frontier, the fuzzer, the service)
controlled points well outside that band:

* **ILP** (``zoo_ilp_*``): mean dependence distance from serial
  pointer-chase chains to wide independent streams.
* **Branch entropy** (``zoo_br_*``): branch density crossed with
  taken-probability, from perfectly learnable to coin-flip.
* **Memory footprint** (``zoo_mem_*``): address pools from
  cache-resident to far beyond it, plus load/store-skewed mixes.

Each scenario is a length-free :class:`SyntheticConfig`; the budget
requested at trace time becomes ``length``.  Scenarios auto-register
as kind ``synthetic`` when this module is imported (the
:mod:`repro.workloads` package does so), with their canonical config
as cache-key content -- editing a scenario's parameters invalidates
its cached campaign cells just as editing a kernel's source does.
"""

from __future__ import annotations

import dataclasses

from repro.workloads.registry import (
    KIND_SYNTHETIC,
    Workload,
    canonical_synthetic_content,
    register_workload,
)
from repro.workloads.synthetic import SyntheticConfig, synthetic_trace

#: The zoo: name -> (description, length-free SyntheticConfig).
#: Seeds are distinct so no two scenarios share a random stream.
ZOO_SCENARIOS: dict[str, tuple[str, SyntheticConfig]] = {
    # --- ILP axis ------------------------------------------------------
    "zoo_ilp_serial": (
        "near-serial dependence chains (distance ~1.3)",
        SyntheticConfig(seed=101, mean_dependence_distance=1.3),
    ),
    "zoo_ilp_moderate": (
        "moderate ILP (distance ~4, the kernel band)",
        SyntheticConfig(seed=102, mean_dependence_distance=4.0),
    ),
    "zoo_ilp_wide": (
        "wide independent streams (distance ~16)",
        SyntheticConfig(seed=103, mean_dependence_distance=16.0),
    ),
    # --- branch-entropy axis ------------------------------------------
    "zoo_br_predictable": (
        "dense but strongly biased branches (95% taken)",
        SyntheticConfig(seed=111, branch_fraction=0.25,
                        branch_taken_probability=0.95),
    ),
    "zoo_br_coin": (
        "coin-flip branches at kernel density",
        SyntheticConfig(seed=112, branch_fraction=0.15,
                        branch_taken_probability=0.5),
    ),
    "zoo_br_dense_coin": (
        "dense coin-flip branches (mispredict-bound)",
        SyntheticConfig(seed=113, branch_fraction=0.30,
                        branch_taken_probability=0.5),
    ),
    "zoo_br_sparse": (
        "long branch-free runs (3% branches)",
        SyntheticConfig(seed=114, branch_fraction=0.03,
                        branch_taken_probability=0.7),
    ),
    # --- memory-footprint axis ----------------------------------------
    "zoo_mem_hot": (
        "memory-heavy over a 64-word hot set",
        SyntheticConfig(seed=121, load_fraction=0.30,
                        store_fraction=0.15, memory_words=64),
    ),
    "zoo_mem_warm": (
        "memory-heavy over a 4K-word pool",
        SyntheticConfig(seed=122, load_fraction=0.30,
                        store_fraction=0.15, memory_words=4096),
    ),
    "zoo_mem_cold": (
        "memory-heavy over a 64K-word pool",
        SyntheticConfig(seed=123, load_fraction=0.30,
                        store_fraction=0.15, memory_words=65536),
    ),
    "zoo_loadheavy": (
        "load-dominated mix (45% loads)",
        SyntheticConfig(seed=124, load_fraction=0.45,
                        store_fraction=0.05),
    ),
    "zoo_storeheavy": (
        "store-dominated mix (35% stores)",
        SyntheticConfig(seed=125, load_fraction=0.10,
                        store_fraction=0.35),
    ),
    # --- static-footprint axis ----------------------------------------
    "zoo_tiny_body": (
        "8-slot loop body (tight kernel, hot predictor sites)",
        SyntheticConfig(seed=131, body_size=8),
    ),
    "zoo_big_body": (
        "512-slot loop body (large static footprint)",
        SyntheticConfig(seed=132, body_size=512),
    ),
}

#: Zoo workload names in presentation order.
ZOO_NAMES: tuple[str, ...] = tuple(ZOO_SCENARIOS)


def zoo_config(name: str, length: int | None = None) -> SyntheticConfig:
    """The scenario's generator config, optionally with a length."""
    _, config = ZOO_SCENARIOS[name]
    if length is None:
        return config
    return dataclasses.replace(config, length=length)


def _make_loader(name: str):
    def loader(max_instructions: int):
        trace = synthetic_trace(zoo_config(name, length=max_instructions))
        trace.name = name
        return trace
    return loader


def _register_zoo() -> None:
    for name, (description, config) in ZOO_SCENARIOS.items():
        register_workload(Workload(
            name, KIND_SYNTHETIC, description, _make_loader(name),
            content=lambda config=config: canonical_synthetic_content(config),
        ))


_register_zoo()
