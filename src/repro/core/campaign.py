"""Parallel experiment campaign engine with result caching.

The paper's Figures 13-17 each sweep a (machine x workload) grid; the
seed drove every cell serially in one process.  This module turns a
grid into a *campaign*: independent simulation cells fanned out across
a ``multiprocessing`` pool, backed by a content-addressed on-disk
result cache, with per-cell timeouts, bounded retry, and graceful
degradation to in-process serial execution when workers misbehave.

Determinism is the contract everything else hangs on:

* a cell is fully described by (machine config, workload name,
  instruction budget) and the simulator is deterministic, so results
  are transportable -- across worker processes and across runs via
  the cache -- as :meth:`~repro.uarch.stats.SimStats.to_dict`
  payloads (the audited serialisation path, versioned by
  :data:`repro.core.results_io.FORMAT_VERSION`);
* cells are merged back into the
  :class:`~repro.core.experiments.ExperimentResult` in presentation
  order, never completion order, so ``jobs=1``, ``jobs=N``, and a
  warm-cache run all serialise byte-identically.

Cache layout: one ``<sha256>.json`` file per cell under the cache
root, where the key hashes the canonicalised machine config, the
workload name *and content identity* (fingerprint + workload-layer
version), the instruction budget, and the stats format version.
Unreadable, truncated, or version-mismatched files are discarded and
recomputed, never trusted and never fatal.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import multiprocessing
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.core import results_io
from repro.core.experiments import DEFAULT_INSTRUCTIONS, ExperimentResult
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import CampaignProfile, record_simulation_metrics
from repro.obs.progress import Heartbeat
from repro.uarch.compile import COMPILE_VERSION
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import simulate
from repro.uarch.preanalysis import PREANALYSIS_VERSION
from repro.uarch.scheduler import strategy_identity
from repro.uarch.stats import SimStats
from repro.workloads import WORKLOAD_NAMES, get_trace
from repro.workloads.registry import workload_identity

#: Default bounded retry count for failed or timed-out cells.
DEFAULT_RETRIES = 1


# ----------------------------------------------------------------------
# cells and cache keys
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignCell:
    """One unit of campaign work: a machine on a workload."""

    machine: str
    config: MachineConfig
    workload: str
    max_instructions: int

    @property
    def label(self) -> str:
        """Stable display/progress label for this cell."""
        return f"{self.machine}/{self.workload}"


def _canonical(value: object) -> Any:
    """Recursively reduce a config value to JSON-stable primitives.

    Dataclasses become sorted-key dicts, enums their wire values --
    the same choices the stats serialiser makes -- so the fingerprint
    is independent of Python hash seeds and field declaration order.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            name: _canonical(getattr(value, name))
            for name in sorted(f.name for f in dataclasses.fields(value))
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalise {type(value).__name__} for hashing")


def config_fingerprint(config: MachineConfig) -> dict:
    """A machine config as canonical, JSON-ready primitives."""
    return _canonical(config)


def cache_key(
    config: MachineConfig,
    workload: str,
    max_instructions: int,
    stats_format: int = results_io.FORMAT_VERSION,
) -> str:
    """Content address of one cell's result.

    The key covers everything that determines the simulation output:
    the full machine configuration, the workload, the instruction
    budget, the stats serialisation version (so a format bump
    invalidates old entries instead of misreading them), the trace
    pre-analysis version (so a change to the derived arrays the
    optimized simulator consumes invalidates old entries too), the
    scheduler/regfile strategy identity with behaviour versions
    (so two configs differing only in strategy -- or a strategy whose
    timing behaviour changed -- can never collide), and the
    workload's *content identity* -- its fingerprint, kind, and
    :data:`~repro.workloads.registry.WORKLOAD_VERSION` -- so editing
    a kernel's source (or a zoo scenario's parameters) can never
    silently reuse stats cached under the same name.
    """
    payload = {
        "config": config_fingerprint(config),
        "workload": workload,
        "workload_identity": workload_identity(workload),
        "max_instructions": max_instructions,
        "stats_format": stats_format,
        "preanalysis": PREANALYSIS_VERSION,
        "compile": COMPILE_VERSION,
        "strategies": strategy_identity(config),
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    )
    return digest.hexdigest()


def grid_fingerprint(
    configs: dict[str, MachineConfig],
    workloads: tuple[str, ...],
    max_instructions: int,
) -> str:
    """Content address of a whole campaign grid.

    The run ledger stores this as the campaign's ``config_hash``: two
    invocations share it exactly when they sweep the same machines,
    workloads, and budget under the same serialisation versions.
    """
    payload = {
        "configs": {
            name: config_fingerprint(config)
            for name, config in configs.items()
        },
        "workloads": list(workloads),
        "workload_identities": {
            name: workload_identity(name) for name in workloads
        },
        "max_instructions": max_instructions,
        "stats_format": results_io.FORMAT_VERSION,
        "preanalysis": PREANALYSIS_VERSION,
        "compile": COMPILE_VERSION,
        "strategies": {
            name: strategy_identity(config)
            for name, config in configs.items()
        },
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    )
    return digest.hexdigest()


class ResultCache:
    """Content-addressed on-disk cache of per-cell ``SimStats``.

    Entries are written atomically (temp file + rename) so a killed
    worker can never leave a half-written entry that a later run
    trusts; anything unreadable is deleted and recomputed.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, key: str) -> Path:
        """Filesystem location of one cache entry."""
        return self.root / f"{key}.json"

    def load(self, key: str) -> SimStats | None:
        """The cached stats for ``key``, or None.

        Corrupted, truncated, or version-mismatched entries are
        discarded (unlinked) and reported as misses.
        """
        path = self.path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            stats = results_io.stats_from_payload(json.loads(text))
        except (ValueError, KeyError, TypeError):
            path.unlink(missing_ok=True)
            return None
        return stats

    def store(self, key: str, stats: SimStats) -> None:
        """Atomically persist one cell's stats under ``key``."""
        path = self.path(key)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(
                results_io.stats_payload(stats), indent=1, sort_keys=True
            ),
            encoding="utf-8",
        )
        tmp.replace(path)


# ----------------------------------------------------------------------
# cell execution
# ----------------------------------------------------------------------


def simulate_cell(cell: CampaignCell) -> dict:
    """Simulate one cell; the default (picklable) worker entry point.

    Returns the result as transport primitives rather than a live
    :class:`SimStats` so the pool path, the serial path, and the cache
    all move the exact same payload::

        {"stats": SimStats.to_dict(), "seconds": wall,
         "metrics": MetricsSnapshot.to_dict()}

    The worker accumulates its cell into a private
    :class:`~repro.obs.metrics.MetricsRegistry` and ships the frozen
    snapshot home; the parent folds worker snapshots together in
    deterministic presentation order, so campaign-level metrics are
    exact, not sampled, and identical for ``jobs=1`` and ``jobs=N``.
    """
    start = time.perf_counter()
    trace = get_trace(cell.workload, cell.max_instructions)
    stats = simulate(cell.config, trace, mode="compiled")
    seconds = time.perf_counter() - start
    registry = MetricsRegistry()
    record_simulation_metrics(registry, stats, seconds,
                              machine=cell.machine, workload=cell.workload)
    return {
        "stats": stats.to_dict(),
        "seconds": seconds,
        "metrics": registry.snapshot().to_dict(),
    }


def _run_serially(
    cell: CampaignCell,
    runner: Callable[[CampaignCell], dict],
    retries: int,
    profile: CampaignProfile,
) -> dict:
    """Run one cell in-process, retrying on failure."""
    attempts = retries + 1
    for attempt in range(attempts):
        try:
            return runner(cell)
        except Exception:
            if attempt + 1 >= attempts:
                raise
            profile.retries += 1
    raise AssertionError("unreachable")


def _collect_parallel(
    cells: list[Any],
    jobs: int,
    runner: Callable[[Any], dict],
    timeout: float | None,
    retries: int,
    profile: Any,
    progress: Callable[[str], None] | None,
    heartbeat: Callable[[Any, dict], None] | None = None,
) -> dict[int, dict]:
    """Fan cells out over a process pool; returns index -> payload.

    Failure handling, per cell: up to ``retries`` resubmissions on a
    worker error or timeout, then graceful degradation -- the cell is
    simulated serially in this process, which cannot time out and
    surfaces any real error directly.

    ``heartbeat(cell, payload)``, when given, fires once per completed
    cell *as it completes* (completion order, unlike the deterministic
    result merge) -- this is the live-telemetry tap the ``--progress``
    meter drinks from.
    """
    payloads: dict[int, dict] = {}

    def completed(cell: Any, payload: dict) -> None:
        if heartbeat:
            heartbeat(cell, payload)

    try:
        pool_cm = multiprocessing.get_context().Pool(processes=jobs)
    except (OSError, ValueError):
        # No usable worker pool on this host (e.g. missing semaphore
        # support): degrade the whole campaign to serial.
        for index, cell in enumerate(cells):
            profile.serial_fallbacks += 1
            payloads[index] = _run_serially(cell, runner, retries, profile)
            completed(cell, payloads[index])
        return payloads
    with pool_cm as pool:
        pending = {
            index: pool.apply_async(runner, (cell,))
            for index, cell in enumerate(cells)
        }
        attempts = {index: 1 for index in pending}
        while pending:
            index, handle = next(iter(pending.items()))
            cell = cells[index]
            try:
                payloads[index] = handle.get(timeout)
                del pending[index]
                if progress:
                    progress(f"{cell.label}: simulated "
                             f"({payloads[index]['seconds']:.2f}s)")
                completed(cell, payloads[index])
                continue
            except multiprocessing.TimeoutError:
                profile.timeouts += 1
                failure = f"timed out after {timeout}s"
            except Exception as error:
                failure = f"failed: {error}"
            if attempts[index] <= retries:
                attempts[index] += 1
                profile.retries += 1
                if progress:
                    progress(f"{cell.label}: {failure}; retrying "
                             f"({attempts[index] - 1}/{retries})")
                pending[index] = pool.apply_async(runner, (cell,))
            else:
                del pending[index]
                profile.serial_fallbacks += 1
                if progress:
                    progress(f"{cell.label}: {failure}; falling back to "
                             "serial execution")
                payloads[index] = _run_serially(cell, runner, 0, profile)
                completed(cell, payloads[index])
    return payloads


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------


def run_campaign(
    configs: dict[str, MachineConfig],
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    max_instructions: int = DEFAULT_INSTRUCTIONS,
    name: str = "campaign",
    jobs: int = 1,
    cache: ResultCache | None = None,
    timeout: float | None = None,
    retries: int = DEFAULT_RETRIES,
    progress: Callable[[str], None] | None = None,
    runner: Callable[[CampaignCell], dict] | None = None,
    heartbeat: Callable[[Heartbeat], None] | None = None,
) -> tuple[ExperimentResult, CampaignProfile]:
    """Run a (machine x workload) grid and return result + profile.

    Args:
        configs: Machines in presentation order (name -> config).
        workloads: Benchmark names in presentation order.
        max_instructions: Dynamic-instruction budget per cell.
        name: Experiment identifier stored on the result.
        jobs: Worker processes; 1 means in-process serial execution.
        cache: Optional :class:`ResultCache`; hits skip simulation.
        timeout: Per-cell seconds before a parallel attempt is
            abandoned (None = wait forever).  Serial execution never
            times out.
        retries: Bounded resubmissions per cell before degrading to
            serial execution.
        progress: Optional per-cell callback (human-readable lines).
        runner: Cell executor override (tests inject failures here);
            defaults to :func:`simulate_cell`.
        heartbeat: Optional live-telemetry callback receiving one
            :class:`~repro.obs.progress.Heartbeat` per completed cell
            in *completion* order (cache hits included) -- what the
            CLI's ``--progress`` meter consumes.

    Returns:
        ``(result, profile)`` -- the deterministic
        :class:`ExperimentResult` (cell order fixed by ``configs`` /
        ``workloads``, independent of completion order) and the
        :class:`~repro.obs.profiling.CampaignProfile` of cache hits,
        retries, timeouts, fallbacks, and throughput.

    Raises:
        ValueError: for a non-positive ``jobs`` or negative
            ``retries``.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    runner = runner or simulate_cell
    profile = CampaignProfile(jobs=jobs)
    started = time.perf_counter()

    cells = [
        CampaignCell(machine, config, workload, max_instructions)
        for machine, config in configs.items()
        for workload in workloads
    ]

    # Cache probe (deterministic order; hits never hit the pool).
    stats_by_index: dict[int, SimStats] = {}
    misses: list[tuple[int, CampaignCell]] = []
    keys: dict[int, str] = {}
    for index, cell in enumerate(cells):
        if cache is not None:
            keys[index] = cache_key(
                cell.config, cell.workload, cell.max_instructions
            )
            hit = cache.load(keys[index])
            if hit is not None:
                stats_by_index[index] = hit
                profile.note_cell(cell.label, 0.0, hit.committed,
                                  source="cache")
                if progress:
                    progress(f"{cell.label}: cache hit")
                if heartbeat:
                    heartbeat(Heartbeat(label=cell.label, source="cache"))
                continue
        misses.append((index, cell))

    def beat(cell: CampaignCell, payload: dict) -> None:
        if heartbeat:
            heartbeat(Heartbeat(
                label=cell.label,
                source="simulated",
                seconds=payload.get("seconds", 0.0),
                instructions=payload.get("stats", {}).get("committed", 0),
            ))

    # Execute the misses.
    if misses:
        miss_cells = [cell for _, cell in misses]
        if jobs > 1:
            payloads = _collect_parallel(
                miss_cells, jobs, runner, timeout, retries, profile,
                progress, heartbeat=beat,
            )
        else:
            payloads = {}
            for position, cell in enumerate(miss_cells):
                payloads[position] = _run_serially(
                    cell, runner, retries, profile
                )
                if progress:
                    progress(f"{cell.label}: simulated "
                             f"({payloads[position]['seconds']:.2f}s)")
                beat(cell, payloads[position])
        # Fold worker metrics in *presentation* order -- the misses
        # list is already sorted by cell index, so the merged snapshot
        # is byte-identical for jobs=1, jobs=N, and any completion
        # order (MetricsSnapshot.merge_all makes even adversarial
        # orderings equal; this keeps the live registry exact too).
        for position, (index, cell) in enumerate(misses):
            payload = payloads[position]
            stats = SimStats.from_dict(payload["stats"])
            stats_by_index[index] = stats
            profile.note_cell(cell.label, payload["seconds"],
                              stats.committed)
            profile.merge_worker_snapshot(payload.get("metrics"))
            if cache is not None:
                cache.store(keys[index], stats)

    # Deterministic merge: presentation order, never completion order.
    result = ExperimentResult(
        name=name, machine_names=list(configs), workloads=list(workloads)
    )
    for index, cell in enumerate(cells):
        result.stats.setdefault(cell.machine, {})[cell.workload] = (
            stats_by_index[index]
        )
    profile.wall_seconds = time.perf_counter() - started
    return result, profile
