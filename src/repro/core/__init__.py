"""High-level API: machine factories, experiments, and speedups.

* :mod:`repro.core.machines` -- factory functions for every machine
  configuration the paper simulates (Figures 13, 15, and 17).
* :mod:`repro.core.experiments` -- experiment drivers that run the
  machines over the benchmark suite and package the results.
* :mod:`repro.core.speedup` -- the Section 5.5 clock-adjusted
  performance comparison.
* :mod:`repro.core.design` -- :class:`DesignPoint`: a machine at a
  technology node, the unit of the joint IPC x clock design space.
* :mod:`repro.core.frontier` -- the complexity-effectiveness
  frontier, including the all-shapes x all-technologies sweep.
* :mod:`repro.core.aggregate` -- the shared mean reductions.
"""

from repro.core.machines import (
    baseline_8way,
    clustered_dependence_8way,
    clustered_exec_steer_8way,
    clustered_least_loaded_8way,
    clustered_modulo_8way,
    clustered_random_8way,
    clustered_windows_8way,
    dependence_based_8way,
    fig17_machines,
)
from repro.core.experiments import (
    ExperimentResult,
    run_fig13,
    run_fig15,
    run_fig17,
    run_machines,
)
from repro.core.speedup import clock_adjusted_speedup, speedup_summary
from repro.core.aggregate import arithmetic_mean, geometric_mean, mean_ipc
from repro.core.design import (
    DesignPoint,
    SweptDesign,
    design_points,
    sweep_design_points,
)
from repro.core.frontier import (
    FrontierPoint,
    conventional_frontier,
    dependence_based_point,
    design_space_frontier,
    format_frontier,
    issue_width_frontier,
)

__all__ = [
    "baseline_8way",
    "dependence_based_8way",
    "clustered_dependence_8way",
    "clustered_windows_8way",
    "clustered_exec_steer_8way",
    "clustered_modulo_8way",
    "clustered_least_loaded_8way",
    "clustered_random_8way",
    "fig17_machines",
    "ExperimentResult",
    "run_machines",
    "run_fig13",
    "run_fig15",
    "run_fig17",
    "clock_adjusted_speedup",
    "speedup_summary",
    "FrontierPoint",
    "conventional_frontier",
    "dependence_based_point",
    "design_space_frontier",
    "issue_width_frontier",
    "format_frontier",
    "DesignPoint",
    "SweptDesign",
    "design_points",
    "sweep_design_points",
    "geometric_mean",
    "arithmetic_mean",
    "mean_ipc",
]
