"""Machine configurations for every design point in the paper.

All machines share the Table 3 resources: 8-wide fetch/decode/issue,
retire width 16, 128 in-flight instructions, 120 int + 120 fp physical
registers, 8 symmetric single-cycle functional units, gshare, and the
32 KB 2-way data cache.  They differ only in how the issue buffers are
organised and how instructions are steered:

=====================================  =====================================
Machine                                 Paper design point
=====================================  =====================================
:func:`baseline_8way`                   Figure 13/15/17 baseline ("ideal"):
                                        one 64-entry window, single-cycle
                                        bypass everywhere.
:func:`dependence_based_8way`           Figure 13: 8 FIFOs x 8 deep, one
                                        cluster (all bypasses one cycle).
:func:`clustered_dependence_8way`       Figures 15/17: 2 x 4-way clusters,
                                        4 FIFOs each, 2-cycle inter-cluster
                                        bypass.
:func:`clustered_windows_8way`          Figure 17: two 32-entry windows,
                                        dispatch-driven steering.
:func:`clustered_exec_steer_8way`       Figure 17: central 64-entry window,
                                        execution-driven steering.
:func:`clustered_random_8way`           Figure 17: two 32-entry windows,
                                        random steering.
=====================================  =====================================
"""

from __future__ import annotations

from typing import Any

from repro.uarch.config import ClusterConfig, MachineConfig, SteeringPolicy


def baseline_8way(window_size: int = 64, **overrides: Any) -> MachineConfig:
    """The conventional 8-way, 64-entry-window superscalar (Table 3).

    This is also Figure 17's "1-cluster, 1 window" ideal machine:
    single-cycle bypass between all functional units.
    """
    return MachineConfig(
        name=f"baseline-8way-{window_size}w",
        clusters=(ClusterConfig(window_size=window_size, fu_count=8),),
        steering=SteeringPolicy.NONE,
        **overrides,
    )


def dependence_based_8way(
    fifo_count: int = 8, fifo_depth: int = 8, **overrides: Any
) -> MachineConfig:
    """Figure 13's dependence-based machine: one cluster of FIFOs.

    8 FIFOs of 8 entries, dispatch-driven steering (Section 5.1), all
    bypasses single cycle -- isolating the effect of FIFO issue from
    the effect of clustering.
    """
    return MachineConfig(
        name=f"dependence-8way-{fifo_count}x{fifo_depth}",
        clusters=(
            ClusterConfig(fifo_count=fifo_count, fifo_depth=fifo_depth, fu_count=8),
        ),
        steering=SteeringPolicy.FIFO_DISPATCH,
        **overrides,
    )


def clustered_dependence_8way(
    fifos_per_cluster: int = 4,
    fifo_depth: int = 8,
    inter_cluster_bypass_cycles: int = 2,
    **overrides: Any,
) -> MachineConfig:
    """The 2 x 4-way clustered dependence-based machine (Section 5.4).

    Two clusters of four FIFOs and four functional units each; local
    bypasses take one cycle, inter-cluster bypasses two.
    """
    cluster = ClusterConfig(
        fifo_count=fifos_per_cluster, fifo_depth=fifo_depth, fu_count=4
    )
    return MachineConfig(
        name="2x4way-fifos-dispatch",
        clusters=(cluster, cluster),
        steering=SteeringPolicy.FIFO_DISPATCH,
        inter_cluster_bypass_cycles=inter_cluster_bypass_cycles,
        **overrides,
    )


def clustered_windows_8way(
    window_size: int = 32, inter_cluster_bypass_cycles: int = 2, **overrides: Any
) -> MachineConfig:
    """Two 32-entry windows with dispatch-driven steering (5.6.2).

    The steering heuristic treats each window as eight conceptual
    FIFOs of four slots, but instructions issue from any slot.
    """
    cluster = ClusterConfig(window_size=window_size, fu_count=4)
    return MachineConfig(
        name="2x4way-windows-dispatch",
        clusters=(cluster, cluster),
        steering=SteeringPolicy.WINDOW_DISPATCH,
        inter_cluster_bypass_cycles=inter_cluster_bypass_cycles,
        **overrides,
    )


def clustered_exec_steer_8way(
    inter_cluster_bypass_cycles: int = 2, **overrides: Any
) -> MachineConfig:
    """Central 64-entry window, execution-driven steering (5.6.1).

    Instructions wait in one shared window and are assigned to the
    cluster that provides their operands first, at issue time.
    """
    cluster = ClusterConfig(window_size=32, fu_count=4)
    return MachineConfig(
        name="2x4way-1window-exec",
        clusters=(cluster, cluster),
        steering=SteeringPolicy.EXEC_DRIVEN,
        inter_cluster_bypass_cycles=inter_cluster_bypass_cycles,
        **overrides,
    )


def clustered_random_8way(
    window_size: int = 32, inter_cluster_bypass_cycles: int = 2, **overrides: Any
) -> MachineConfig:
    """Two 32-entry windows with random steering (5.6.3 baseline)."""
    cluster = ClusterConfig(window_size=window_size, fu_count=4)
    return MachineConfig(
        name="2x4way-windows-random",
        clusters=(cluster, cluster),
        steering=SteeringPolicy.RANDOM,
        inter_cluster_bypass_cycles=inter_cluster_bypass_cycles,
        **overrides,
    )


def clustered_modulo_8way(
    window_size: int = 32, inter_cluster_bypass_cycles: int = 2, **overrides: Any
) -> MachineConfig:
    """Ablation: round-robin (modulo) steering over two windows.

    Dependence-blind like random steering but perfectly load balanced,
    separating the two reasons random steering loses.
    """
    cluster = ClusterConfig(window_size=window_size, fu_count=4)
    return MachineConfig(
        name="2x4way-windows-modulo",
        clusters=(cluster, cluster),
        steering=SteeringPolicy.MODULO,
        inter_cluster_bypass_cycles=inter_cluster_bypass_cycles,
        **overrides,
    )


def clustered_least_loaded_8way(
    window_size: int = 32, inter_cluster_bypass_cycles: int = 2, **overrides: Any
) -> MachineConfig:
    """Ablation: emptiest-window steering over two windows."""
    cluster = ClusterConfig(window_size=window_size, fu_count=4)
    return MachineConfig(
        name="2x4way-windows-least-loaded",
        clusters=(cluster, cluster),
        steering=SteeringPolicy.LEAST_LOADED,
        inter_cluster_bypass_cycles=inter_cluster_bypass_cycles,
        **overrides,
    )


def load_tracking_8way(window_size: int = 64, **overrides: Any) -> MachineConfig:
    """Baseline geometry with the ``load_delay_tracking`` scheduler.

    Diavastos & Carlson (arXiv:2109.03112): broadcast wakeup is
    replaced by predicted ready times with real-time load-delay
    feedback.  Consumers of a load predicted still in flight are held
    out of select (``StallCause.SCHED_WAIT``); in exchange the window
    logic drops its CAM, which the ``ldt_window_logic_ps`` delay model
    converts into a faster clock.
    """
    return MachineConfig(
        name=f"ldt-8way-{window_size}w",
        clusters=(ClusterConfig(window_size=window_size, fu_count=8),),
        steering=SteeringPolicy.NONE,
        scheduler="load_delay_tracking",
        **overrides,
    )


def ports_limited_8way(
    read_ports: int = 4, window_size: int = 64, **overrides: Any
) -> MachineConfig:
    """Baseline geometry with a read-port-limited register file.

    Los (arXiv:2502.00147): the fully-ported file (16 read ports for
    8-way issue) is cut to ``read_ports`` per cluster; issue slots
    that would oversubscribe the ports stall that cycle
    (``StallCause.REGFILE_PORT``), and the regfile delay model sees
    the smaller port count.
    """
    return MachineConfig(
        name=f"ports-8way-{read_ports}r-{window_size}w",
        clusters=(ClusterConfig(window_size=window_size, fu_count=8),),
        steering=SteeringPolicy.NONE,
        regfile="ports_limited",
        regfile_read_ports=read_ports,
        **overrides,
    )


def fig17_machines() -> dict[str, MachineConfig]:
    """The five Figure 17 machines, keyed by the paper's legend."""
    return {
        "1-cluster.1window": baseline_8way(),
        "2-cluster.FIFOs.dispatch_steer": clustered_dependence_8way(),
        "2-cluster.windows.dispatch_steer": clustered_windows_8way(),
        "2-cluster.1window.exec_steer": clustered_exec_steer_8way(),
        "2-cluster.windows.random_steer": clustered_random_8way(),
    }


#: Every machine shape in the repo, keyed by a short stable name.
#: This is the single source the test suites (``tests/machines.py``)
#: and the fuzzer's config sampler (:mod:`repro.verify.sampler`) draw
#: from, so "all machine shapes" means the same thing everywhere.
MACHINE_REGISTRY = {
    "baseline": baseline_8way,
    "dependence": dependence_based_8way,
    "clustered": clustered_dependence_8way,
    "clustered_windows": clustered_windows_8way,
    "exec_steer": clustered_exec_steer_8way,
    "random": clustered_random_8way,
    "modulo": clustered_modulo_8way,
    "least_loaded": clustered_least_loaded_8way,
    "load_tracking": load_tracking_8way,
    "ports_limited": ports_limited_8way,
}


def machine_registry() -> dict[str, MachineConfig]:
    """Fresh default-parameter configs for every registered shape."""
    return {name: factory() for name, factory in MACHINE_REGISTRY.items()}
