"""The complexity-effectiveness frontier: IPC x clock vs window size.

The paper's framing: growing the issue window raises IPC but slows
the clock (wakeup + select delay grows with window size), so *true*
performance -- instructions per second -- peaks somewhere, and a
microarchitecture that breaks the trade-off (the dependence-based
design) can sit above the whole curve.  This module sweeps the
conventional design space and places the dependence-based machine on
the same axes; :func:`design_space_frontier` extends the sweep to
every registered machine shape at every technology node.

All clock arithmetic is delegated: each frontier point is a
:class:`~repro.core.design.DesignPoint` whose clock comes from
:mod:`repro.delay.critical_path` (the slower of rename and window
logic; bypass is excluded from the bound because the paper's remedy
for it -- clustering -- is evaluated separately, the same accounting
Section 5.5 uses).  IPC comes from the campaign engine with full
result caching, so a warm-cache sweep re-runs zero simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.core.design import DesignPoint, SweptDesign, sweep_design_points
from repro.core.machines import (
    baseline_8way,
    dependence_based_8way,
    machine_registry,
)
from repro.delay import critical_path as cp
from repro.obs.profiling import CampaignProfile
from repro.technology.params import TECH_018, TECHNOLOGIES, Technology
from repro.uarch.config import MachineConfig
from repro.workloads import WORKLOAD_NAMES

#: Window sizes swept for the conventional curve.
DEFAULT_WINDOW_SIZES = (8, 16, 32, 64, 128)


@dataclass(frozen=True)
class FrontierPoint:
    """One design point on the IPC-vs-clock trade-off."""

    label: str
    window_size: int
    mean_ipc: float
    clock_ps: float
    #: Technology node label (empty for single-technology sweeps).
    tech: str = ""
    #: Label of the structure that sets the clock (empty if unknown).
    bounded_by: str = ""

    @property
    def frequency_ghz(self) -> float:
        """Clock frequency implied by the critical delay."""
        return 1000.0 / self.clock_ps

    @property
    def bips(self) -> float:
        """Billions of instructions per second: IPC x frequency."""
        return self.mean_ipc * self.frequency_ghz


def conventional_clock_ps(
    tech: Technology, issue_width: int, window_size: int
) -> float:
    """Cycle bound for a conventional window machine.

    Thin wrapper: builds the config and reads its critical path (see
    module docstring on bypass).
    """
    config = baseline_8way(window_size=window_size, issue_width=issue_width)
    return cp.clock_ps(config, tech)


def dependence_clock_ps(
    tech: Technology,
    issue_width: int,
    physical_registers: int = 128,
    fifo_count: int = 8,
) -> float:
    """Cycle bound for the dependence-based machine.

    Thin wrapper over the critical path of the FIFO config;
    ``physical_registers`` is the reservation-table tag space (one
    ready bit per in-flight destination, i.e. ``max_in_flight``).
    """
    config = dependence_based_8way(
        fifo_count=fifo_count,
        issue_width=issue_width,
        max_in_flight=physical_registers,
    )
    return cp.clock_ps(config, tech)


def _to_point(swept: SweptDesign, label: str, window_size: int) -> FrontierPoint:
    path = swept.point.critical_path()
    return FrontierPoint(
        label=label,
        window_size=window_size,
        mean_ipc=swept.mean_ipc,
        clock_ps=path.clock_ps,
        tech=swept.point.tech.name,
        bounded_by=path.bounding_structure.label,
    )


def _sweep_one_tech(
    configs: Mapping[str, MachineConfig],
    tech: Technology,
    workloads: tuple[str, ...],
    max_instructions: int,
    name: str,
    **campaign_options: Any,
) -> list[SweptDesign]:
    points = [
        (label, DesignPoint(config=config, tech=tech))
        for label, config in configs.items()
    ]
    swept, _profile = sweep_design_points(
        points,
        workloads=workloads,
        max_instructions=max_instructions,
        name=name,
        **campaign_options,
    )
    return swept


def conventional_frontier(
    tech: Technology = TECH_018,
    issue_width: int = 8,
    window_sizes: tuple[int, ...] = DEFAULT_WINDOW_SIZES,
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    max_instructions: int = 10_000,
    **campaign_options: Any,
) -> list[FrontierPoint]:
    """Sweep conventional window sizes; IPC from simulation, clock
    from the critical-path layer.  Extra keyword arguments (``jobs``,
    ``cache``, ...) reach :func:`~repro.core.campaign.run_campaign`."""
    configs = {
        f"window-{window_size}": baseline_8way(
            window_size=window_size, issue_width=issue_width
        )
        for window_size in window_sizes
    }
    swept = _sweep_one_tech(
        configs, tech, workloads, max_instructions,
        name="conventional-frontier", **campaign_options,
    )
    return [
        _to_point(item, label=f"window-{window_size}", window_size=window_size)
        for window_size, item in zip(window_sizes, swept)
    ]


def dependence_based_point(
    tech: Technology = TECH_018,
    issue_width: int = 8,
    fifo_count: int = 8,
    fifo_depth: int = 8,
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    max_instructions: int = 10_000,
    **campaign_options: Any,
) -> FrontierPoint:
    """The dependence-based machine on the same axes."""
    config = dependence_based_8way(
        fifo_count=fifo_count, fifo_depth=fifo_depth, issue_width=issue_width
    )
    label = f"dependence-{fifo_count}x{fifo_depth}"
    swept = _sweep_one_tech(
        {label: config}, tech, workloads, max_instructions,
        name="dependence-point", **campaign_options,
    )
    return _to_point(
        swept[0], label=label, window_size=fifo_count * fifo_depth
    )


def issue_width_frontier(
    tech: Technology = TECH_018,
    issue_widths: tuple[int, ...] = (2, 4, 8),
    window_per_width: int = 8,
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    max_instructions: int = 10_000,
    **campaign_options: Any,
) -> list[FrontierPoint]:
    """Sweep the other complexity axis: issue width.

    Window size scales with width (the paper pairs 4-way/32 with
    8-way/64, i.e. eight entries per issue slot), as do the machine's
    fetch/dispatch/retire widths and functional units.  IPC gains
    flatten while window-logic delay keeps growing -- the "brainiac"
    half of the paper's introduction.
    """
    from repro.uarch.config import ClusterConfig, SteeringPolicy

    configs = {}
    for width in issue_widths:
        window_size = window_per_width * width
        configs[f"{width}-way/{window_size}"] = MachineConfig(
            name=f"conventional-{width}way",
            fetch_width=width,
            dispatch_width=width,
            issue_width=width,
            retire_width=2 * width,
            clusters=(ClusterConfig(window_size=window_size, fu_count=width),),
            steering=SteeringPolicy.NONE,
        )
    swept = _sweep_one_tech(
        configs, tech, workloads, max_instructions,
        name="issue-width-frontier", **campaign_options,
    )
    return [
        _to_point(item, label=label, window_size=config.total_capacity)
        for (label, config), item in zip(configs.items(), swept)
    ]


def design_space_frontier(
    techs: Sequence[Technology] = TECHNOLOGIES,
    machines: Mapping[str, MachineConfig] | None = None,
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    max_instructions: int = 10_000,
    **campaign_options: Any,
) -> tuple[list[FrontierPoint], CampaignProfile]:
    """Sweep every registered machine shape at every technology node.

    Each distinct config is simulated once over the workload grid (IPC
    is technology-independent); with a warm cache the whole sweep
    re-runs zero simulations.  Returns the BIPS frontier points, in
    technology-major order, and the campaign profile (whose
    ``simulated_cells`` count the CI smoke test asserts on).
    """
    if machines is None:
        machines = machine_registry()
    points = [
        (f"{name}@{tech.name}", DesignPoint(config=config, tech=tech))
        for tech in techs
        for name, config in machines.items()
    ]
    swept, profile = sweep_design_points(
        points,
        workloads=workloads,
        max_instructions=max_instructions,
        name="design-space-frontier",
        **campaign_options,
    )
    frontier = [
        _to_point(
            item,
            label=item.label,
            window_size=item.point.config.total_capacity,
        )
        for item in swept
    ]
    return frontier, profile


def format_frontier(points: list[FrontierPoint]) -> str:
    """Aligned text table of frontier points.

    Adds technology and clock-bound columns when the points carry
    them (multi-technology sweeps).
    """
    show_tech = any(point.tech for point in points)
    width = max([20] + [len(point.label) for point in points])
    header = f"{'design':>{width}s}"
    if show_tech:
        header += f"{'tech':>8s}"
    header += f"{'IPC':>8s}{'clock ps':>10s}{'GHz':>8s}{'BIPS':>8s}"
    if show_tech:
        header += f"  {'bounded by'}"
    lines = [header]
    for point in points:
        line = f"{point.label:>{width}s}"
        if show_tech:
            line += f"{point.tech:>8s}"
        line += (
            f"{point.mean_ipc:8.3f}{point.clock_ps:10.1f}"
            f"{point.frequency_ghz:8.2f}{point.bips:8.2f}"
        )
        if show_tech and point.bounded_by:
            line += f"  {point.bounded_by}"
        lines.append(line)
    return "\n".join(lines)
