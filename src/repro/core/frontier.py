"""The complexity-effectiveness frontier: IPC x clock vs window size.

The paper's framing: growing the issue window raises IPC but slows
the clock (wakeup + select delay grows with window size), so *true*
performance -- instructions per second -- peaks somewhere, and a
microarchitecture that breaks the trade-off (the dependence-based
design) can sit above the whole curve.  This module sweeps the
conventional design space and places the dependence-based machine on
the same axes.

Clock model: the cycle is bounded by the slower of rename and window
logic (wakeup + select).  Bypass delay is excluded from the bound
because the paper's remedy for it -- clustering -- applies to both
kinds of machine and is evaluated separately (Figures 15/17); this is
the same accounting Section 5.5 uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.machines import baseline_8way, dependence_based_8way
from repro.delay.rename import RenameDelayModel
from repro.delay.reservation import ReservationTableDelayModel
from repro.delay.select import SelectionDelayModel
from repro.delay.wakeup import WakeupDelayModel
from repro.technology.params import TECH_018, Technology
from repro.uarch.pipeline import simulate
from repro.workloads import WORKLOAD_NAMES, get_trace

#: Window sizes swept for the conventional curve.
DEFAULT_WINDOW_SIZES = (8, 16, 32, 64, 128)


@dataclass(frozen=True)
class FrontierPoint:
    """One design point on the IPC-vs-clock trade-off."""

    label: str
    window_size: int
    mean_ipc: float
    clock_ps: float

    @property
    def frequency_ghz(self) -> float:
        """Clock frequency implied by the critical delay."""
        return 1000.0 / self.clock_ps

    @property
    def bips(self) -> float:
        """Billions of instructions per second: IPC x frequency."""
        return self.mean_ipc * self.frequency_ghz


def _geometric_mean(values: list[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def conventional_clock_ps(tech: Technology, issue_width: int, window_size: int) -> float:
    """Cycle bound for a conventional window machine: the slower of
    rename and wakeup+select (see module docstring on bypass)."""
    rename = RenameDelayModel(tech).total(issue_width)
    window_logic = WakeupDelayModel(tech).total(issue_width, window_size)
    window_logic += SelectionDelayModel(tech).total(window_size)
    return max(rename, window_logic)


def dependence_clock_ps(
    tech: Technology,
    issue_width: int,
    physical_registers: int = 128,
    fifo_count: int = 8,
) -> float:
    """Cycle bound for the dependence-based machine: the slower of
    rename and its reservation-table wakeup + heads-only select."""
    rename = RenameDelayModel(tech).total(issue_width)
    wakeup = ReservationTableDelayModel(tech).total(issue_width, physical_registers)
    select = SelectionDelayModel(tech).total(fifo_count)
    return max(rename, wakeup + select)


def _mean_ipc(config, workloads, max_instructions) -> float:
    ipcs = [
        simulate(config, get_trace(name, max_instructions)).ipc
        for name in workloads
    ]
    return _geometric_mean(ipcs)


def conventional_frontier(
    tech: Technology = TECH_018,
    issue_width: int = 8,
    window_sizes: tuple[int, ...] = DEFAULT_WINDOW_SIZES,
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    max_instructions: int = 10_000,
) -> list[FrontierPoint]:
    """Sweep conventional window sizes; IPC from simulation, clock
    from the delay models."""
    points = []
    for window_size in window_sizes:
        config = baseline_8way(window_size=window_size, issue_width=issue_width)
        mean_ipc = _mean_ipc(config, workloads, max_instructions)
        clock = conventional_clock_ps(tech, issue_width, window_size)
        points.append(
            FrontierPoint(
                label=f"window-{window_size}",
                window_size=window_size,
                mean_ipc=mean_ipc,
                clock_ps=clock,
            )
        )
    return points


def dependence_based_point(
    tech: Technology = TECH_018,
    issue_width: int = 8,
    fifo_count: int = 8,
    fifo_depth: int = 8,
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    max_instructions: int = 10_000,
) -> FrontierPoint:
    """The dependence-based machine on the same axes."""
    config = dependence_based_8way(fifo_count=fifo_count, fifo_depth=fifo_depth)
    mean_ipc = _mean_ipc(config, workloads, max_instructions)
    clock = dependence_clock_ps(tech, issue_width, fifo_count=fifo_count)
    return FrontierPoint(
        label=f"dependence-{fifo_count}x{fifo_depth}",
        window_size=fifo_count * fifo_depth,
        mean_ipc=mean_ipc,
        clock_ps=clock,
    )


def issue_width_frontier(
    tech: Technology = TECH_018,
    issue_widths: tuple[int, ...] = (2, 4, 8),
    window_per_width: int = 8,
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    max_instructions: int = 10_000,
) -> list[FrontierPoint]:
    """Sweep the other complexity axis: issue width.

    Window size scales with width (the paper pairs 4-way/32 with
    8-way/64, i.e. eight entries per issue slot), as do the machine's
    fetch/dispatch/retire widths and functional units.  IPC gains
    flatten while window-logic delay keeps growing -- the "brainiac"
    half of the paper's introduction.
    """
    from repro.uarch.config import ClusterConfig, MachineConfig, SteeringPolicy

    points = []
    for width in issue_widths:
        window_size = window_per_width * width
        config = MachineConfig(
            name=f"conventional-{width}way",
            fetch_width=width,
            dispatch_width=width,
            issue_width=width,
            retire_width=2 * width,
            clusters=(ClusterConfig(window_size=window_size, fu_count=width),),
            steering=SteeringPolicy.NONE,
        )
        mean_ipc = _mean_ipc(config, workloads, max_instructions)
        clock = conventional_clock_ps(tech, width, window_size)
        points.append(
            FrontierPoint(
                label=f"{width}-way/{window_size}",
                window_size=window_size,
                mean_ipc=mean_ipc,
                clock_ps=clock,
            )
        )
    return points


def format_frontier(points: list[FrontierPoint]) -> str:
    """Aligned text table of frontier points."""
    lines = [
        f"{'design':>20s}{'IPC':>8s}{'clock ps':>10s}{'GHz':>8s}{'BIPS':>8s}"
    ]
    for point in points:
        lines.append(
            f"{point.label:>20s}{point.mean_ipc:8.3f}{point.clock_ps:10.1f}"
            f"{point.frequency_ghz:8.2f}{point.bips:8.2f}"
        )
    return "\n".join(lines)
