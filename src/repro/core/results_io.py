"""Persist experiment results as JSON.

Long simulation campaigns are worth keeping: this module round-trips
:class:`~repro.core.experiments.ExperimentResult` (including full
per-run statistics) through plain JSON so results can be archived,
diffed, and re-rendered without re-simulating.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.experiments import ExperimentResult
from repro.uarch.stats import SimStats

#: Format marker for forward compatibility.  Version 2 added the
#: cycle-attribution fields (``active_cycles``/``stall_cycles``);
#: version 3 added the design-point clock annotation (``clock_ps``,
#: from which ``frequency_ghz``/``bips`` derive).  Older files still
#: load (the new fields default to zero).
FORMAT_VERSION = 3

_READABLE_VERSIONS = (1, 2, 3)


def stats_to_dict(stats: SimStats) -> dict:
    """Convert one run's statistics to JSON-ready primitives.

    Thin alias for :meth:`SimStats.to_dict` -- the single audited
    serialisation path -- kept for API stability.
    """
    return stats.to_dict()


def stats_from_dict(payload: dict) -> SimStats:
    """Inverse of :func:`stats_to_dict` (see :meth:`SimStats.from_dict`)."""
    return SimStats.from_dict(payload)


def stats_payload(stats: SimStats) -> dict:
    """Wrap one run's stats as a self-describing, versioned document.

    This is the on-disk format of a single campaign cache cell (see
    :mod:`repro.core.campaign`): the ``SimStats.to_dict`` payload under
    a ``kind`` marker and the module :data:`FORMAT_VERSION`, so stale
    or foreign files are rejected by :func:`stats_from_payload` rather
    than misread.
    """
    return {
        "format_version": FORMAT_VERSION,
        "kind": "repro-cell-stats",
        "stats": stats_to_dict(stats),
    }


def stats_from_payload(payload: dict) -> SimStats:
    """Inverse of :func:`stats_payload`.

    Raises:
        ValueError: if the payload is not a cell-stats document of a
            readable format version.
    """
    if not isinstance(payload, dict):
        raise ValueError("cell payload must be a JSON object")
    if payload.get("kind") != "repro-cell-stats":
        raise ValueError(f"not a cell-stats payload: {payload.get('kind')!r}")
    if payload.get("format_version") not in _READABLE_VERSIONS:
        raise ValueError(
            f"unsupported cell-stats format {payload.get('format_version')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    return stats_from_dict(payload["stats"])


def result_to_dict(result: ExperimentResult) -> dict:
    """Convert an experiment result to JSON-ready primitives."""
    return {
        "format_version": FORMAT_VERSION,
        "name": result.name,
        "machine_names": list(result.machine_names),
        "workloads": list(result.workloads),
        "stats": {
            machine: {
                workload: stats_to_dict(stats)
                for workload, stats in per_workload.items()
            }
            for machine, per_workload in result.stats.items()
        },
    }


def result_from_dict(payload: dict) -> ExperimentResult:
    """Inverse of :func:`result_to_dict`.

    Raises:
        ValueError: on a missing or unsupported format version.
    """
    version = payload.get("format_version")
    if version not in _READABLE_VERSIONS:
        raise ValueError(
            f"unsupported result format {version!r} (expected {FORMAT_VERSION})"
        )
    result = ExperimentResult(
        name=payload["name"],
        machine_names=list(payload["machine_names"]),
        workloads=list(payload["workloads"]),
    )
    result.stats = {
        machine: {
            workload: stats_from_dict(stats)
            for workload, stats in per_workload.items()
        }
        for machine, per_workload in payload["stats"].items()
    }
    return result


def save_result(result: ExperimentResult, path: str | Path) -> None:
    """Write an experiment result to a JSON file."""
    Path(path).write_text(
        json.dumps(result_to_dict(result), indent=2, sort_keys=True),
        encoding="utf-8",
    )


def load_result(path: str | Path) -> ExperimentResult:
    """Read an experiment result from a JSON file.

    Raises:
        ValueError: for malformed or version-mismatched files.
        OSError: if the file cannot be read.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ValueError(f"{path} is not valid JSON: {error}") from error
    return result_from_dict(payload)
