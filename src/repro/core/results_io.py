"""Persist experiment results as JSON.

Long simulation campaigns are worth keeping: this module round-trips
:class:`~repro.core.experiments.ExperimentResult` (including full
per-run statistics) through plain JSON so results can be archived,
diffed, and re-rendered without re-simulating.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.experiments import ExperimentResult
from repro.uarch.stats import SimStats

#: Format marker for forward compatibility.
FORMAT_VERSION = 1

_STAT_FIELDS = (
    "machine",
    "workload",
    "committed",
    "cycles",
    "fetched",
    "branch_lookups",
    "branch_hits",
    "mispredicts",
    "cache_accesses",
    "cache_misses",
    "store_forwards",
    "inter_cluster_bypasses",
    "occupancy_sum",
)


def stats_to_dict(stats: SimStats) -> dict:
    """Convert one run's statistics to JSON-ready primitives."""
    payload = {field: getattr(stats, field) for field in _STAT_FIELDS}
    payload["dispatch_stalls"] = dict(stats.dispatch_stalls)
    # JSON object keys must be strings.
    payload["issue_histogram"] = {
        str(k): v for k, v in stats.issue_histogram.items()
    }
    return payload


def stats_from_dict(payload: dict) -> SimStats:
    """Inverse of :func:`stats_to_dict`."""
    stats = SimStats(**{field: payload[field] for field in _STAT_FIELDS})
    stats.dispatch_stalls = dict(payload.get("dispatch_stalls", {}))
    stats.issue_histogram = {
        int(k): v for k, v in payload.get("issue_histogram", {}).items()
    }
    return stats


def result_to_dict(result: ExperimentResult) -> dict:
    """Convert an experiment result to JSON-ready primitives."""
    return {
        "format_version": FORMAT_VERSION,
        "name": result.name,
        "machine_names": list(result.machine_names),
        "workloads": list(result.workloads),
        "stats": {
            machine: {
                workload: stats_to_dict(stats)
                for workload, stats in per_workload.items()
            }
            for machine, per_workload in result.stats.items()
        },
    }


def result_from_dict(payload: dict) -> ExperimentResult:
    """Inverse of :func:`result_to_dict`.

    Raises:
        ValueError: on a missing or unsupported format version.
    """
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format {version!r} (expected {FORMAT_VERSION})"
        )
    result = ExperimentResult(
        name=payload["name"],
        machine_names=list(payload["machine_names"]),
        workloads=list(payload["workloads"]),
    )
    result.stats = {
        machine: {
            workload: stats_from_dict(stats)
            for workload, stats in per_workload.items()
        }
        for machine, per_workload in payload["stats"].items()
    }
    return result


def save_result(result: ExperimentResult, path: str | Path) -> None:
    """Write an experiment result to a JSON file."""
    Path(path).write_text(
        json.dumps(result_to_dict(result), indent=2, sort_keys=True),
        encoding="utf-8",
    )


def load_result(path: str | Path) -> ExperimentResult:
    """Read an experiment result from a JSON file.

    Raises:
        ValueError: for malformed or version-mismatched files.
        OSError: if the file cannot be read.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ValueError(f"{path} is not valid JSON: {error}") from error
    return result_from_dict(payload)
