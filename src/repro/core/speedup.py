"""Clock-adjusted performance comparison (Section 5.5).

IPC alone understates the dependence-based design: its simplified
wakeup/select logic supports a faster clock.  The paper combines the
Figure 15 IPC results with the Table 2 delay ratio -- at 0.18 um the
window-based 8-way machine's clock is bounded by its 8-way/64-entry
window logic (724 ps) while the clustered dependence-based machine is
bounded by at most a 4-way/32-entry cluster's window logic (578 ps) --
for a 1.25x clock advantage, yielding overall speedups of 10-22%
(mean 16%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.aggregate import arithmetic_mean
from repro.core.experiments import ExperimentResult, run_fig15
from repro.delay.summary import clock_ratio_dependence_based
from repro.technology.params import TECH_018, Technology


@dataclass(frozen=True)
class SpeedupSummary:
    """Clock-adjusted speedups of the dependence-based machine."""

    tech: Technology
    clock_ratio: float
    per_workload: dict[str, float]

    @property
    def mean(self) -> float:
        """Arithmetic-mean speedup across workloads."""
        return arithmetic_mean(self.per_workload.values())

    @property
    def min(self) -> float:
        return min(self.per_workload.values())

    @property
    def max(self) -> float:
        return max(self.per_workload.values())

    def format_table(self) -> str:
        """Aligned text table of per-benchmark speedups."""
        lines = [f"clock ratio (f_dep/f_win) = {self.clock_ratio:.3f}"]
        for workload, speedup in self.per_workload.items():
            lines.append(f"  {workload:10s} {100 * (speedup - 1):+6.1f}%")
        lines.append(f"  {'mean':10s} {100 * (self.mean - 1):+6.1f}%")
        return "\n".join(lines)


def clock_adjusted_speedup(
    result: ExperimentResult,
    dependence_machine: str,
    window_machine: str,
    tech: Technology = TECH_018,
) -> SpeedupSummary:
    """Combine relative IPC with the Table 2 clock ratio.

    Args:
        result: An experiment containing both machines (e.g. fig15).
        dependence_machine: Name of the dependence-based machine row.
        window_machine: Name of the window-based reference row.
        tech: Technology whose delay models set the clock ratio.

    Returns:
        Per-workload speedups ``(IPC_dep / IPC_win) * (f_dep / f_win)``.
    """
    ratio = clock_ratio_dependence_based(tech)
    relative = result.relative_ipc(dependence_machine, window_machine)
    return SpeedupSummary(
        tech=tech,
        clock_ratio=ratio,
        per_workload={w: ipc_ratio * ratio for w, ipc_ratio in relative.items()},
    )


def speedup_summary(
    max_instructions: int = 20_000, tech: Technology = TECH_018
) -> SpeedupSummary:
    """One-shot Section 5.5 reproduction: run Figure 15 and adjust by
    the clock ratio."""
    result = run_fig15(max_instructions=max_instructions)
    return clock_adjusted_speedup(
        result,
        dependence_machine="2-cluster dependence-based",
        window_machine="window-based 8-way",
        tech=tech,
    )
