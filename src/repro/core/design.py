"""DesignPoint: a machine configuration at a technology node.

The paper's figure of merit is joint -- IPC (from the timing
simulator) times clock (from the delay models).  A
:class:`DesignPoint` is the unit that carries both halves: a frozen
(:class:`~repro.uarch.config.MachineConfig`,
:class:`~repro.technology.params.Technology`) pair whose clock comes
from the single :mod:`repro.delay.critical_path` layer, and whose IPC
comes from sweeping the point over the campaign engine.

:func:`sweep_design_points` is the campaign integration: it runs every
*distinct* machine config exactly once over the workload grid (IPC is
technology-independent, so one simulation serves all three technology
nodes) with full result caching, then annotates each design point's
statistics with its clock -- so a warm-cache design-space sweep
re-runs zero simulations.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.experiments import DEFAULT_INSTRUCTIONS
from repro.delay.critical_path import CriticalPath, critical_path
from repro.obs.profiling import CampaignProfile
from repro.technology.params import TECHNOLOGIES, Technology
from repro.uarch.config import MachineConfig
from repro.uarch.stats import SimStats
from repro.workloads import WORKLOAD_NAMES


@dataclass(frozen=True)
class DesignPoint:
    """One point of the joint design space: a machine at a technology.

    The clock side is fully derived: every delay-model geometry comes
    from ``config`` through :func:`repro.delay.critical_path.critical_path`.
    """

    config: MachineConfig
    tech: Technology

    @property
    def label(self) -> str:
        """Stable display label, e.g. ``baseline-8way-64w@0.18um``."""
        return f"{self.config.name}@{self.tech.name}"

    def critical_path(self) -> CriticalPath:
        """The full per-structure delay breakdown of this point."""
        return critical_path(self.config, self.tech)

    @property
    def clock_ps(self) -> float:
        """Supported clock period (ps): Section 5.5's cycle bound."""
        return self.critical_path().clock_ps

    @property
    def frequency_ghz(self) -> float:
        """Clock frequency implied by :attr:`clock_ps`."""
        return 1000.0 / self.clock_ps

    @property
    def bounding_structure(self) -> str:
        """Label of the structure that sets the clock."""
        return self.critical_path().bounding_structure.label

    def bips(self, mean_ipc: float) -> float:
        """Billions of instructions per second at a simulated IPC."""
        return mean_ipc * self.frequency_ghz

    def annotate(self, stats: SimStats) -> SimStats:
        """A copy of ``stats`` carrying this point's clock.

        The copy's :attr:`~repro.uarch.stats.SimStats.frequency_ghz`
        and :attr:`~repro.uarch.stats.SimStats.bips` become
        meaningful; the input (which may be shared across technology
        nodes through the campaign cache) is left untouched.
        """
        annotated = dataclasses.replace(stats)
        annotated.clock_ps = self.clock_ps
        return annotated


def design_points(
    configs: dict[str, MachineConfig],
    techs: Sequence[Technology] = TECHNOLOGIES,
) -> list[tuple[str, DesignPoint]]:
    """The cross product (label, DesignPoint) of configs x technologies."""
    return [
        (f"{name}@{tech.name}", DesignPoint(config=config, tech=tech))
        for tech in techs
        for name, config in configs.items()
    ]


@dataclass(frozen=True)
class SweptDesign:
    """One design point with its simulated, clock-annotated results."""

    label: str
    point: DesignPoint
    mean_ipc: float
    #: Per-workload statistics, each annotated with the point's clock.
    stats: dict[str, SimStats]

    @property
    def clock_ps(self) -> float:
        return self.point.clock_ps

    @property
    def bips(self) -> float:
        """The joint metric: mean IPC x clock frequency."""
        return self.point.bips(self.mean_ipc)


def sweep_design_points(
    points: Sequence[tuple[str, DesignPoint]],
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    max_instructions: int = DEFAULT_INSTRUCTIONS,
    name: str = "design-space",
    **campaign_options: Any,
) -> tuple[list[SweptDesign], CampaignProfile]:
    """Simulate and clock-annotate a set of design points.

    Distinct machine configs are simulated exactly once over the
    workload grid on the campaign engine (IPC does not depend on the
    technology node), then every design point sharing a config reuses
    those statistics with its own clock annotation.  Extra keyword
    arguments (``jobs``, ``cache``, ``timeout``, ``retries``,
    ``progress``, ``runner``) are forwarded to
    :func:`~repro.core.campaign.run_campaign`.

    Returns:
        ``(swept, profile)`` in the order of ``points``.
    """
    # Imported here, not at module top: campaign builds on
    # experiments.ExperimentResult, which this module also imports.
    from repro.core.aggregate import mean_ipc
    from repro.core.campaign import run_campaign

    unique_configs: dict[MachineConfig, str] = {}
    for _label, point in points:
        unique_configs.setdefault(point.config, f"design-{len(unique_configs)}")

    grid = {sim_name: config for config, sim_name in unique_configs.items()}
    result, profile = run_campaign(
        grid,
        workloads=workloads,
        max_instructions=max_instructions,
        name=name,
        **campaign_options,
    )
    # Sweep-shape gauges: how much config sharing the distinct-config
    # dedup bought (the frontier CLI and the run ledger surface these).
    profile.registry.gauge(
        "design_points", "Design points in the sweep (configs x techs)"
    ).set(len(points))
    profile.registry.gauge(
        "design_distinct_configs",
        "Distinct machine configs actually simulated",
    ).set(len(unique_configs))

    swept: list[SweptDesign] = []
    for label, point in points:
        sim_name = unique_configs[point.config]
        per_workload = result.stats[sim_name]
        swept.append(
            SweptDesign(
                label=label,
                point=point,
                mean_ipc=mean_ipc(per_workload),
                stats={
                    workload: point.annotate(stats)
                    for workload, stats in per_workload.items()
                },
            )
        )
    return swept, profile
