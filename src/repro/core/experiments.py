"""Experiment drivers for the paper's simulation figures.

Each ``run_figNN`` function simulates the machines that figure
compares over the seven-benchmark suite and returns an
:class:`ExperimentResult` whose rows mirror the figure's bars.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core import machines as machine_factories
from repro.core.aggregate import arithmetic_mean
from repro.uarch.config import MachineConfig
from repro.uarch.stats import SimStats
from repro.workloads import WORKLOAD_NAMES

#: Default dynamic instructions per benchmark.  The paper ran up to
#: 0.5 B; these kernels reach steady state within a few thousand.
DEFAULT_INSTRUCTIONS = 20_000


@dataclass
class ExperimentResult:
    """Results of one experiment: stats per (machine, workload).

    Attributes:
        name: Experiment identifier (e.g. ``"fig13"``).
        machine_names: Machines in presentation order.
        workloads: Benchmarks in presentation order.
        stats: ``stats[machine_name][workload]``.
    """

    name: str
    machine_names: list[str]
    workloads: list[str]
    stats: dict[str, dict[str, SimStats]] = field(default_factory=dict)

    def ipc(self, machine_name: str, workload: str) -> float:
        """IPC of one cell."""
        return self.stats[machine_name][workload].ipc

    def ipc_table(self) -> dict[str, dict[str, float]]:
        """IPC per machine per workload."""
        return {
            machine: {w: self.stats[machine][w].ipc for w in self.workloads}
            for machine in self.machine_names
        }

    def relative_ipc(self, machine_name: str, reference: str) -> dict[str, float]:
        """Per-workload IPC of ``machine_name`` relative to ``reference``."""
        return {
            w: self.ipc(machine_name, w) / self.ipc(reference, w)
            for w in self.workloads
        }

    def mean_relative_ipc(self, machine_name: str, reference: str) -> float:
        """Arithmetic-mean relative IPC across workloads."""
        ratios = self.relative_ipc(machine_name, reference)
        return arithmetic_mean(ratios.values())

    def bypass_frequency(self, machine_name: str) -> dict[str, float]:
        """Per-workload inter-cluster bypass frequency (Figure 17)."""
        return {
            w: self.stats[machine_name][w].inter_cluster_bypass_frequency
            for w in self.workloads
        }

    def format_table(self, metric: str = "ipc") -> str:
        """Render the result as an aligned text table."""
        header = f"{'machine':36s}" + "".join(f"{w:>10s}" for w in self.workloads)
        lines = [header]
        for machine in self.machine_names:
            cells = []
            for workload in self.workloads:
                stats = self.stats[machine][workload]
                if metric == "ipc":
                    cells.append(f"{stats.ipc:10.3f}")
                elif metric == "bypass":
                    cells.append(f"{stats.inter_cluster_bypass_frequency * 100:9.1f}%")
                else:
                    raise ValueError(f"unknown metric {metric!r}")
            lines.append(f"{machine:36s}" + "".join(cells))
        return "\n".join(lines)


def figure_configs(which: str) -> dict[str, MachineConfig]:
    """The (name -> config) grid of one of the simulated figures.

    Args:
        which: ``"fig13"``, ``"fig15"``, or ``"fig17"``.

    Raises:
        KeyError: for an unknown figure name.
    """
    grids = {
        "fig13": lambda: {
            "baseline": machine_factories.baseline_8way(),
            "dependence-based": machine_factories.dependence_based_8way(),
        },
        "fig15": lambda: {
            "window-based 8-way": machine_factories.baseline_8way(),
            "2-cluster dependence-based":
                machine_factories.clustered_dependence_8way(),
        },
        "fig17": machine_factories.fig17_machines,
    }
    if which not in grids:
        known = ", ".join(sorted(grids))
        raise KeyError(f"unknown figure {which!r} (known: {known})")
    return grids[which]()


def run_machines(
    configs: dict[str, MachineConfig],
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    max_instructions: int = DEFAULT_INSTRUCTIONS,
    name: str = "custom",
    **campaign_options: Any,
) -> ExperimentResult:
    """Simulate a set of machines over a set of benchmarks.

    Runs on the campaign engine (:mod:`repro.core.campaign`); by
    default serially in-process, exactly as the seed did.  Extra
    keyword arguments (``jobs``, ``cache``, ``timeout``, ``retries``,
    ``progress``) are forwarded to
    :func:`~repro.core.campaign.run_campaign` -- cell results are
    deterministic, so every setting yields the identical result.
    """
    # Imported here, not at module top: campaign builds on this
    # module's ExperimentResult, so the top-level import runs the
    # other way around.
    from repro.core.campaign import run_campaign

    result, _ = run_campaign(
        configs,
        workloads=workloads,
        max_instructions=max_instructions,
        name=name,
        **campaign_options,
    )
    return result


def run_fig13(
    max_instructions: int = DEFAULT_INSTRUCTIONS, **campaign_options: Any
) -> ExperimentResult:
    """Figure 13: baseline window vs. single-cluster dependence-based.

    Paper result: the dependence-based machine extracts similar
    parallelism -- within 5% for five of seven benchmarks, worst case
    8% (li).
    """
    return run_machines(
        figure_configs("fig13"),
        max_instructions=max_instructions,
        name="fig13",
        **campaign_options,
    )


def run_fig15(
    max_instructions: int = DEFAULT_INSTRUCTIONS, **campaign_options: Any
) -> ExperimentResult:
    """Figure 15: baseline vs. the 2x4-way clustered dependence-based
    machine with 2-cycle inter-cluster bypasses.

    Paper result: nearly as effective; worst cases m88ksim (-12%) and
    compress (-9%) due to inter-cluster bypass latency.
    """
    return run_machines(
        figure_configs("fig15"),
        max_instructions=max_instructions,
        name="fig15",
        **campaign_options,
    )


def run_fig17(
    max_instructions: int = DEFAULT_INSTRUCTIONS, **campaign_options: Any
) -> ExperimentResult:
    """Figure 17: the five clustered organisations (IPC and
    inter-cluster bypass frequency).

    Paper result: random steering degrades 17-26%; execution-driven
    steering is nearly ideal (max 6% loss) but needs a central window;
    both dispatch-steered machines are competitive; bypass frequency
    anti-correlates with IPC.
    """
    return run_machines(
        machine_factories.fig17_machines(),
        max_instructions=max_instructions,
        name="fig17",
        **campaign_options,
    )
