"""Shared aggregation helpers for experiment consumers.

The frontier, the speedup summary, and the experiment drivers all
reduce per-workload numbers to one figure of merit.  The reductions
live here -- once -- so the three consumers cannot drift apart:

* :func:`geometric_mean` for IPC across workloads (ratios of ratios
  stay meaningful under a geometric mean);
* :func:`arithmetic_mean` for per-workload speedups and relative IPC
  (the paper quotes arithmetic means, e.g. "mean 16%");
* :func:`mean_ipc` for the mean-IPC-over-workloads loop over a
  ``workload -> SimStats`` mapping.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.uarch.stats import SimStats


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values.

    Raises:
        ValueError: for an empty sequence.
    """
    values = list(values)
    if not values:
        raise ValueError("geometric_mean needs at least one value")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Arithmetic mean.

    Raises:
        ValueError: for an empty sequence.
    """
    values = list(values)
    if not values:
        raise ValueError("arithmetic_mean needs at least one value")
    return sum(values) / len(values)


def mean_ipc(stats_by_workload: Mapping[str, SimStats]) -> float:
    """Geometric-mean IPC over a ``workload -> SimStats`` mapping.

    This is the single mean-IPC-over-workloads reduction behind every
    frontier point.

    Raises:
        ValueError: for an empty mapping.
    """
    return geometric_mean(
        stats.ipc for stats in stats_by_workload.values()
    )
