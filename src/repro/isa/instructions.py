"""Instruction-set definition.

A MIPS-flavoured load/store RISC ISA:

* 32 integer registers ``r0``-``r31`` (``r0`` reads as zero) and 32
  floating-point registers ``f0``-``f31``; in the flat register-index
  space used throughout the package, integer registers occupy 0-31 and
  floating-point registers 32-63.
* Three-operand ALU instructions, immediate forms, loads/stores with
  register+offset addressing, compare-and-branch conditionals, and
  jumps (direct, register-indirect, and link forms).
* No delay slots (the paper's baseline predicts branches and squashes
  on mispredict; delay slots would only complicate the steering logic).

Each opcode carries an :class:`OpcodeInfo` descriptor giving its
operand shape (used by the assembler) and its :class:`OpClass` (used by
the timing simulator to pick functional units and latencies).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

#: Number of architected registers visible to renaming (int + fp).
NUM_LOGICAL_REGS = 64
#: Flat index of floating-point register f0.
FP_REG_BASE = 32


class OpClass(enum.Enum):
    """Execution class of an instruction (functional-unit selection)."""

    IALU = "ialu"  #: single-cycle integer ALU op
    IMUL = "imul"  #: integer multiply/divide
    LOAD = "load"  #: memory read
    STORE = "store"  #: memory write
    BRANCH = "branch"  #: conditional branch
    JUMP = "jump"  #: unconditional jump / call / return
    FPU = "fpu"  #: floating-point arithmetic
    NOP = "nop"  #: no-op (issues but does nothing)


#: Operand-shape codes used by OpcodeInfo.operands:
#:   d = destination register, s/t = source registers, i = immediate,
#:   a = address operand "imm(rs)", l = label (branch/jump target).
@dataclass(frozen=True)
class OpcodeInfo:
    """Static description of one opcode."""

    name: str
    op_class: OpClass
    operands: str
    writes_dest: bool = True
    reads_memory: bool = False
    writes_memory: bool = False
    is_conditional: bool = False
    description: str = ""


def _op(name, op_class, operands, **kwargs):
    return OpcodeInfo(name=name, op_class=op_class, operands=operands, **kwargs)


#: The opcode table.  Keys are mnemonic strings as written in assembly.
OPCODES: dict[str, OpcodeInfo] = {
    # --- integer ALU, register forms -------------------------------------
    "addu": _op("addu", OpClass.IALU, "dst", description="rd = rs + rt"),
    "subu": _op("subu", OpClass.IALU, "dst", description="rd = rs - rt"),
    "and": _op("and", OpClass.IALU, "dst", description="rd = rs & rt"),
    "or": _op("or", OpClass.IALU, "dst", description="rd = rs | rt"),
    "xor": _op("xor", OpClass.IALU, "dst", description="rd = rs ^ rt"),
    "nor": _op("nor", OpClass.IALU, "dst", description="rd = ~(rs | rt)"),
    "slt": _op("slt", OpClass.IALU, "dst", description="rd = (rs < rt) signed"),
    "sltu": _op("sltu", OpClass.IALU, "dst", description="rd = (rs < rt) unsigned"),
    "sllv": _op("sllv", OpClass.IALU, "dst", description="rd = rs << (rt & 31)"),
    "srlv": _op("srlv", OpClass.IALU, "dst", description="rd = rs >> (rt & 31) logical"),
    "srav": _op("srav", OpClass.IALU, "dst", description="rd = rs >> (rt & 31) arith"),
    # --- integer ALU, immediate forms -------------------------------------
    "addiu": _op("addiu", OpClass.IALU, "dsi", description="rd = rs + imm"),
    "andi": _op("andi", OpClass.IALU, "dsi", description="rd = rs & imm"),
    "ori": _op("ori", OpClass.IALU, "dsi", description="rd = rs | imm"),
    "xori": _op("xori", OpClass.IALU, "dsi", description="rd = rs ^ imm"),
    "slti": _op("slti", OpClass.IALU, "dsi", description="rd = (rs < imm) signed"),
    "sltiu": _op("sltiu", OpClass.IALU, "dsi", description="rd = (rs < imm) unsigned"),
    "sll": _op("sll", OpClass.IALU, "dsi", description="rd = rs << imm"),
    "srl": _op("srl", OpClass.IALU, "dsi", description="rd = rs >> imm logical"),
    "sra": _op("sra", OpClass.IALU, "dsi", description="rd = rs >> imm arith"),
    "lui": _op("lui", OpClass.IALU, "di", description="rd = imm << 16"),
    "li": _op("li", OpClass.IALU, "di", description="rd = imm (pseudo)"),
    "move": _op("move", OpClass.IALU, "ds", description="rd = rs (pseudo)"),
    # --- integer multiply/divide ------------------------------------------
    "mult": _op("mult", OpClass.IMUL, "dst", description="rd = rs * rt"),
    "div": _op("div", OpClass.IMUL, "dst", description="rd = rs / rt (trunc)"),
    "rem": _op("rem", OpClass.IMUL, "dst", description="rd = rs % rt"),
    # --- memory -------------------------------------------------------------
    "lw": _op("lw", OpClass.LOAD, "da", reads_memory=True, description="rd = mem32[rs+imm]"),
    "lb": _op("lb", OpClass.LOAD, "da", reads_memory=True, description="rd = sext(mem8[rs+imm])"),
    "lbu": _op("lbu", OpClass.LOAD, "da", reads_memory=True, description="rd = mem8[rs+imm]"),
    "lh": _op("lh", OpClass.LOAD, "da", reads_memory=True, description="rd = sext(mem16[rs+imm])"),
    "lhu": _op("lhu", OpClass.LOAD, "da", reads_memory=True, description="rd = mem16[rs+imm]"),
    "sw": _op("sw", OpClass.STORE, "ta", writes_dest=False, writes_memory=True,
              description="mem32[rs+imm] = rt"),
    "sb": _op("sb", OpClass.STORE, "ta", writes_dest=False, writes_memory=True,
              description="mem8[rs+imm] = rt"),
    "sh": _op("sh", OpClass.STORE, "ta", writes_dest=False, writes_memory=True,
              description="mem16[rs+imm] = rt"),
    # --- control ------------------------------------------------------------
    "beq": _op("beq", OpClass.BRANCH, "stl", writes_dest=False, is_conditional=True,
               description="if rs == rt goto label"),
    "bne": _op("bne", OpClass.BRANCH, "stl", writes_dest=False, is_conditional=True,
               description="if rs != rt goto label"),
    "blez": _op("blez", OpClass.BRANCH, "sl", writes_dest=False, is_conditional=True,
                description="if rs <= 0 goto label"),
    "bgtz": _op("bgtz", OpClass.BRANCH, "sl", writes_dest=False, is_conditional=True,
                description="if rs > 0 goto label"),
    "bltz": _op("bltz", OpClass.BRANCH, "sl", writes_dest=False, is_conditional=True,
                description="if rs < 0 goto label"),
    "bgez": _op("bgez", OpClass.BRANCH, "sl", writes_dest=False, is_conditional=True,
                description="if rs >= 0 goto label"),
    "blt": _op("blt", OpClass.BRANCH, "stl", writes_dest=False, is_conditional=True,
               description="if rs < rt goto label (signed)"),
    "bge": _op("bge", OpClass.BRANCH, "stl", writes_dest=False, is_conditional=True,
               description="if rs >= rt goto label (signed)"),
    "ble": _op("ble", OpClass.BRANCH, "stl", writes_dest=False, is_conditional=True,
               description="if rs <= rt goto label (signed)"),
    "bgt": _op("bgt", OpClass.BRANCH, "stl", writes_dest=False, is_conditional=True,
               description="if rs > rt goto label (signed)"),
    "b": _op("b", OpClass.JUMP, "l", writes_dest=False,
             description="goto label (unconditional)"),
    "j": _op("j", OpClass.JUMP, "l", writes_dest=False, description="goto label"),
    "jal": _op("jal", OpClass.JUMP, "l", description="r31 = return; goto label"),
    "jr": _op("jr", OpClass.JUMP, "s", writes_dest=False, description="goto rs"),
    "jalr": _op("jalr", OpClass.JUMP, "s", description="r31 = return; goto rs"),
    # --- floating point -------------------------------------------------------
    "add.s": _op("add.s", OpClass.FPU, "dst", description="fd = fs + ft"),
    "sub.s": _op("sub.s", OpClass.FPU, "dst", description="fd = fs - ft"),
    "mul.s": _op("mul.s", OpClass.FPU, "dst", description="fd = fs * ft"),
    "div.s": _op("div.s", OpClass.FPU, "dst", description="fd = fs / ft"),
    "mov.s": _op("mov.s", OpClass.FPU, "ds", description="fd = fs"),
    "l.s": _op("l.s", OpClass.LOAD, "da", reads_memory=True, description="fd = mem32[rs+imm]"),
    "s.s": _op("s.s", OpClass.STORE, "ta", writes_dest=False, writes_memory=True,
               description="mem32[rs+imm] = ft"),
    "cvt.s.w": _op("cvt.s.w", OpClass.FPU, "ds", description="fd = float(rs)"),
    "cvt.w.s": _op("cvt.w.s", OpClass.FPU, "ds", description="rd = int(fs)"),
    # --- misc ---------------------------------------------------------------
    "nop": _op("nop", OpClass.NOP, "", writes_dest=False, description="no operation"),
    "halt": _op("halt", OpClass.NOP, "", writes_dest=False, description="stop execution"),
}


@dataclass(frozen=True)
class Instruction:
    """One static (assembled) instruction.

    Attributes:
        opcode: Mnemonic; must be a key of :data:`OPCODES`.
        dest: Flat destination register index, or None.
        srcs: Flat source register indices (operands actually read).
        imm: Immediate value (also the offset for memory operands).
        target: Resolved target instruction index for branches/jumps
            with label operands, or None.
        label: The original label text, for disassembly.
    """

    opcode: str
    dest: int | None = None
    srcs: tuple[int, ...] = field(default=())
    imm: int | None = None
    target: int | None = None
    label: str | None = None

    def __post_init__(self) -> None:
        if self.opcode not in OPCODES:
            raise ValueError(f"unknown opcode {self.opcode!r}")
        for reg in (self.dest, *self.srcs):
            if reg is not None and not 0 <= reg < NUM_LOGICAL_REGS:
                raise ValueError(f"register index {reg} out of range")

    @property
    def info(self) -> OpcodeInfo:
        """Static opcode descriptor."""
        return OPCODES[self.opcode]

    @property
    def op_class(self) -> OpClass:
        """Execution class."""
        return self.info.op_class

    def __str__(self) -> str:
        parts = []
        if self.dest is not None:
            parts.append(reg_name(self.dest))
        parts.extend(reg_name(s) for s in self.srcs)
        if self.imm is not None:
            parts.append(str(self.imm))
        if self.label is not None:
            parts.append(self.label)
        operand_text = ", ".join(parts)
        return f"{self.opcode} {operand_text}".strip()


def reg_name(index: int) -> str:
    """Printable name of a flat register index (``r7`` or ``f3``)."""
    if not 0 <= index < NUM_LOGICAL_REGS:
        raise ValueError(f"register index {index} out of range")
    if index < FP_REG_BASE:
        return f"r{index}"
    return f"f{index - FP_REG_BASE}"
