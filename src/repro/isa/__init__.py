"""A MIPS-like RISC instruction set, assembler, and functional emulator.

The paper's simulator was a modified SimpleScalar running SPEC'95
binaries compiled for the (MIPS-derived) PISA instruction set.  Neither
the binaries nor the toolchain is available, so this package provides
the full substrate from scratch:

* :mod:`repro.isa.instructions` -- the instruction set: 32 integer and
  32 floating-point registers, the usual MIPS-style ALU, memory, and
  control operations;
* :mod:`repro.isa.assembler` -- a two-pass text assembler with labels
  and data directives, used to write the workload kernels;
* :mod:`repro.isa.emulator` -- a functional emulator that executes
  programs and emits the dynamic instruction trace consumed by the
  timing simulator in :mod:`repro.uarch`.
"""

from repro.isa.instructions import (
    FP_REG_BASE,
    NUM_LOGICAL_REGS,
    Instruction,
    OpClass,
    OPCODES,
    OpcodeInfo,
    reg_name,
)
from repro.isa.assembler import AssemblerError, Program, assemble
from repro.isa.emulator import DynInst, EmulationError, Emulator, Trace, run_to_trace
from repro.isa.encoding import (
    EncodingError,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)

__all__ = [
    "FP_REG_BASE",
    "NUM_LOGICAL_REGS",
    "Instruction",
    "OpClass",
    "OPCODES",
    "OpcodeInfo",
    "reg_name",
    "AssemblerError",
    "Program",
    "assemble",
    "DynInst",
    "EmulationError",
    "Emulator",
    "Trace",
    "run_to_trace",
    "EncodingError",
    "encode_instruction",
    "decode_instruction",
    "encode_program",
    "decode_program",
]
