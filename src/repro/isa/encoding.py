"""Binary instruction encoding and the object-file format.

The ISA uses a wide fixed-length encoding (16 bytes per instruction)
so every operand form fits without squeezing: one byte each for the
opcode number, destination, and two sources; a flag byte; a 32-bit
signed immediate; and a 32-bit branch/jump target (a text-segment
index -- the toolchain resolves labels at assembly time).

An object file bundles the encoded text segment with the initialised
data image and the entry point, so assembled programs can be saved
and reloaded without the assembler::

    blob = encode_program(program)
    same_program = decode_program(blob)
"""

from __future__ import annotations

import struct

from repro.isa.assembler import Program
from repro.isa.instructions import Instruction, OPCODES

#: File magic and current format version.
MAGIC = b"RPRO"
VERSION = 1

#: Stable opcode numbering (alphabetical; append-only in future).
OPCODE_NUMBERS: dict[str, int] = {
    name: number for number, name in enumerate(sorted(OPCODES))
}
_OPCODE_NAMES: dict[int, str] = {v: k for k, v in OPCODE_NUMBERS.items()}

#: Sentinel for an absent register field.
_NO_REG = 0xFF

#: Flag bits.
_HAS_IMM = 0x01
_HAS_TARGET = 0x02

_RECORD = struct.Struct("<BBBBBxxxiI")  # op, dest, s1, s2, flags, imm, target
RECORD_SIZE = _RECORD.size

_HEADER = struct.Struct("<4sHII")  # magic, version, entry, n_insts
_SEGMENT = struct.Struct("<II")  # address, length


class EncodingError(ValueError):
    """Raised for malformed binary instruction data."""


def encode_instruction(inst: Instruction) -> bytes:
    """Encode one instruction as a 16-byte record.

    Raises:
        EncodingError: if the instruction has more than two sources or
            an immediate outside 32 bits.
    """
    if len(inst.srcs) > 2:
        raise EncodingError(f"cannot encode {len(inst.srcs)} source operands")
    flags = 0
    imm = 0
    if inst.imm is not None:
        if not -(2**31) <= inst.imm < 2**31:
            raise EncodingError(f"immediate {inst.imm} does not fit in 32 bits")
        flags |= _HAS_IMM
        imm = inst.imm
    target = 0
    if inst.target is not None:
        flags |= _HAS_TARGET
        target = inst.target
    srcs = list(inst.srcs) + [_NO_REG] * (2 - len(inst.srcs))
    return _RECORD.pack(
        OPCODE_NUMBERS[inst.opcode],
        _NO_REG if inst.dest is None else inst.dest,
        srcs[0],
        srcs[1],
        flags,
        imm,
        target,
    )


def decode_instruction(blob: bytes) -> Instruction:
    """Decode one 16-byte record back to an :class:`Instruction`.

    Raises:
        EncodingError: for a wrong-sized record or unknown opcode.
    """
    if len(blob) != RECORD_SIZE:
        raise EncodingError(
            f"instruction record must be {RECORD_SIZE} bytes, got {len(blob)}"
        )
    op_number, dest, src1, src2, flags, imm, target = _RECORD.unpack(blob)
    opcode = _OPCODE_NAMES.get(op_number)
    if opcode is None:
        raise EncodingError(f"unknown opcode number {op_number}")
    srcs = tuple(s for s in (src1, src2) if s != _NO_REG)
    has_target = bool(flags & _HAS_TARGET)
    return Instruction(
        opcode=opcode,
        dest=None if dest == _NO_REG else dest,
        srcs=srcs,
        imm=imm if flags & _HAS_IMM else None,
        target=target if has_target else None,
        label=f"@{target}" if has_target else None,
    )


def _data_segments(image: dict[int, int]) -> list[tuple[int, bytes]]:
    """Coalesce a sparse byte image into contiguous segments."""
    segments: list[tuple[int, bytes]] = []
    run_start = None
    run_bytes = bytearray()
    for address in sorted(image):
        if run_start is not None and address == run_start + len(run_bytes):
            run_bytes.append(image[address])
            continue
        if run_start is not None:
            segments.append((run_start, bytes(run_bytes)))
        run_start = address
        run_bytes = bytearray([image[address]])
    if run_start is not None:
        segments.append((run_start, bytes(run_bytes)))
    return segments


def encode_program(program: Program) -> bytes:
    """Serialise a program (text + data + entry) to an object blob."""
    parts = [
        _HEADER.pack(MAGIC, VERSION, program.entry_point, len(program.instructions))
    ]
    for inst in program.instructions:
        parts.append(encode_instruction(inst))
    segments = _data_segments(program.data_image)
    parts.append(struct.pack("<I", len(segments)))
    for address, data in segments:
        parts.append(_SEGMENT.pack(address, len(data)))
        parts.append(data)
    return b"".join(parts)


def decode_program(blob: bytes) -> Program:
    """Deserialise an object blob back to a runnable :class:`Program`.

    Label names are not stored in object files; branch targets decode
    as ``@index`` pseudo-labels.

    Raises:
        EncodingError: for bad magic, version, or truncated data.
    """
    if len(blob) < _HEADER.size:
        raise EncodingError("object blob too short for header")
    magic, version, entry, n_insts = _HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise EncodingError(f"bad magic {magic!r}")
    if version != VERSION:
        raise EncodingError(f"unsupported object version {version}")
    offset = _HEADER.size
    program = Program(entry_point=entry)
    for _ in range(n_insts):
        record = blob[offset : offset + RECORD_SIZE]
        program.instructions.append(decode_instruction(record))
        program.source_lines.append(0)
        offset += RECORD_SIZE
    if offset + 4 > len(blob):
        raise EncodingError("object blob truncated before data segments")
    (n_segments,) = struct.unpack_from("<I", blob, offset)
    offset += 4
    for _ in range(n_segments):
        if offset + _SEGMENT.size > len(blob):
            raise EncodingError("object blob truncated in segment table")
        address, length = _SEGMENT.unpack_from(blob, offset)
        offset += _SEGMENT.size
        data = blob[offset : offset + length]
        if len(data) != length:
            raise EncodingError("object blob truncated in segment data")
        for index, byte in enumerate(data):
            program.data_image[address + index] = byte
        offset += length
    if entry and entry >= max(1, len(program.instructions)):
        raise EncodingError(f"entry point {entry} outside text segment")
    return program
