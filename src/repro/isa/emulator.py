"""Functional emulator and dynamic-trace generation.

The timing simulator in :mod:`repro.uarch` is trace-driven, like the
paper's modified SimpleScalar: a functional front end executes the
program and produces the committed dynamic instruction stream, and the
timing model replays that stream through the pipeline (branch
mispredictions stall fetch for the refill latency rather than executing
wrong-path instructions).

Semantics notes:

* Integer registers hold 32-bit values (register 0 reads as zero and
  ignores writes); floating-point registers hold Python floats.
* Jump-register targets and link values are *instruction indices* --
  the text segment is indexed, not byte-addressed.  Dispatch tables in
  ``.data`` therefore store instruction indices of labels.
* Division by zero yields zero (the kernels never rely on trapping).
* Uninitialised memory reads as zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.assembler import Program
from repro.isa.instructions import FP_REG_BASE, Instruction, OpClass

_MASK32 = 0xFFFFFFFF


def _wrap32(value: int) -> int:
    """Wrap to signed 32-bit."""
    value &= _MASK32
    return value - 0x1_0000_0000 if value >= 0x8000_0000 else value


class EmulationError(RuntimeError):
    """Raised for runtime errors: bad PC, bad jump target, etc."""


class DynInst:
    """One committed dynamic instruction (a trace record).

    Attributes:
        seq: Dynamic sequence number (0-based).
        pc: Static instruction index.
        opcode: Mnemonic.
        op_class: Execution class (:class:`OpClass`).
        srcs: Flat architectural source registers actually read
            (register 0 excluded -- it is never a true dependence).
        dest: Flat architectural destination register, or None
            (writes to register 0 are discarded and appear as None).
        mem_addr: Effective address for loads/stores, else None.
        is_store / is_load: Memory-class flags.
        is_branch: True for conditional branches.
        is_uncond: True for unconditional jumps (predicted perfectly
            in the baseline model, Table 3).
        taken: Branch/jump outcome.
        next_pc: Static index of the following dynamic instruction.
    """

    __slots__ = (
        "seq", "pc", "opcode", "op_class", "srcs", "dest", "mem_addr",
        "is_store", "is_load", "is_branch", "is_uncond", "taken", "next_pc",
    )

    def __init__(self, seq, pc, opcode, op_class, srcs, dest, mem_addr,
                 is_store, is_load, is_branch, is_uncond, taken, next_pc):
        self.seq = seq
        self.pc = pc
        self.opcode = opcode
        self.op_class = op_class
        self.srcs = srcs
        self.dest = dest
        self.mem_addr = mem_addr
        self.is_store = is_store
        self.is_load = is_load
        self.is_branch = is_branch
        self.is_uncond = is_uncond
        self.taken = taken
        self.next_pc = next_pc

    def __repr__(self) -> str:
        return f"DynInst(#{self.seq} pc={self.pc} {self.opcode})"


@dataclass
class Trace:
    """A committed dynamic instruction stream plus provenance."""

    insts: list[DynInst]
    halted: bool
    program: Program | None = None
    name: str = ""
    _class_counts: dict[OpClass, int] | None = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.insts)

    def __iter__(self):
        return iter(self.insts)

    def __getitem__(self, index):
        return self.insts[index]

    def class_counts(self) -> dict[OpClass, int]:
        """Dynamic instruction count per execution class."""
        if self._class_counts is None:
            counts: dict[OpClass, int] = {}
            for inst in self.insts:
                counts[inst.op_class] = counts.get(inst.op_class, 0) + 1
            self._class_counts = counts
        return dict(self._class_counts)

    def branch_fraction(self) -> float:
        """Fraction of dynamic instructions that are conditional branches."""
        if not self.insts:
            return 0.0
        return sum(1 for i in self.insts if i.is_branch) / len(self.insts)

    def load_fraction(self) -> float:
        """Fraction of dynamic instructions that are loads."""
        if not self.insts:
            return 0.0
        return sum(1 for i in self.insts if i.is_load) / len(self.insts)


class Emulator:
    """Functional executor for an assembled :class:`Program`."""

    def __init__(self, program: Program):
        self.program = program
        self.int_regs = [0] * FP_REG_BASE
        self.fp_regs = [0.0] * FP_REG_BASE
        self.memory: dict[int, int] = dict(program.data_image)
        self.pc = program.entry_point
        self.halted = False
        self.executed = 0

    # ---- register/memory access helpers -----------------------------------

    def read_reg(self, index: int):
        """Read a flat register (int or fp)."""
        if index < FP_REG_BASE:
            return self.int_regs[index] if index != 0 else 0
        return self.fp_regs[index - FP_REG_BASE]

    def write_reg(self, index: int, value) -> None:
        """Write a flat register; writes to integer register 0 vanish."""
        if index < FP_REG_BASE:
            if index != 0:
                self.int_regs[index] = _wrap32(int(value))
        else:
            self.fp_regs[index - FP_REG_BASE] = float(value)

    def load(self, address: int, size: int, signed: bool) -> int:
        """Read ``size`` little-endian bytes; missing bytes read as 0."""
        value = 0
        for i in range(size):
            value |= self.memory.get(address + i, 0) << (8 * i)
        if signed:
            sign_bit = 1 << (8 * size - 1)
            if value & sign_bit:
                value -= 1 << (8 * size)
        return value

    def store(self, address: int, value: int, size: int) -> None:
        """Write ``size`` little-endian bytes."""
        value &= (1 << (8 * size)) - 1
        for i in range(size):
            self.memory[address + i] = (value >> (8 * i)) & 0xFF

    # ---- execution ----------------------------------------------------------

    def step(self, seq: int) -> DynInst:
        """Execute one instruction and return its trace record.

        Raises:
            EmulationError: if the PC runs off the text segment or a
                register-indirect jump targets a bad index.
        """
        if not 0 <= self.pc < len(self.program.instructions):
            raise EmulationError(f"PC {self.pc} outside text segment")
        inst = self.program.instructions[self.pc]
        pc = self.pc
        next_pc = pc + 1
        mem_addr = None
        taken = False
        op = inst.opcode
        cls = inst.op_class
        read = self.read_reg

        if cls is OpClass.IALU:
            self._exec_ialu(inst)
        elif cls is OpClass.IMUL:
            self._exec_imul(inst)
        elif cls is OpClass.LOAD:
            mem_addr = _wrap32(read(inst.srcs[0]) + inst.imm) & _MASK32
            self._exec_load(inst, mem_addr)
        elif cls is OpClass.STORE:
            mem_addr = _wrap32(read(inst.srcs[1]) + inst.imm) & _MASK32
            self._exec_store(inst, mem_addr)
        elif cls is OpClass.BRANCH:
            taken = self._branch_taken(inst)
            if taken:
                next_pc = inst.target
        elif cls is OpClass.JUMP:
            taken = True
            if op in ("j", "jal", "b"):
                if op == "jal":
                    self.write_reg(31, pc + 1)
                next_pc = inst.target
            else:  # jr / jalr
                target = read(inst.srcs[0])
                if op == "jalr":
                    self.write_reg(31, pc + 1)
                if not 0 <= target < len(self.program.instructions):
                    raise EmulationError(
                        f"jump register target {target} outside text segment "
                        f"(pc={pc})"
                    )
                next_pc = target
        elif cls is OpClass.FPU:
            self._exec_fpu(inst)
        else:  # NOP / HALT
            if op == "halt":
                self.halted = True
                next_pc = pc

        self.pc = next_pc
        self.executed += 1

        dest = inst.dest
        if dest == 0:
            dest = None  # writes to r0 are architectural no-ops
        srcs = tuple(s for s in inst.srcs if s != 0)
        info = inst.info
        return DynInst(
            seq=seq,
            pc=pc,
            opcode=op,
            op_class=cls,
            srcs=srcs,
            dest=dest if info.writes_dest else None,
            mem_addr=mem_addr,
            is_store=info.writes_memory,
            is_load=info.reads_memory,
            is_branch=info.is_conditional,
            is_uncond=cls is OpClass.JUMP,
            taken=taken,
            next_pc=next_pc,
        )

    def _exec_ialu(self, inst: Instruction) -> None:
        read = self.read_reg
        op = inst.opcode
        if op == "addu":
            value = read(inst.srcs[0]) + read(inst.srcs[1])
        elif op == "subu":
            value = read(inst.srcs[0]) - read(inst.srcs[1])
        elif op == "and":
            value = read(inst.srcs[0]) & read(inst.srcs[1])
        elif op == "or":
            value = read(inst.srcs[0]) | read(inst.srcs[1])
        elif op == "xor":
            value = read(inst.srcs[0]) ^ read(inst.srcs[1])
        elif op == "nor":
            value = ~(read(inst.srcs[0]) | read(inst.srcs[1]))
        elif op == "slt":
            value = int(read(inst.srcs[0]) < read(inst.srcs[1]))
        elif op == "sltu":
            value = int((read(inst.srcs[0]) & _MASK32) < (read(inst.srcs[1]) & _MASK32))
        elif op == "sllv":
            value = read(inst.srcs[0]) << (read(inst.srcs[1]) & 31)
        elif op == "srlv":
            value = (read(inst.srcs[0]) & _MASK32) >> (read(inst.srcs[1]) & 31)
        elif op == "srav":
            value = read(inst.srcs[0]) >> (read(inst.srcs[1]) & 31)
        elif op == "addiu":
            value = read(inst.srcs[0]) + inst.imm
        elif op == "andi":
            value = read(inst.srcs[0]) & inst.imm
        elif op == "ori":
            value = read(inst.srcs[0]) | inst.imm
        elif op == "xori":
            value = read(inst.srcs[0]) ^ inst.imm
        elif op == "slti":
            value = int(read(inst.srcs[0]) < inst.imm)
        elif op == "sltiu":
            value = int((read(inst.srcs[0]) & _MASK32) < (inst.imm & _MASK32))
        elif op == "sll":
            value = read(inst.srcs[0]) << (inst.imm & 31)
        elif op == "srl":
            value = (read(inst.srcs[0]) & _MASK32) >> (inst.imm & 31)
        elif op == "sra":
            value = read(inst.srcs[0]) >> (inst.imm & 31)
        elif op == "lui":
            value = inst.imm << 16
        elif op == "li":
            value = inst.imm
        elif op == "move":
            value = read(inst.srcs[0])
        else:  # pragma: no cover - opcode table is static
            raise EmulationError(f"unhandled IALU opcode {op}")
        self.write_reg(inst.dest, value)

    def _exec_imul(self, inst: Instruction) -> None:
        a = self.read_reg(inst.srcs[0])
        b = self.read_reg(inst.srcs[1])
        if inst.opcode == "mult":
            value = a * b
        elif inst.opcode == "div":
            value = 0 if b == 0 else int(a / b)  # truncate toward zero
        else:  # rem
            value = 0 if b == 0 else a - int(a / b) * b
        self.write_reg(inst.dest, value)

    def _exec_load(self, inst: Instruction, address: int) -> None:
        op = inst.opcode
        if op == "lw":
            value = _wrap32(self.load(address, 4, signed=False))
        elif op == "lb":
            value = self.load(address, 1, signed=True)
        elif op == "lbu":
            value = self.load(address, 1, signed=False)
        elif op == "lh":
            value = self.load(address, 2, signed=True)
        elif op == "lhu":
            value = self.load(address, 2, signed=False)
        else:  # l.s -- fp bits stored as scaled integer for simplicity
            self.write_reg(inst.dest, self.load(address, 4, signed=True) / 65536.0)
            return
        self.write_reg(inst.dest, value)

    def _exec_store(self, inst: Instruction, address: int) -> None:
        op = inst.opcode
        value_reg = inst.srcs[0]
        if op == "sw":
            self.store(address, self.read_reg(value_reg) & _MASK32, 4)
        elif op == "sb":
            self.store(address, self.read_reg(value_reg) & 0xFF, 1)
        elif op == "sh":
            self.store(address, self.read_reg(value_reg) & 0xFFFF, 2)
        else:  # s.s
            self.store(address, int(self.read_reg(value_reg) * 65536.0) & _MASK32, 4)

    def _exec_fpu(self, inst: Instruction) -> None:
        read = self.read_reg
        op = inst.opcode
        if op == "add.s":
            value = read(inst.srcs[0]) + read(inst.srcs[1])
        elif op == "sub.s":
            value = read(inst.srcs[0]) - read(inst.srcs[1])
        elif op == "mul.s":
            value = read(inst.srcs[0]) * read(inst.srcs[1])
        elif op == "div.s":
            divisor = read(inst.srcs[1])
            value = 0.0 if divisor == 0 else read(inst.srcs[0]) / divisor
        elif op in ("mov.s", "cvt.s.w"):
            value = float(read(inst.srcs[0]))
        elif op == "cvt.w.s":
            value = int(read(inst.srcs[0]))
        else:  # pragma: no cover - opcode table is static
            raise EmulationError(f"unhandled FPU opcode {op}")
        self.write_reg(inst.dest, value)

    def _branch_taken(self, inst: Instruction) -> bool:
        read = self.read_reg
        op = inst.opcode
        if op == "beq":
            return read(inst.srcs[0]) == read(inst.srcs[1])
        if op == "bne":
            return read(inst.srcs[0]) != read(inst.srcs[1])
        if op == "blez":
            return read(inst.srcs[0]) <= 0
        if op == "bgtz":
            return read(inst.srcs[0]) > 0
        if op == "bltz":
            return read(inst.srcs[0]) < 0
        if op == "bgez":
            return read(inst.srcs[0]) >= 0
        if op == "blt":
            return read(inst.srcs[0]) < read(inst.srcs[1])
        if op == "bge":
            return read(inst.srcs[0]) >= read(inst.srcs[1])
        if op == "ble":
            return read(inst.srcs[0]) <= read(inst.srcs[1])
        if op == "bgt":
            return read(inst.srcs[0]) > read(inst.srcs[1])
        raise EmulationError(f"unhandled branch opcode {op}")  # pragma: no cover

    def run(self, max_instructions: int = 1_000_000) -> Trace:
        """Execute until ``halt`` or the instruction cap.

        Args:
            max_instructions: Upper bound on executed instructions (the
                paper capped benchmark runs similarly).

        Returns:
            The committed dynamic :class:`Trace`.
        """
        if max_instructions < 0:
            raise ValueError(f"max_instructions must be >= 0, got {max_instructions}")
        insts: list[DynInst] = []
        while not self.halted and len(insts) < max_instructions:
            record = self.step(len(insts))
            if record.opcode == "halt":
                break
            insts.append(record)
        return Trace(insts=insts, halted=self.halted, program=self.program)


def run_to_trace(program: Program, max_instructions: int = 1_000_000, name: str = "") -> Trace:
    """Assemble-and-run convenience: execute a program to a trace."""
    trace = Emulator(program).run(max_instructions)
    trace.name = name
    return trace
