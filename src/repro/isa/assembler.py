"""Two-pass text assembler.

Accepts MIPS-style assembly with ``.text``/``.data`` sections, labels,
and the data directives ``.word``, ``.byte``, ``.space``, ``.asciiz``,
and ``.align``.  Register operands may be written ``r4``, ``$4``,
``f2``, ``$f2``, or with the usual MIPS symbolic names (``$t0``,
``$sp``, ...).  Comments start with ``#`` or ``;``.

Example::

    program = assemble('''
            .data
    table:  .word 3, 1, 4, 1, 5
            .text
    main:   li    r1, 0          # sum
            li    r2, 0          # index
            la    r3, table
    loop:   sll   r4, r2, 2
            addu  r4, r4, r3
            lw    r5, 0(r4)
            addu  r1, r1, r5
            addiu r2, r2, 1
            blt   r2, r6, loop
            halt
    ''')
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.isa.instructions import (
    FP_REG_BASE,
    Instruction,
    OPCODES,
)

#: Base address of the data segment.
DATA_BASE = 0x1000_0000
#: Base address of the stack (grows down); programs may use it freely.
STACK_BASE = 0x7FFF_F000

_MIPS_ALIASES = {
    "zero": 0, "at": 1, "v0": 2, "v1": 3,
    "a0": 4, "a1": 5, "a2": 6, "a3": 7,
    "t0": 8, "t1": 9, "t2": 10, "t3": 11, "t4": 12, "t5": 13, "t6": 14, "t7": 15,
    "s0": 16, "s1": 17, "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23,
    "t8": 24, "t9": 25, "k0": 26, "k1": 27,
    "gp": 28, "sp": 29, "fp": 30, "ra": 31,
}

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.$]*$")
_ADDR_RE = re.compile(r"^(?P<offset>[^()]*)\((?P<base>[^()]+)\)$")


class AssemblerError(ValueError):
    """Raised for any syntax or semantic error, with line context."""


@dataclass
class Program:
    """An assembled program.

    Attributes:
        instructions: The text segment, in order.
        labels: Text labels -> instruction index.
        data_labels: Data labels -> byte address.
        data_image: Initialised data bytes, keyed by address.
        entry_point: Index of the first instruction to execute
            (``main`` if defined, else 0).
        source_lines: Source line number of each instruction (for
            error reporting and disassembly).
    """

    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    data_labels: dict[str, int] = field(default_factory=dict)
    data_image: dict[int, int] = field(default_factory=dict)
    entry_point: int = 0
    source_lines: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instructions)

    def disassemble(self) -> str:
        """Human-readable listing of the text segment."""
        by_index = {}
        for name, index in self.labels.items():
            by_index.setdefault(index, []).append(name)
        lines = []
        for index, inst in enumerate(self.instructions):
            for name in by_index.get(index, []):
                lines.append(f"{name}:")
            lines.append(f"  {index:5d}  {inst}")
        return "\n".join(lines)


def _strip_comment(line: str) -> str:
    for marker in ("#", ";"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _parse_register(token: str, line_no: int) -> int:
    text = token.strip().lower()
    if text.startswith("$"):
        text = text[1:]
    if text in _MIPS_ALIASES:
        return _MIPS_ALIASES[text]
    match = re.fullmatch(r"([rf]?)(\d+)", text)
    if not match:
        raise AssemblerError(f"line {line_no}: bad register {token!r}")
    kind, number = match.group(1), int(match.group(2))
    if number > 31:
        raise AssemblerError(f"line {line_no}: register number {number} out of range")
    if kind == "f":
        return FP_REG_BASE + number
    return number


def _parse_immediate(token: str, program: "Program", line_no: int) -> int:
    text = token.strip()
    # Data labels resolve to byte addresses; text labels resolve to
    # instruction indices (usable in jump tables, see the emulator).
    if text in program.data_labels:
        return program.data_labels[text]
    if text in program.labels:
        return program.labels[text]
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError(f"line {line_no}: bad immediate {token!r}") from None


def _split_operands(text: str) -> list[str]:
    if not text:
        return []
    return [part.strip() for part in text.split(",")]


def _tokenize(source: str):
    """Yield (line_no, label_or_None, opcode_or_directive, operand_text)."""
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue
        label = None
        if ":" in line:
            head, _colon, rest = line.partition(":")
            head = head.strip()
            if _LABEL_RE.match(head):
                label = head
                line = rest.strip()
        if not line:
            yield line_no, label, None, ""
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1].strip() if len(parts) > 1 else ""
        yield line_no, label, mnemonic, operand_text


def _encode_data(directive, operand_text, address, image, line_no):
    """Apply one data directive; returns the next free address."""
    if directive == ".word":
        for token in _split_operands(operand_text):
            value = int(token, 0) & 0xFFFFFFFF
            for i in range(4):
                image[address + i] = (value >> (8 * i)) & 0xFF
            address += 4
    elif directive == ".byte":
        for token in _split_operands(operand_text):
            image[address] = int(token, 0) & 0xFF
            address += 1
    elif directive == ".space":
        count = int(operand_text, 0)
        if count < 0:
            raise AssemblerError(f"line {line_no}: negative .space")
        address += count
    elif directive == ".asciiz":
        text = operand_text.strip()
        if not (text.startswith('"') and text.endswith('"')):
            raise AssemblerError(f"line {line_no}: .asciiz needs a quoted string")
        data = text[1:-1].encode("utf-8").decode("unicode_escape").encode("latin-1")
        for byte in data:
            image[address] = byte
            address += 1
        image[address] = 0
        address += 1
    elif directive == ".align":
        alignment = 1 << int(operand_text, 0)
        address = (address + alignment - 1) & ~(alignment - 1)
    else:
        raise AssemblerError(f"line {line_no}: unknown directive {directive}")
    return address


def assemble(source: str) -> Program:
    """Assemble source text into a :class:`Program`.

    Raises:
        AssemblerError: on any syntax error, unknown opcode or label,
            or malformed operand, with the offending line number.
    """
    program = Program()
    # ---- pass 1: sizes and label addresses --------------------------------
    section = ".text"
    text_index = 0
    data_address = DATA_BASE
    for line_no, label, mnemonic, operand_text in _tokenize(source):
        if mnemonic in (".text", ".data"):
            section = mnemonic
            if label:
                raise AssemblerError(f"line {line_no}: label on section directive")
            continue
        if label:
            if label in program.labels or label in program.data_labels:
                raise AssemblerError(f"line {line_no}: duplicate label {label!r}")
            if section == ".text":
                program.labels[label] = text_index
            else:
                program.data_labels[label] = data_address
        if mnemonic is None:
            continue
        if mnemonic.startswith("."):
            if section != ".data":
                raise AssemblerError(f"line {line_no}: {mnemonic} outside .data")
            data_address = _encode_data(
                mnemonic, operand_text, data_address, program.data_image, line_no
            )
        else:
            if section != ".text":
                raise AssemblerError(f"line {line_no}: instruction in .data section")
            text_index += 1

    # ---- pass 2: encode instructions --------------------------------------
    section = ".text"
    for line_no, _label, mnemonic, operand_text in _tokenize(source):
        if mnemonic in (".text", ".data"):
            section = mnemonic
            continue
        if mnemonic is None or mnemonic.startswith("."):
            continue
        if section != ".text":
            continue
        program.instructions.append(
            _encode_instruction(mnemonic, operand_text, program, line_no)
        )
        program.source_lines.append(line_no)

    program.entry_point = program.labels.get("main", 0)
    return program


def _encode_instruction(mnemonic, operand_text, program, line_no):
    operands = _split_operands(operand_text)
    if mnemonic == "la":
        # Pseudo: load address of a data label.
        if len(operands) != 2:
            raise AssemblerError(f"line {line_no}: la needs 2 operands")
        dest = _parse_register(operands[0], line_no)
        if operands[1] not in program.data_labels:
            raise AssemblerError(f"line {line_no}: unknown data label {operands[1]!r}")
        return Instruction(
            opcode="li", dest=dest, imm=program.data_labels[operands[1]]
        )
    info = OPCODES.get(mnemonic)
    if info is None:
        raise AssemblerError(f"line {line_no}: unknown opcode {mnemonic!r}")
    shape = info.operands
    if len(operands) != len(shape):
        raise AssemblerError(
            f"line {line_no}: {mnemonic} expects {len(shape)} operands, "
            f"got {len(operands)}"
        )
    dest = None
    srcs: list[int] = []
    imm = None
    target = None
    label = None
    for code, token in zip(shape, operands):
        if code == "d":
            dest = _parse_register(token, line_no)
        elif code in ("s", "t"):
            srcs.append(_parse_register(token, line_no))
        elif code == "i":
            imm = _parse_immediate(token, program, line_no)
        elif code == "a":
            match = _ADDR_RE.match(token)
            if not match:
                raise AssemblerError(f"line {line_no}: bad address operand {token!r}")
            offset_text = match.group("offset").strip() or "0"
            imm = _parse_immediate(offset_text, program, line_no)
            srcs.append(_parse_register(match.group("base"), line_no))
        elif code == "l":
            label = token
            if token not in program.labels:
                raise AssemblerError(f"line {line_no}: unknown label {token!r}")
            target = program.labels[token]
        else:  # pragma: no cover - shape table is static
            raise AssemblerError(f"line {line_no}: bad operand shape {code!r}")
    if mnemonic in ("jal", "jalr"):
        dest = 31  # link register, written implicitly
    return Instruction(
        opcode=mnemonic, dest=dest, srcs=tuple(srcs), imm=imm, target=target, label=label
    )
