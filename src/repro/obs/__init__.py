"""Observability for the timing simulator.

Three tools, all optional and zero-cost when unused:

* :mod:`repro.obs.events` -- a structured event tracer: the pipeline
  emits typed per-instruction lifecycle events (fetch, rename,
  dispatch, steer, wakeup, select, issue, execute, bypass, commit,
  squash) into a bounded ring buffer when a tracer is attached.
* :mod:`repro.obs.export` -- exporters: Chrome ``trace_event`` JSON
  (open in Perfetto or chrome://tracing) and machine-readable metrics
  JSON, each with a validator.
* :mod:`repro.obs.profiling` -- a host-profiling harness that times
  where the *simulation itself* spends wall-clock, per pipeline
  stage.

See ``docs/observability.md`` for the event schema and workflows.
"""

from repro.obs.events import EventKind, EventTracer, TraceEvent
from repro.obs.export import (
    chrome_trace,
    metrics_dict,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.profiling import (
    CampaignProfile,
    CellTiming,
    FuzzProfile,
    ProfileReport,
    profile_simulation,
)

__all__ = [
    "EventKind",
    "EventTracer",
    "TraceEvent",
    "chrome_trace",
    "metrics_dict",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_metrics_json",
    "CampaignProfile",
    "CellTiming",
    "FuzzProfile",
    "ProfileReport",
    "profile_simulation",
]
