"""Observability for the timing simulator.

The unified metrics backbone plus the original tracing tools, all
optional and zero-cost when unused:

* :mod:`repro.obs.metrics` -- the process-wide metrics registry
  (counters, gauges, histograms) with deterministic snapshot/merge
  semantics: multiprocessing campaign workers each accumulate a
  :class:`MetricsSnapshot` that the parent merges *exactly*,
  independent of completion order.
* :mod:`repro.obs.ledger` -- the run ledger: append-only JSONL
  history of every simulate/campaign/frontier/fuzz invocation (git
  SHA, config hash, throughput, cache accounting, metrics snapshot),
  and :func:`record_bench`, the single path that writes the repo-root
  ``BENCH_*.json`` records.
* :mod:`repro.obs.regression` -- the perf-regression tracker behind
  ``repro bench --check``: committed floors + the ledger's trailing
  window.
* :mod:`repro.obs.progress` -- live campaign telemetry: per-cell
  :class:`Heartbeat` events consumed by the ``--progress`` meter.
* :mod:`repro.obs.events` -- a structured event tracer: the pipeline
  emits typed per-instruction lifecycle events (fetch, rename,
  dispatch, steer, wakeup, select, issue, execute, bypass, commit,
  squash) into a bounded ring buffer when a tracer is attached.
* :mod:`repro.obs.export` -- exporters: Chrome ``trace_event`` JSON
  (open in Perfetto or chrome://tracing), machine-readable metrics
  JSON, and Prometheus text / snapshot JSON for registry snapshots,
  each with a validator.
* :mod:`repro.obs.profiling` -- host-profiling harnesses (single-run
  stage timing, campaign and fuzz profiles), all thin views over the
  metrics registry.

See ``docs/observability.md`` for schemas and workflows.
"""

from repro.obs.events import EventKind, EventTracer, TraceEvent
from repro.obs.export import (
    chrome_trace,
    metrics_dict,
    prometheus_text,
    snapshot_payload,
    validate_chrome_trace,
    validate_snapshot_payload,
    write_chrome_trace,
    write_metrics_json,
    write_prometheus_text,
    write_snapshot_json,
)
from repro.obs.ledger import (
    Ledger,
    LedgerEntry,
    record_bench,
    record_profile,
    record_run,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    format_snapshot,
    get_registry,
    set_registry,
)
from repro.obs.profiling import (
    CampaignProfile,
    CellTiming,
    FuzzProfile,
    ProfileReport,
    profile_simulation,
    record_simulation_metrics,
)
from repro.obs.progress import Heartbeat, ProgressMeter

__all__ = [
    "EventKind",
    "EventTracer",
    "TraceEvent",
    "chrome_trace",
    "metrics_dict",
    "prometheus_text",
    "snapshot_payload",
    "validate_chrome_trace",
    "validate_snapshot_payload",
    "write_chrome_trace",
    "write_metrics_json",
    "write_prometheus_text",
    "write_snapshot_json",
    "Ledger",
    "LedgerEntry",
    "record_bench",
    "record_profile",
    "record_run",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "format_snapshot",
    "get_registry",
    "set_registry",
    "CampaignProfile",
    "CellTiming",
    "FuzzProfile",
    "ProfileReport",
    "profile_simulation",
    "record_simulation_metrics",
    "Heartbeat",
    "ProgressMeter",
]
