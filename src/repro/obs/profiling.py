"""Host-side profiling of the simulator itself.

The paper's machines are judged by cycles; the *reproduction* is
judged by wall-clock.  This harness answers "where does simulation
time go?" without external profilers: it wraps one simulator's stage
methods with ``perf_counter`` accounting and reports per-stage
Python-time plus end-to-end throughput (simulated instructions and
cycles per host second).

The instrumentation is per-instance (bound-method shadowing), so
profiled and unprofiled simulators coexist and the unprofiled hot
path is untouched.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

#: Stage methods sampled, with their report labels (pipeline order).
STAGE_METHODS = (
    ("_process_arrivals", "wakeup"),
    ("_commit", "commit"),
    ("_issue", "select/issue"),
    ("_dispatch", "rename/dispatch"),
    ("_fetch", "fetch"),
)


@dataclass
class ProfileReport:
    """Wall-clock accounting of one simulator run.

    Attributes:
        wall_seconds: End-to-end run() time.
        instructions: Committed instructions.
        cycles: Simulated cycles.
        stage_seconds: Python time per pipeline stage (label -> s).
    """

    wall_seconds: float = 0.0
    instructions: int = 0
    cycles: int = 0
    stage_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def instructions_per_second(self) -> float:
        """Simulated instructions per host second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.instructions / self.wall_seconds

    @property
    def cycles_per_second(self) -> float:
        """Simulated cycles per host second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.cycles / self.wall_seconds

    @property
    def overhead_seconds(self) -> float:
        """Run time outside the sampled stage methods (main loop,
        stats bookkeeping, and the samplers themselves)."""
        return max(0.0, self.wall_seconds - sum(self.stage_seconds.values()))

    def format_report(self) -> str:
        """Aligned text report of throughput and the stage breakdown."""
        lines = [
            f"  {self.instructions:,} instructions / {self.cycles:,} cycles "
            f"in {self.wall_seconds:.3f} s host time",
            f"  {self.instructions_per_second:,.0f} simulated "
            f"instructions/s, {self.cycles_per_second:,.0f} cycles/s",
        ]
        total = self.wall_seconds or 1.0
        for label, seconds in sorted(
            self.stage_seconds.items(), key=lambda item: -item[1]
        ):
            lines.append(
                f"    {label:16s} {seconds:8.3f} s  ({100 * seconds / total:5.1f}%)"
            )
        lines.append(
            f"    {'(other)':16s} {self.overhead_seconds:8.3f} s  "
            f"({100 * self.overhead_seconds / total:5.1f}%)"
        )
        return "\n".join(lines)


def _instrument(simulator, stage_seconds: dict[str, float]) -> None:
    """Shadow each stage method on the instance with a timed wrapper."""
    clock = time.perf_counter
    for method_name, label in STAGE_METHODS:
        inner = getattr(simulator, method_name)
        stage_seconds[label] = 0.0

        def timed(inner=inner, label=label):
            start = clock()
            result = inner()
            stage_seconds[label] += clock() - start
            return result

        setattr(simulator, method_name, timed)


def profile_simulation(config, trace, max_cycles=None, tracer=None):
    """Run one simulation with per-stage host-time sampling.

    Args:
        config: A :class:`~repro.uarch.config.MachineConfig`.
        trace: The dynamic trace to replay.
        max_cycles: Forwarded to ``PipelineSimulator.run``.
        tracer: Optional event tracer (to profile tracing overhead).

    Returns:
        ``(stats, report)`` -- the run's
        :class:`~repro.uarch.stats.SimStats` and the
        :class:`ProfileReport`.
    """
    # Imported here: the pipeline imports repro.obs.events at module
    # load, so a top-level import would be circular.
    from repro.uarch.pipeline import PipelineSimulator

    simulator = PipelineSimulator(config, trace, tracer=tracer)
    report = ProfileReport()
    _instrument(simulator, report.stage_seconds)
    start = time.perf_counter()
    stats = simulator.run(max_cycles=max_cycles)
    report.wall_seconds = time.perf_counter() - start
    report.instructions = stats.committed
    report.cycles = stats.cycles
    return stats, report


@dataclass
class CellTiming:
    """Wall-clock record of one campaign cell.

    Attributes:
        label: ``machine/workload`` identifier.
        seconds: Simulation wall-clock (0.0 for cache hits).
        instructions: Committed instructions in the cell.
        source: ``"simulated"`` or ``"cache"``.
    """

    label: str
    seconds: float
    instructions: int
    source: str = "simulated"


@dataclass
class CampaignProfile:
    """Observability record of one campaign run.

    The campaign engine (:mod:`repro.core.campaign`) reports every
    cell here as it completes -- cache hit or simulation, with
    per-cell wall-clock -- plus the failure-handling counters, so a
    run can answer "what did the cache save?", "did anything retry or
    degrade to serial?", and "how many simulated instructions per
    host second did the fleet sustain?".
    """

    jobs: int = 1
    wall_seconds: float = 0.0
    cells: list[CellTiming] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    serial_fallbacks: int = 0

    def note_cell(self, label: str, seconds: float, instructions: int,
                  source: str = "simulated") -> None:
        """Record one completed cell."""
        self.cells.append(CellTiming(label, seconds, instructions, source))

    @property
    def cell_count(self) -> int:
        """All cells, cached and simulated."""
        return len(self.cells)

    @property
    def cache_hits(self) -> int:
        """Cells satisfied from the result cache."""
        return sum(1 for cell in self.cells if cell.source == "cache")

    @property
    def simulated_cells(self) -> int:
        """Cells that actually ran the simulator."""
        return sum(1 for cell in self.cells if cell.source != "cache")

    @property
    def simulated_instructions(self) -> int:
        """Committed instructions across simulated (non-cached) cells."""
        return sum(
            cell.instructions for cell in self.cells if cell.source != "cache"
        )

    @property
    def instructions_per_second(self) -> float:
        """Simulated instructions per host second of campaign wall."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.simulated_instructions / self.wall_seconds

    def to_dict(self) -> dict:
        """JSON-ready primitives (for the metrics exporters)."""
        return {
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "cell_count": self.cell_count,
            "cache_hits": self.cache_hits,
            "simulated_cells": self.simulated_cells,
            "simulated_instructions": self.simulated_instructions,
            "instructions_per_second": self.instructions_per_second,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "serial_fallbacks": self.serial_fallbacks,
            "cells": [
                {
                    "label": cell.label,
                    "seconds": cell.seconds,
                    "instructions": cell.instructions,
                    "source": cell.source,
                }
                for cell in self.cells
            ],
        }

    def format_report(self) -> str:
        """Aligned text summary of the campaign run."""
        lines = [
            f"  {self.cell_count} cells ({self.cache_hits} cache hits, "
            f"{self.simulated_cells} simulated) on {self.jobs} "
            f"worker{'s' if self.jobs != 1 else ''} "
            f"in {self.wall_seconds:.3f} s",
            f"  {self.simulated_instructions:,} simulated instructions "
            f"({self.instructions_per_second:,.0f}/s)",
        ]
        if self.retries or self.timeouts or self.serial_fallbacks:
            lines.append(
                f"  degradation: {self.timeouts} timeouts, "
                f"{self.retries} retries, "
                f"{self.serial_fallbacks} serial fallbacks"
            )
        slowest = sorted(
            (c for c in self.cells if c.source != "cache"),
            key=lambda c: -c.seconds,
        )[:5]
        for cell in slowest:
            lines.append(f"    {cell.label:40s} {cell.seconds:8.3f} s")
        return "\n".join(lines)


@dataclass
class FuzzProfile:
    """Observability record of one differential-fuzzing campaign.

    The fuzzer (:mod:`repro.verify.fuzzer`) reports every case here:
    which machine shape and workload kind it sampled, how long it
    took, and whether any check failed.  The pool-degradation
    counters (``retries`` / ``timeouts`` / ``serial_fallbacks``)
    mirror :class:`CampaignProfile` so the shared campaign worker
    pool can account into either profile type.
    """

    jobs: int = 1
    seed: int = 0
    wall_seconds: float = 0.0
    #: Cases skipped because the time budget ran out.
    skipped: int = 0
    #: Sampled machine shapes -> case counts (coverage evidence).
    shape_counts: dict[str, int] = field(default_factory=dict)
    #: Workload kinds ("program" / "synthetic") -> case counts.
    kind_counts: dict[str, int] = field(default_factory=dict)
    #: Per-case wall-clock, in execution order.
    case_seconds: list[float] = field(default_factory=list)
    failures: int = 0
    retries: int = 0
    timeouts: int = 0
    serial_fallbacks: int = 0

    def note_case(self, shape: str, kind: str, seconds: float,
                  failed: bool) -> None:
        """Record one executed case."""
        self.shape_counts[shape] = self.shape_counts.get(shape, 0) + 1
        self.kind_counts[kind] = self.kind_counts.get(kind, 0) + 1
        self.case_seconds.append(seconds)
        if failed:
            self.failures += 1

    @property
    def cases(self) -> int:
        """Cases actually executed (excludes budget skips)."""
        return len(self.case_seconds)

    @property
    def cases_per_second(self) -> float:
        """Executed cases per host second of campaign wall-clock."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.cases / self.wall_seconds

    def to_dict(self) -> dict:
        """JSON-ready primitives (for the metrics exporters)."""
        return {
            "jobs": self.jobs,
            "seed": self.seed,
            "wall_seconds": self.wall_seconds,
            "cases": self.cases,
            "cases_per_second": self.cases_per_second,
            "failures": self.failures,
            "skipped": self.skipped,
            "shape_counts": dict(sorted(self.shape_counts.items())),
            "kind_counts": dict(sorted(self.kind_counts.items())),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "serial_fallbacks": self.serial_fallbacks,
        }

    def format_report(self) -> str:
        """Aligned text summary of the fuzzing campaign."""
        lines = [
            f"  {self.cases} cases on {self.jobs} "
            f"worker{'s' if self.jobs != 1 else ''} "
            f"in {self.wall_seconds:.2f} s "
            f"({self.cases_per_second:.1f} cases/s), seed {self.seed}",
            f"  {self.failures} failing case"
            f"{'' if self.failures == 1 else 's'}"
            + (f", {self.skipped} skipped (time budget)" if self.skipped
               else ""),
        ]
        shapes = ", ".join(
            f"{name} x{count}"
            for name, count in sorted(self.shape_counts.items())
        )
        kinds = ", ".join(
            f"{name} x{count}"
            for name, count in sorted(self.kind_counts.items())
        )
        lines.append(f"  shapes: {shapes or '(none)'}")
        lines.append(f"  workloads: {kinds or '(none)'}")
        if self.retries or self.timeouts or self.serial_fallbacks:
            lines.append(
                f"  degradation: {self.timeouts} timeouts, "
                f"{self.retries} retries, "
                f"{self.serial_fallbacks} serial fallbacks"
            )
        return "\n".join(lines)


def profile_run(runner, *args, **kwargs):
    """Time an arbitrary callable returning SimStats-like results.

    A thin convenience for harnesses that already own the simulation
    call: ``stats, seconds = profile_run(simulate, config, trace)``.
    """
    start = time.perf_counter()
    result = runner(*args, **kwargs)
    return result, time.perf_counter() - start
