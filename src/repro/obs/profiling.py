"""Host-side profiling of the simulator itself.

The paper's machines are judged by cycles; the *reproduction* is
judged by wall-clock.  This module answers "where does simulation
time go?" and "what did the campaign do?" -- and since the metrics
backbone landed, every profile here is a **thin view over a**
:class:`~repro.obs.metrics.MetricsRegistry`: the counters live in the
registry (one source of truth the exporters, the run ledger, and the
future service tier all read), and the profile classes only add
derived properties and report formatting on top.

The instrumentation in :func:`profile_simulation` is per-instance
(bound-method shadowing), so profiled and unprofiled simulators
coexist and the unprofiled hot path is untouched.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.obs.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    format_snapshot,
)

#: Stage methods sampled, with their report labels (pipeline order).
STAGE_METHODS = (
    ("_process_arrivals", "wakeup"),
    ("_commit", "commit"),
    ("_issue", "select/issue"),
    ("_dispatch", "rename/dispatch"),
    ("_fetch", "fetch"),
)

#: Wall-clock histogram bounds for one campaign cell / fuzz case.
CELL_SECONDS_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0)

#: Registry metric names the campaign-side profiles maintain.  The
#: docs-sync suite pins docs/observability.md to this closed list.
CAMPAIGN_METRIC_NAMES = (
    "campaign_cells_total",
    "campaign_instructions_total",
    "campaign_cell_seconds",
    "pool_retries_total",
    "pool_timeouts_total",
    "pool_serial_fallbacks_total",
)

#: Registry metric names the fuzz profile maintains.
FUZZ_METRIC_NAMES = (
    "fuzz_cases_total",
    "fuzz_failures_total",
    "fuzz_case_seconds",
)

#: Registry metric names one simulation run records.
SIMULATION_METRIC_NAMES = (
    "sim_instructions_total",
    "sim_cycles_total",
    "sim_wall_seconds_total",
    "sim_ipc",
)


def record_simulation_metrics(registry, stats, seconds,
                              machine: str, workload: str) -> None:
    """Fold one simulation run into a registry.

    The single labeling convention every harness shares: single runs
    (``repro stats``), campaign worker cells, and the fuzzer all
    record through here, so their snapshots merge and read the same
    way.
    """
    labels = {"machine": machine, "workload": workload}
    registry.counter(
        "sim_instructions_total", "Committed instructions simulated"
    ).inc(stats.committed, labels)
    registry.counter(
        "sim_cycles_total", "Machine cycles simulated"
    ).inc(stats.cycles, labels)
    registry.counter(
        "sim_wall_seconds_total", "Host wall-clock spent simulating"
    ).inc(seconds, labels)
    registry.gauge(
        "sim_ipc", "Instructions per cycle of the last run"
    ).set(stats.ipc, labels)


#: Help strings for the pipeline-compiler gauges recorded by
#: :func:`record_compile_metrics`.
_COMPILE_GAUGE_HELP = {
    "compile_runners_total": "Pipeline runners compiled this process",
    "compile_cache_hits_total": "Compile-cache hits this process",
    "compile_stale_discards_total":
        "Stale/corrupted compile-cache entries discarded",
    "compile_fallbacks_total":
        "Unsupported-shape fallbacks to the fast interpreter",
    "compile_seconds_total": "Wall-clock spent generating + exec-compiling",
    "compile_cached_runners": "Runners currently memoized in the cache",
}


#: The pipeline-compiler gauge family (documented in
#: docs/observability.md like the counter families above).
COMPILE_METRIC_NAMES = tuple(_COMPILE_GAUGE_HELP)


def record_compile_metrics(registry) -> None:
    """Fold the pipeline compiler's cache activity into a registry.

    Gauges, not counters: the compile cache is process-global and
    cumulative, so per-run snapshots record its current state rather
    than re-incrementing (which would double-count across runs and
    make jobs=1 vs jobs=N campaign merges diverge -- which is also why
    campaign workers deliberately do *not* ship these).
    """
    from repro.uarch.compile import compile_cache_stats

    snapshot = compile_cache_stats()
    for key, value in snapshot.items():
        name = {
            "compiles": "compile_runners_total",
            "cache_hits": "compile_cache_hits_total",
            "stale_discards": "compile_stale_discards_total",
            "fallbacks": "compile_fallbacks_total",
            "compile_seconds": "compile_seconds_total",
            "cached_runners": "compile_cached_runners",
        }[key]
        registry.gauge(name, _COMPILE_GAUGE_HELP[name]).set(float(value))


class _PoolCountersView:
    """Shared pool-degradation accounting over a registry.

    ``retries`` / ``timeouts`` / ``serial_fallbacks`` are registry
    counters exposed as int properties with ``+=``-compatible setters,
    so the campaign pool accounts identically into either profile
    type (this was previously duplicated field plumbing)."""

    _POOL_COUNTER_HELP = {
        "pool_retries_total": "Cell/case resubmissions after failure",
        "pool_timeouts_total": "Per-cell timeouts in the worker pool",
        "pool_serial_fallbacks_total":
            "Cells degraded to in-process serial execution",
    }

    def _pool_counter(self, name: str):
        return self.registry.counter(name, self._POOL_COUNTER_HELP[name])

    def _get_pool(self, name: str) -> int:
        return int(self._pool_counter(name).value())

    def _set_pool(self, name: str, value: int) -> None:
        counter = self._pool_counter(name)
        counter.inc(value - counter.value())

    @property
    def retries(self) -> int:
        return self._get_pool("pool_retries_total")

    @retries.setter
    def retries(self, value: int) -> None:
        self._set_pool("pool_retries_total", value)

    @property
    def timeouts(self) -> int:
        return self._get_pool("pool_timeouts_total")

    @timeouts.setter
    def timeouts(self, value: int) -> None:
        self._set_pool("pool_timeouts_total", value)

    @property
    def serial_fallbacks(self) -> int:
        return self._get_pool("pool_serial_fallbacks_total")

    @serial_fallbacks.setter
    def serial_fallbacks(self, value: int) -> None:
        self._set_pool("pool_serial_fallbacks_total", value)

    def snapshot(self) -> MetricsSnapshot:
        """The profile's registry state, frozen for merge/export."""
        return self.registry.snapshot()

    def format_metrics(self) -> str:
        """The shared snapshot rendering (``repro stats`` parity)."""
        return format_snapshot(self.snapshot())


@dataclass
class ProfileReport:
    """Wall-clock accounting of one simulator run.

    Attributes:
        wall_seconds: End-to-end run() time.
        instructions: Committed instructions.
        cycles: Simulated cycles.
        stage_seconds: Python time per pipeline stage (label -> s).
    """

    wall_seconds: float = 0.0
    instructions: int = 0
    cycles: int = 0
    stage_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def instructions_per_second(self) -> float:
        """Simulated instructions per host second (0.0 when no time
        has accrued -- an empty profile never raises)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.instructions / self.wall_seconds

    @property
    def cycles_per_second(self) -> float:
        """Simulated cycles per host second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.cycles / self.wall_seconds

    @property
    def overhead_seconds(self) -> float:
        """Run time outside the sampled stage methods (main loop,
        stats bookkeeping, and the samplers themselves)."""
        return max(0.0, self.wall_seconds - sum(self.stage_seconds.values()))

    def snapshot(self) -> MetricsSnapshot:
        """This run as a metrics snapshot.

        Stage timings accumulate in a plain dict during the run (a
        registry lookup per stage call would tax the loop being
        measured) and are folded into registry form on demand here.
        """
        registry = MetricsRegistry()
        registry.counter(
            "sim_instructions_total", "Committed instructions simulated"
        ).inc(self.instructions)
        registry.counter(
            "sim_cycles_total", "Machine cycles simulated"
        ).inc(self.cycles)
        registry.counter(
            "sim_wall_seconds_total", "Host wall-clock spent simulating"
        ).inc(self.wall_seconds)
        stage_counter = registry.counter(
            "profile_stage_seconds_total",
            "Host seconds inside each instrumented pipeline stage",
        )
        for label, seconds in self.stage_seconds.items():
            stage_counter.inc(seconds, {"stage": label})
        return registry.snapshot()

    def format_report(self) -> str:
        """Aligned text report of throughput and the stage breakdown."""
        lines = [
            f"  {self.instructions:,} instructions / {self.cycles:,} cycles "
            f"in {self.wall_seconds:.3f} s host time",
            f"  {self.instructions_per_second:,.0f} simulated "
            f"instructions/s, {self.cycles_per_second:,.0f} cycles/s",
        ]
        total = self.wall_seconds or 1.0
        for label, seconds in sorted(
            self.stage_seconds.items(), key=lambda item: -item[1]
        ):
            lines.append(
                f"    {label:16s} {seconds:8.3f} s  ({100 * seconds / total:5.1f}%)"
            )
        lines.append(
            f"    {'(other)':16s} {self.overhead_seconds:8.3f} s  "
            f"({100 * self.overhead_seconds / total:5.1f}%)"
        )
        return "\n".join(lines)


def _instrument(simulator, stage_seconds: dict[str, float]) -> None:
    """Shadow each stage method on the instance with a timed wrapper."""
    clock = time.perf_counter
    for method_name, label in STAGE_METHODS:
        inner = getattr(simulator, method_name)
        stage_seconds[label] = 0.0

        def timed(inner=inner, label=label):
            start = clock()
            result = inner()
            stage_seconds[label] += clock() - start
            return result

        setattr(simulator, method_name, timed)


def profile_simulation(config, trace, max_cycles=None, tracer=None,
                       registry=None):
    """Run one simulation with per-stage host-time sampling.

    Args:
        config: A :class:`~repro.uarch.config.MachineConfig`.
        trace: The dynamic trace to replay.
        max_cycles: Forwarded to ``PipelineSimulator.run``.
        tracer: Optional event tracer (to profile tracing overhead).
        registry: Optional :class:`MetricsRegistry` the run is also
            recorded into (via :func:`record_simulation_metrics`).

    Returns:
        ``(stats, report)`` -- the run's
        :class:`~repro.uarch.stats.SimStats` and the
        :class:`ProfileReport`.
    """
    # Imported here: the pipeline imports repro.obs.events at module
    # load, so a top-level import would be circular.
    from repro.uarch.pipeline import PipelineSimulator

    simulator = PipelineSimulator(config, trace, tracer=tracer)
    report = ProfileReport()
    _instrument(simulator, report.stage_seconds)
    start = time.perf_counter()
    stats = simulator.run(max_cycles=max_cycles)
    report.wall_seconds = time.perf_counter() - start
    report.instructions = stats.committed
    report.cycles = stats.cycles
    if registry is not None:
        record_simulation_metrics(
            registry, stats, report.wall_seconds,
            machine=getattr(config, "name", "unknown"),
            workload=getattr(trace, "name", "unknown"),
        )
    return stats, report


@dataclass
class CellTiming:
    """Wall-clock record of one campaign cell.

    Attributes:
        label: ``machine/workload`` identifier.
        seconds: Simulation wall-clock (0.0 for cache hits).
        instructions: Committed instructions in the cell.
        source: ``"simulated"`` or ``"cache"``.
    """

    label: str
    seconds: float
    instructions: int
    source: str = "simulated"


@dataclass
class CampaignProfile(_PoolCountersView):
    """Observability record of one campaign run -- a registry view.

    The campaign engine (:mod:`repro.core.campaign`) reports every
    cell here as it completes -- cache hit or simulation, with
    per-cell wall-clock -- plus the failure-handling counters, so a
    run can answer "what did the cache save?", "did anything retry or
    degrade to serial?", and "how many simulated instructions per
    host second did the fleet sustain?".  All counts live in
    :attr:`registry`; worker-side snapshots merge into it through
    :meth:`merge_worker_snapshot`.
    """

    jobs: int = 1
    wall_seconds: float = 0.0
    #: Per-cell detail, kept for slowest-cell reporting (the counts
    #: themselves come from the registry).
    cells: list[CellTiming] = field(default_factory=list)
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    def note_cell(self, label: str, seconds: float, instructions: int,
                  source: str = "simulated") -> None:
        """Record one completed cell."""
        self.cells.append(CellTiming(label, seconds, instructions, source))
        labels = {"source": source}
        self.registry.counter(
            "campaign_cells_total", "Campaign cells completed, by source"
        ).inc(1, labels)
        self.registry.counter(
            "campaign_instructions_total",
            "Committed instructions per cell, by source",
        ).inc(instructions, labels)
        self.registry.histogram(
            "campaign_cell_seconds", "Wall-clock per campaign cell",
            buckets=CELL_SECONDS_BUCKETS,
        ).observe(seconds, labels)

    def merge_worker_snapshot(self, payload: dict | None) -> None:
        """Fold one worker's metrics-snapshot document into the
        registry (the parent-side half of the exact-merge contract;
        callers feed payloads in deterministic presentation order)."""
        if not payload:
            return
        self.registry.merge_snapshot(MetricsSnapshot.from_dict(payload))

    @property
    def cell_count(self) -> int:
        """All cells, cached and simulated."""
        return int(self.registry.value("campaign_cells_total",
                                       {"source": "cache"})
                   + self.registry.value("campaign_cells_total",
                                         {"source": "simulated"}))

    @property
    def cache_hits(self) -> int:
        """Cells satisfied from the result cache."""
        return int(self.registry.value("campaign_cells_total",
                                       {"source": "cache"}))

    @property
    def simulated_cells(self) -> int:
        """Cells that actually ran the simulator."""
        return self.cell_count - self.cache_hits

    @property
    def simulated_instructions(self) -> int:
        """Committed instructions across simulated (non-cached) cells."""
        return int(self.registry.value("campaign_instructions_total",
                                       {"source": "simulated"}))

    @property
    def instructions_per_second(self) -> float:
        """Simulated instructions per host second of campaign wall
        (0.0 when no time has accrued -- never a ZeroDivisionError)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.simulated_instructions / self.wall_seconds

    def to_dict(self) -> dict:
        """JSON-ready primitives (for the metrics exporters)."""
        return {
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "cell_count": self.cell_count,
            "cache_hits": self.cache_hits,
            "simulated_cells": self.simulated_cells,
            "simulated_instructions": self.simulated_instructions,
            "instructions_per_second": self.instructions_per_second,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "serial_fallbacks": self.serial_fallbacks,
            "cells": [
                {
                    "label": cell.label,
                    "seconds": cell.seconds,
                    "instructions": cell.instructions,
                    "source": cell.source,
                }
                for cell in self.cells
            ],
            "metrics": self.snapshot().to_dict(),
        }

    def format_report(self) -> str:
        """Aligned text summary of the campaign run."""
        lines = [
            f"  {self.cell_count} cells ({self.cache_hits} cache hits, "
            f"{self.simulated_cells} simulated) on {self.jobs} "
            f"worker{'s' if self.jobs != 1 else ''} "
            f"in {self.wall_seconds:.3f} s",
            f"  {self.simulated_instructions:,} simulated instructions "
            f"({self.instructions_per_second:,.0f}/s)",
        ]
        if self.retries or self.timeouts or self.serial_fallbacks:
            lines.append(
                f"  degradation: {self.timeouts} timeouts, "
                f"{self.retries} retries, "
                f"{self.serial_fallbacks} serial fallbacks"
            )
        slowest = sorted(
            (c for c in self.cells if c.source != "cache"),
            key=lambda c: -c.seconds,
        )[:5]
        for cell in slowest:
            lines.append(f"    {cell.label:40s} {cell.seconds:8.3f} s")
        return "\n".join(lines)


@dataclass
class FuzzProfile(_PoolCountersView):
    """Observability record of one differential-fuzzing campaign.

    The fuzzer (:mod:`repro.verify.fuzzer`) reports every case here:
    which machine shape and workload kind it sampled, how long it
    took, and whether any check failed.  Counts live in
    :attr:`registry`; the pool-degradation counters (``retries`` /
    ``timeouts`` / ``serial_fallbacks``) are the same registry series
    :class:`CampaignProfile` uses, so the shared campaign worker pool
    accounts into either profile type identically.
    """

    jobs: int = 1
    seed: int = 0
    wall_seconds: float = 0.0
    #: Cases skipped because the time budget ran out.
    skipped: int = 0
    #: Per-case wall-clock, in execution order.
    case_seconds: list[float] = field(default_factory=list)
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    def note_case(self, shape: str, kind: str, seconds: float,
                  failed: bool) -> None:
        """Record one executed case."""
        self.case_seconds.append(seconds)
        self.registry.counter(
            "fuzz_cases_total", "Fuzz cases executed, by shape and kind"
        ).inc(1, {"shape": shape, "kind": kind})
        self.registry.histogram(
            "fuzz_case_seconds", "Wall-clock per fuzz case",
            buckets=CELL_SECONDS_BUCKETS,
        ).observe(seconds)
        if failed:
            self.registry.counter(
                "fuzz_failures_total", "Fuzz cases with failing checks"
            ).inc(1)

    @property
    def shape_counts(self) -> dict[str, int]:
        """Sampled machine shapes -> case counts (coverage evidence)."""
        counts: dict[str, int] = {}
        for labels, value in self.registry.labeled_values(
                "fuzz_cases_total").items():
            shape = dict(labels)["shape"]
            counts[shape] = counts.get(shape, 0) + int(value)
        return dict(sorted(counts.items()))

    @property
    def kind_counts(self) -> dict[str, int]:
        """Workload kinds ("program"/"synthetic") -> case counts."""
        counts: dict[str, int] = {}
        for labels, value in self.registry.labeled_values(
                "fuzz_cases_total").items():
            kind = dict(labels)["kind"]
            counts[kind] = counts.get(kind, 0) + int(value)
        return dict(sorted(counts.items()))

    @property
    def failures(self) -> int:
        """Cases with at least one failing check."""
        return int(self.registry.value("fuzz_failures_total"))

    @property
    def cases(self) -> int:
        """Cases actually executed (excludes budget skips)."""
        return len(self.case_seconds)

    @property
    def cases_per_second(self) -> float:
        """Executed cases per host second of campaign wall-clock
        (0.0 when no time has accrued -- never a ZeroDivisionError)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.cases / self.wall_seconds

    def to_dict(self) -> dict:
        """JSON-ready primitives (for the metrics exporters)."""
        return {
            "jobs": self.jobs,
            "seed": self.seed,
            "wall_seconds": self.wall_seconds,
            "cases": self.cases,
            "cases_per_second": self.cases_per_second,
            "failures": self.failures,
            "skipped": self.skipped,
            "shape_counts": self.shape_counts,
            "kind_counts": self.kind_counts,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "serial_fallbacks": self.serial_fallbacks,
            "metrics": self.snapshot().to_dict(),
        }

    def format_report(self) -> str:
        """Aligned text summary of the fuzzing campaign."""
        lines = [
            f"  {self.cases} cases on {self.jobs} "
            f"worker{'s' if self.jobs != 1 else ''} "
            f"in {self.wall_seconds:.2f} s "
            f"({self.cases_per_second:.1f} cases/s), seed {self.seed}",
            f"  {self.failures} failing case"
            f"{'' if self.failures == 1 else 's'}"
            + (f", {self.skipped} skipped (time budget)" if self.skipped
               else ""),
        ]
        shapes = ", ".join(
            f"{name} x{count}"
            for name, count in self.shape_counts.items()
        )
        kinds = ", ".join(
            f"{name} x{count}"
            for name, count in self.kind_counts.items()
        )
        lines.append(f"  shapes: {shapes or '(none)'}")
        lines.append(f"  workloads: {kinds or '(none)'}")
        if self.retries or self.timeouts or self.serial_fallbacks:
            lines.append(
                f"  degradation: {self.timeouts} timeouts, "
                f"{self.retries} retries, "
                f"{self.serial_fallbacks} serial fallbacks"
            )
        return "\n".join(lines)


def profile_run(runner, *args, **kwargs):
    """Time an arbitrary callable returning SimStats-like results.

    A thin convenience for harnesses that already own the simulation
    call: ``stats, seconds = profile_run(simulate, config, trace)``.
    """
    start = time.perf_counter()
    result = runner(*args, **kwargs)
    return result, time.perf_counter() - start
