"""The run ledger: append-only JSONL history of every invocation.

A calibrated model is only trustworthy while it is continuously
measured against recorded reference numbers.  The ledger is that
record: every ``simulate`` / ``campaign`` / ``frontier`` / ``fuzz``
invocation appends one JSON line under ``.repro/ledger/`` -- git SHA,
config hash, wall time, throughput, cache accounting, and the full
:class:`~repro.obs.metrics.MetricsSnapshot` -- so cross-run history
(the trailing window the regression tracker compares against) exists
without any external service.

Writes are atomic at the line level: an entry is serialised first and
appended with a single ``write`` on an append-mode handle, and
readers skip malformed lines, so a killed process can never corrupt
history that a later run trusts.  Compaction (``gc``) rewrites the
file through a temp file + rename.

:func:`record_bench` is the single path through which benchmark
harnesses write the repo-root ``BENCH_*.json`` records (schema-
versioned, atomic temp-file + rename).
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Ledger entry schema (bumped on incompatible layout changes).
LEDGER_SCHEMA = 1

#: BENCH_*.json schema written by :func:`record_bench`.
BENCH_SCHEMA = 1

#: Default ledger location, relative to the working directory.
DEFAULT_LEDGER_ROOT = Path(".repro") / "ledger"

#: Environment override for the ledger directory (tests, CI).
LEDGER_DIR_ENV = "REPRO_LEDGER_DIR"

#: Entry kinds the CLI records (the ledger accepts any string).
RUN_KINDS = ("simulate", "campaign", "frontier", "fuzz", "bench", "service")


def ledger_root(root: str | Path | None = None) -> Path:
    """Resolve the ledger directory: explicit > env > default."""
    if root is not None:
        return Path(root)
    env = os.environ.get(LEDGER_DIR_ENV)
    if env:
        return Path(env)
    return DEFAULT_LEDGER_ROOT


def git_sha() -> str:
    """The current git commit SHA, or ``"unknown"`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


@dataclass
class LedgerEntry:
    """One recorded invocation.

    Attributes:
        kind: Invocation family (``simulate``/``campaign``/...).
        run_id: Content hash of the entry (stable identifier).
        timestamp: Unix seconds at record time.
        git_sha: Repository revision the run executed on.
        config_hash: Content address of the run's configuration
            (machine grid, workload set, budget) -- empty when the
            run has no single configuration.
        wall_seconds: End-to-end wall clock.
        instructions_per_second: Simulated throughput (0.0 when the
            run simulated nothing, e.g. a fully warm cache).
        cache_hits / simulated_cells / cell_count: Campaign-cache
            accounting (all zero for non-campaign kinds).
        metrics: The run's metrics-snapshot document (or None).
        extra: Kind-specific scalars (seed, cases, BIPS, ...).
    """

    kind: str
    run_id: str = ""
    timestamp: float = 0.0
    git_sha: str = "unknown"
    config_hash: str = ""
    wall_seconds: float = 0.0
    instructions_per_second: float = 0.0
    cache_hits: int = 0
    simulated_cells: int = 0
    cell_count: int = 0
    metrics: dict | None = None
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready primitives (one ledger line)."""
        return {
            "schema": LEDGER_SCHEMA,
            "kind": self.kind,
            "run_id": self.run_id,
            "timestamp": self.timestamp,
            "git_sha": self.git_sha,
            "config_hash": self.config_hash,
            "wall_seconds": self.wall_seconds,
            "instructions_per_second": self.instructions_per_second,
            "cache_hits": self.cache_hits,
            "simulated_cells": self.simulated_cells,
            "cell_count": self.cell_count,
            "metrics": self.metrics,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> LedgerEntry:
        """Inverse of :meth:`to_dict`.

        Raises:
            ValueError: for foreign or version-mismatched payloads.
        """
        if not isinstance(payload, dict):
            raise ValueError("ledger entry must be a JSON object")
        if payload.get("schema") != LEDGER_SCHEMA:
            raise ValueError(
                f"unsupported ledger schema {payload.get('schema')!r}"
            )
        if not isinstance(payload.get("kind"), str):
            raise ValueError("ledger entry must carry a string 'kind'")
        return cls(
            kind=payload["kind"],
            run_id=payload.get("run_id", ""),
            timestamp=payload.get("timestamp", 0.0),
            git_sha=payload.get("git_sha", "unknown"),
            config_hash=payload.get("config_hash", ""),
            wall_seconds=payload.get("wall_seconds", 0.0),
            instructions_per_second=payload.get(
                "instructions_per_second", 0.0),
            cache_hits=payload.get("cache_hits", 0),
            simulated_cells=payload.get("simulated_cells", 0),
            cell_count=payload.get("cell_count", 0),
            metrics=payload.get("metrics"),
            extra=payload.get("extra", {}),
        )

    @property
    def cache_hit_rate(self) -> float:
        """Cache hits over all cells (0.0 for cell-less runs)."""
        if self.cell_count <= 0:
            return 0.0
        return self.cache_hits / self.cell_count

    def summary_row(self) -> list:
        """Display row for ``repro ledger list``."""
        return [
            self.run_id[:12],
            self.kind,
            self.git_sha[:8],
            round(self.wall_seconds, 3),
            round(self.instructions_per_second),
            f"{self.cache_hits}/{self.cell_count}",
        ]


class Ledger:
    """The append-only JSONL run history under one directory."""

    FILENAME = "runs.jsonl"

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = ledger_root(root)

    @property
    def path(self) -> Path:
        """The ledger file."""
        return self.root / self.FILENAME

    def append(self, entry: LedgerEntry) -> LedgerEntry:
        """Stamp and persist one entry; returns it with its run_id.

        The line is fully serialised before the write and appended in
        a single call, so concurrent appenders interleave whole lines
        (and a torn final line is skipped by readers, never trusted).
        """
        if not entry.timestamp:
            entry.timestamp = time.time()
        if not entry.run_id:
            entry.run_id = _run_id(entry)
        line = json.dumps(entry.to_dict(), sort_keys=True,
                          ensure_ascii=False, separators=(",", ":"))
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
        return entry

    def entries(self, kind: str | None = None,
                limit: int | None = None) -> list[LedgerEntry]:
        """All readable entries, oldest first.

        Malformed or foreign lines are skipped silently -- the ledger
        is advisory history, never a load-bearing input that may
        crash a run.

        Args:
            kind: Keep only entries of this kind.
            limit: Keep only the *newest* ``limit`` entries (applied
                after the kind filter).
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return []
        entries = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = LedgerEntry.from_dict(json.loads(line))
            except (ValueError, KeyError, TypeError):
                continue
            if kind is None or entry.kind == kind:
                entries.append(entry)
        if limit is not None:
            entries = entries[-limit:]
        return entries

    def find(self, run_id: str) -> LedgerEntry | None:
        """Look one entry up by (a prefix of) its run_id."""
        for entry in reversed(self.entries()):
            if entry.run_id.startswith(run_id):
                return entry
        return None

    def gc(self, keep: int) -> int:
        """Compact to the newest ``keep`` entries; returns removed count.

        The rewrite is atomic (temp file + rename), so a crash leaves
        either the old or the new ledger, never a truncated one.
        """
        if keep < 0:
            raise ValueError(f"keep must be >= 0, got {keep}")
        entries = self.entries()
        kept = entries[len(entries) - keep:] if keep else []
        removed = len(entries) - len(kept)
        if removed <= 0:
            return 0
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for entry in kept:
                handle.write(json.dumps(entry.to_dict(), sort_keys=True,
                                        ensure_ascii=False,
                                        separators=(",", ":")) + "\n")
        tmp.replace(self.path)
        return removed


def _run_id(entry: LedgerEntry) -> str:
    """Content hash of an entry (sans run_id): the stable identifier."""
    payload = entry.to_dict()
    payload.pop("run_id", None)
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":"),
                   ensure_ascii=False).encode("utf-8")
    )
    return digest.hexdigest()[:16]


def diff_entries(old: LedgerEntry, new: LedgerEntry) -> list[tuple]:
    """Field-by-field numeric comparison of two entries.

    Returns ``(field, old, new, delta)`` rows for the scalar fields,
    the raw material of ``repro ledger diff``.
    """
    rows = []
    for name in ("wall_seconds", "instructions_per_second", "cache_hits",
                 "simulated_cells", "cell_count"):
        before = getattr(old, name)
        after = getattr(new, name)
        rows.append((name, before, after, after - before))
    rows.append(("cache_hit_rate", round(old.cache_hit_rate, 4),
                 round(new.cache_hit_rate, 4),
                 round(new.cache_hit_rate - old.cache_hit_rate, 4)))
    return rows


def record_run(
    kind: str,
    *,
    wall_seconds: float = 0.0,
    instructions_per_second: float = 0.0,
    cache_hits: int = 0,
    simulated_cells: int = 0,
    cell_count: int = 0,
    config_hash: str = "",
    snapshot=None,
    extra: dict | None = None,
    root: str | Path | None = None,
) -> LedgerEntry:
    """Build and append one run's ledger entry.

    ``snapshot`` is an optional
    :class:`~repro.obs.metrics.MetricsSnapshot` (stored as its JSON
    document).  Returns the appended entry.
    """
    entry = LedgerEntry(
        kind=kind,
        git_sha=git_sha(),
        config_hash=config_hash,
        wall_seconds=wall_seconds,
        instructions_per_second=instructions_per_second,
        cache_hits=cache_hits,
        simulated_cells=simulated_cells,
        cell_count=cell_count,
        metrics=snapshot.to_dict() if snapshot is not None else None,
        extra=dict(extra or {}),
    )
    return Ledger(root).append(entry)


def record_profile(kind: str, profile, *, config_hash: str = "",
                   extra: dict | None = None,
                   root: str | Path | None = None) -> LedgerEntry:
    """Append a :class:`~repro.obs.profiling.CampaignProfile`-shaped
    profile (campaign/frontier) as one ledger entry."""
    return record_run(
        kind,
        wall_seconds=profile.wall_seconds,
        instructions_per_second=profile.instructions_per_second,
        cache_hits=profile.cache_hits,
        simulated_cells=profile.simulated_cells,
        cell_count=profile.cell_count,
        config_hash=config_hash,
        snapshot=profile.snapshot(),
        extra=extra,
        root=root,
    )


def record_bench(path: str | Path, kind: str, measured: dict,
                 recorded: dict | None = None) -> dict:
    """Single-sourced, atomic ``BENCH_*.json`` writer.

    Every benchmark harness folds its measurements through here: the
    existing payload (with its hand-curated ``recorded`` block) is
    preserved, ``measured`` replaces the previous measurement,
    ``bench_schema`` stamps the format, and the write is atomic
    (temp file + rename).  Returns the written payload.
    """
    path = Path(path)
    payload: dict = {"kind": kind}
    try:
        existing = json.loads(path.read_text(encoding="utf-8"))
        if isinstance(existing, dict):
            payload = existing
    except (OSError, ValueError):
        pass  # fresh payload; the recorded block is optional
    payload["kind"] = payload.get("kind", kind)
    payload["bench_schema"] = BENCH_SCHEMA
    payload["measured"] = measured
    if recorded is not None:
        payload["recorded"] = recorded
    tmp = path.with_suffix(".tmp")
    tmp.write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    tmp.replace(path)
    return payload
