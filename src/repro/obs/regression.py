"""Performance-regression tracking (``repro bench --check``).

Compares the *current* measurements against two references:

* the committed floors in the repo-root ``BENCH_*.json`` records --
  ``min_rate_floor`` / ``seed_min_rate_floor`` for simulator
  throughput, ``min_warm_speedup_floor`` for the campaign cache,
  ``min_warm_qps_floor`` for warm service throughput,
  ``min_gen_inst_per_s_floor`` for workload trace generation --
  which are hard gates (a measurement below its floor is a
  regression, full stop); and
* the run ledger's trailing window -- the newest entry of each kind
  against the mean of the previous ones, failing when throughput or
  cache-hit rate drops by more than ``threshold`` (a *relative* gate
  that catches slow erosion the absolute floors are too loose for).

Everything here is a pure function over loaded payloads, so the CLI,
CI, and the tests drive the exact same checks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.obs.ledger import Ledger, LedgerEntry

#: Maximum tolerated relative drop vs the trailing-window mean before
#: the check fails (0.5 = current may not fall below half the mean).
DEFAULT_THRESHOLD = 0.5

#: Ledger entries (per kind) the trailing window averages over.
DEFAULT_WINDOW = 5

#: The repo-root bench records the tracker reads.
BENCH_FILES = ("BENCH_simulator.json", "BENCH_frontier.json",
               "BENCH_service.json", "BENCH_workloads.json")


@dataclass(frozen=True)
class RegressionFinding:
    """One detected regression (or reference problem)."""

    subject: str
    measured: float
    reference: float
    source: str  # "floor" or "trailing"
    detail: str

    def format_row(self) -> str:
        """One aligned report line."""
        return (f"  REGRESSION {self.subject}: measured {self.measured:,.1f} "
                f"vs {self.source} reference {self.reference:,.1f} "
                f"({self.detail})")


def check_simulator_bench(payload: dict) -> list[RegressionFinding]:
    """Measured simulator rates against the committed floors.

    Fast-path entries must clear ``recorded.min_rate_floor``; the
    frozen reference model (labels containing ``"(reference)"``) must
    clear ``recorded.seed_min_rate_floor``; the compiled pipeline
    (labels containing ``"(compiled)"``) must clear
    ``recorded.compiled_min_rate_floor``.
    """
    findings: list[RegressionFinding] = []
    recorded = payload.get("recorded", {})
    fast_floor = recorded.get("min_rate_floor")
    seed_floor = recorded.get("seed_min_rate_floor")
    compiled_floor = recorded.get("compiled_min_rate_floor")
    for label, rate in sorted(payload.get("measured", {}).items()):
        if "(reference)" in label:
            floor = seed_floor
        elif "(compiled)" in label:
            floor = compiled_floor
        else:
            floor = fast_floor
        if floor is None:
            continue
        if rate < floor:
            findings.append(RegressionFinding(
                subject=f"simulator throughput {label}",
                measured=float(rate),
                reference=float(floor),
                source="floor",
                detail="inst/s below the committed BENCH_simulator.json "
                       "floor",
            ))
    return findings


def check_frontier_bench(payload: dict) -> list[RegressionFinding]:
    """Measured warm-cache speedup against the committed floor."""
    findings: list[RegressionFinding] = []
    measured = payload.get("measured", {})
    floor = payload.get("recorded", {}).get("min_warm_speedup_floor")
    speedup = measured.get("warm_speedup")
    if floor is not None and speedup is not None and speedup < floor:
        findings.append(RegressionFinding(
            subject="frontier warm-cache speedup",
            measured=float(speedup),
            reference=float(floor),
            source="floor",
            detail="warm/cold speedup below the committed "
                   "BENCH_frontier.json floor",
        ))
    return findings


def check_service_bench(payload: dict) -> list[RegressionFinding]:
    """Measured warm-serving throughput against the committed floor."""
    findings: list[RegressionFinding] = []
    measured = payload.get("measured", {})
    floor = payload.get("recorded", {}).get("min_warm_qps_floor")
    qps = measured.get("warm_qps")
    if floor is not None and qps is not None and qps < floor:
        findings.append(RegressionFinding(
            subject="service warm-cache throughput",
            measured=float(qps),
            reference=float(floor),
            source="floor",
            detail="warm queries/sec below the committed "
                   "BENCH_service.json floor",
        ))
    return findings


def check_workloads_bench(payload: dict) -> list[RegressionFinding]:
    """Measured trace-generation rates against the committed floor.

    Every ``measured`` entry (kernel generation, synthetic generation,
    external-trace round-trip) must clear
    ``recorded.min_gen_inst_per_s_floor``.
    """
    findings: list[RegressionFinding] = []
    floor = payload.get("recorded", {}).get("min_gen_inst_per_s_floor")
    if floor is None:
        return findings
    for label, rate in sorted(payload.get("measured", {}).items()):
        if rate < floor:
            findings.append(RegressionFinding(
                subject=f"workload generation {label}",
                measured=float(rate),
                reference=float(floor),
                source="floor",
                detail="inst/s below the committed BENCH_workloads.json "
                       "floor",
            ))
    return findings


def check_trailing_window(
    entries: list[LedgerEntry],
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
) -> list[RegressionFinding]:
    """The newest ledger entry of each kind vs its trailing window.

    For every kind with at least two comparable entries, the newest
    entry's simulated throughput (and, for campaign-shaped kinds, its
    cache-hit rate) must not fall more than ``threshold`` below the
    mean of the preceding ``window`` entries.  Entries that simulated
    nothing (fully warm caches) are excluded from the throughput
    comparison -- a warm rerun is a success, not a regression.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    findings: list[RegressionFinding] = []
    by_kind: dict[str, list[LedgerEntry]] = {}
    for entry in entries:
        by_kind.setdefault(entry.kind, []).append(entry)
    for kind in sorted(by_kind):
        history = by_kind[kind]
        rated = [e for e in history if e.instructions_per_second > 0]
        if len(rated) >= 2:
            current, trailing = rated[-1], rated[-1 - window:-1]
            mean = sum(e.instructions_per_second for e in trailing) / len(
                trailing)
            floor = (1.0 - threshold) * mean
            if current.instructions_per_second < floor:
                findings.append(RegressionFinding(
                    subject=f"{kind} throughput (run {current.run_id[:12]})",
                    measured=current.instructions_per_second,
                    reference=mean,
                    source="trailing",
                    detail=f"inst/s dropped >{threshold:.0%} below the "
                           f"trailing-{len(trailing)} mean",
                ))
        celled = [e for e in history if e.cell_count > 0]
        if len(celled) >= 2:
            current, trailing = celled[-1], celled[-1 - window:-1]
            mean = sum(e.cache_hit_rate for e in trailing) / len(trailing)
            floor = (1.0 - threshold) * mean
            if mean > 0 and current.cache_hit_rate < floor:
                findings.append(RegressionFinding(
                    subject=f"{kind} cache-hit rate "
                            f"(run {current.run_id[:12]})",
                    measured=current.cache_hit_rate,
                    reference=mean,
                    source="trailing",
                    detail=f"hit rate dropped >{threshold:.0%} below the "
                           f"trailing-{len(trailing)} mean",
                ))
    return findings


def load_bench(path: str | Path) -> dict:
    """Load one BENCH_*.json payload (empty dict when unreadable)."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    return payload if isinstance(payload, dict) else {}


def check_all(
    bench_dir: str | Path = ".",
    ledger: Ledger | None = None,
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
) -> list[RegressionFinding]:
    """Every check the ``repro bench --check`` gate runs."""
    bench_dir = Path(bench_dir)
    findings = check_simulator_bench(
        load_bench(bench_dir / "BENCH_simulator.json"))
    findings.extend(check_frontier_bench(
        load_bench(bench_dir / "BENCH_frontier.json")))
    findings.extend(check_service_bench(
        load_bench(bench_dir / "BENCH_service.json")))
    findings.extend(check_workloads_bench(
        load_bench(bench_dir / "BENCH_workloads.json")))
    if ledger is not None:
        findings.extend(check_trailing_window(
            ledger.entries(), threshold=threshold, window=window))
    return findings


def format_findings(findings: list[RegressionFinding]) -> str:
    """Human-readable gate report."""
    if not findings:
        return "  no regressions: all measurements clear their floors"
    return "\n".join(finding.format_row() for finding in findings)
