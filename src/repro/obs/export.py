"""Exporters for traces and metrics.

* :func:`chrome_trace` converts tracer events into the Chrome
  ``trace_event`` JSON format (the "JSON Array Format" with
  ``traceEvents``), which Perfetto and chrome://tracing open
  directly.  One timeline row (``tid``) per dynamic instruction, one
  process (``pid``) per cluster; stage spans are complete ("X")
  events and point events (wakeup, bypass, squash) are instants.
  Cycles are exported as microseconds, so "1 us" in the viewer reads
  as one machine cycle.
* :func:`metrics_dict` packages a :class:`~repro.uarch.stats.SimStats`
  (via its audited ``to_dict``) with derived ratios for benchmark
  harnesses and dashboards.
* :func:`prometheus_text` / :func:`snapshot_payload` export a
  :class:`~repro.obs.metrics.MetricsSnapshot` as Prometheus text
  exposition format and as versioned JSON.  Both are deterministic:
  the same snapshot always produces the same bytes, and
  :meth:`~repro.obs.metrics.MetricsSnapshot.merge_all` is
  order-independent, so the exports of a merged campaign are
  byte-identical regardless of worker arrival order.

All formats have validators (:func:`validate_chrome_trace`,
:func:`validate_metrics`, :func:`validate_snapshot_payload`) used by
the CLI and the smoke tests.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.events import EventKind, TraceEvent
from repro.obs.metrics import MetricsSnapshot, _labels_from_key
from repro.uarch.stats import SimStats

#: Format marker embedded in metrics payloads.
METRICS_FORMAT_VERSION = 1

#: Instant-event kinds exported as Chrome "i" events.
_INSTANT_KINDS = {
    EventKind.WAKEUP,
    EventKind.BYPASS,
    EventKind.SQUASH,
    EventKind.RENAME,
    EventKind.STEER,
    EventKind.SELECT,
}

#: Stage spans derived from lifecycle events: name -> (start, end).
_SPAN_STAGES = (
    ("frontend", EventKind.FETCH, EventKind.DISPATCH),
    ("window", EventKind.DISPATCH, EventKind.ISSUE),
    ("commit-wait", EventKind.ISSUE, EventKind.COMMIT),
)


def chrome_trace(
    events: list[TraceEvent], stats: SimStats | None = None
) -> dict:
    """Build a Chrome ``trace_event`` payload from tracer events.

    Args:
        events: Events from an :class:`~repro.obs.events.EventTracer`.
        stats: Optional run statistics, embedded as ``metadata``.

    Returns:
        A JSON-ready dict with ``traceEvents`` (sorted by timestamp)
        and ``displayTimeUnit``.
    """
    trace_events: list[dict] = []
    first_cycle: dict[tuple[int, EventKind], int] = {}
    labels: dict[int, str] = {}
    pids: set[int] = set()
    for event in events:
        pid = max(event.cluster, 0)
        pids.add(pid)
        key = (event.seq, event.kind)
        if key not in first_cycle:
            first_cycle[key] = event.cycle
        if event.kind is EventKind.FETCH and event.detail:
            labels[event.seq] = event.detail
        if event.kind in _INSTANT_KINDS:
            trace_events.append(
                {
                    "name": event.kind.value,
                    "ph": "i",
                    "s": "t",
                    "ts": event.cycle,
                    "pid": pid,
                    "tid": event.seq,
                    "args": {"detail": event.detail},
                }
            )
        elif event.kind is EventKind.EXECUTE:
            trace_events.append(
                {
                    "name": "execute",
                    "ph": "X",
                    "ts": event.cycle,
                    "dur": max(event.dur, 0),
                    "pid": pid,
                    "tid": event.seq,
                    "args": {"detail": event.detail},
                }
            )
    # Stage spans between lifecycle milestones (emitted per
    # instruction that reached the later milestone inside the ring).
    for name, start_kind, end_kind in _SPAN_STAGES:
        for (seq, kind), cycle in first_cycle.items():
            if kind is not end_kind:
                continue
            start = first_cycle.get((seq, start_kind))
            if start is None:
                continue
            trace_events.append(
                {
                    "name": name,
                    "ph": "X",
                    "ts": start,
                    "dur": max(cycle - start, 0),
                    "pid": 0,
                    "tid": seq,
                    "args": {},
                }
            )
    for seq, opcode in labels.items():
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "pid": 0,
                "tid": seq,
                "args": {"name": f"i{seq} {opcode}"},
            }
        )
    for pid in sorted(pids):
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": f"cluster {pid}"},
            }
        )
    trace_events.sort(
        key=lambda e: (-1 if e["ph"] == "M" else e["ts"], e["tid"])
    )
    payload: dict = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    }
    if stats is not None:
        payload["metadata"] = {"repro-stats": stats.to_dict()}
    return payload


def validate_chrome_trace(payload: dict) -> None:
    """Check a payload is structurally valid Chrome trace JSON.

    Raises:
        ValueError: describing the first problem found.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace payload must have a 'traceEvents' list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValueError(f"{where} missing required key {key!r}")
        if not isinstance(event["name"], str):
            raise ValueError(f"{where} name must be a string")
        phase = event["ph"]
        if phase not in ("X", "i", "M", "B", "E", "C"):
            raise ValueError(f"{where} has unsupported phase {phase!r}")
        if phase != "M":
            ts = event.get("ts")
            if not isinstance(ts, int) or ts < 0:
                raise ValueError(f"{where} ts must be a non-negative integer")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, int) or dur < 0:
                raise ValueError(f"{where} dur must be a non-negative integer")
        if phase == "i" and event.get("s") not in ("t", "p", "g"):
            raise ValueError(f"{where} instant scope must be t/p/g")
        if not isinstance(event.get("args", {}), dict):
            raise ValueError(f"{where} args must be an object")
    json.dumps(payload)  # must be serialisable


def event_chains(events: list[TraceEvent]) -> dict[int, list[TraceEvent]]:
    """Group events by instruction, preserving emission order."""
    grouped: dict[int, list[TraceEvent]] = {}
    for event in events:
        grouped.setdefault(event.seq, []).append(event)
    return grouped


def write_chrome_trace(
    path: str | Path, events: list[TraceEvent], stats: SimStats | None = None
) -> dict:
    """Export, validate, and write a Chrome trace; returns the payload."""
    payload = chrome_trace(events, stats=stats)
    validate_chrome_trace(payload)
    Path(path).write_text(
        json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8"
    )
    return payload


def metrics_dict(stats: SimStats) -> dict:
    """Machine-readable metrics payload for one simulation run."""
    return {
        "format_version": METRICS_FORMAT_VERSION,
        "kind": "repro-metrics",
        "stats": stats.to_dict(),
        "derived": {
            "ipc": stats.ipc,
            "branch_accuracy": stats.branch_accuracy,
            "cache_miss_rate": stats.cache_miss_rate,
            "mean_occupancy": stats.mean_occupancy,
            "inter_cluster_bypass_frequency":
                stats.inter_cluster_bypass_frequency,
        },
    }


def validate_metrics(payload: dict) -> None:
    """Check (and round-trip) a metrics payload.

    Raises:
        ValueError: on structural problems, unknown stall causes, or
        stats that fail :meth:`SimStats.validate`.
    """
    if payload.get("kind") != "repro-metrics":
        raise ValueError("not a repro-metrics payload")
    if payload.get("format_version") != METRICS_FORMAT_VERSION:
        raise ValueError(
            f"unsupported metrics format {payload.get('format_version')!r}"
        )
    SimStats.from_dict(payload["stats"]).validate()


def write_metrics_json(path: str | Path, stats: SimStats) -> dict:
    """Export, validate, and write metrics JSON; returns the payload."""
    payload = metrics_dict(stats)
    validate_metrics(payload)
    Path(path).write_text(
        json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8"
    )
    return payload


# ----------------------------------------------------------------------
# metrics-snapshot exporters (Prometheus text + versioned JSON)
# ----------------------------------------------------------------------


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition rules."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _format_value(value) -> str:
    """Deterministic sample formatting: ints bare, floats via repr."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _series(name: str, labels, extra: tuple = ()) -> str:
    """One ``name{key="value",...}`` series head."""
    pairs = list(labels) + list(extra)
    if not pairs:
        return name
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in pairs
    )
    return f"{name}{{{inner}}}"


def prometheus_text(snapshot: MetricsSnapshot) -> str:
    """A snapshot in the Prometheus text exposition format.

    Deterministic: metrics sort by name, samples by canonical label
    key, and histograms export cumulative ``_bucket`` series plus
    ``_sum``/``_count`` -- so byte comparison is a valid equality
    check for merged snapshots.
    """
    lines: list[str] = []
    for name in sorted(snapshot.metrics):
        entry = snapshot.metrics[name]
        if entry.get("help"):
            lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {entry['kind']}")
        if entry["kind"] == "histogram":
            bounds = entry["buckets"]
            for key, data in entry["samples"].items():
                labels = _labels_from_key(key)
                cumulative = 0
                for bound, count in zip(bounds, data["counts"]):
                    cumulative += count
                    lines.append(
                        f"{_series(name + '_bucket', labels, (('le', _format_value(float(bound))),))}"
                        f" {cumulative}"
                    )
                cumulative += data["counts"][-1]
                lines.append(
                    f"{_series(name + '_bucket', labels, (('le', '+Inf'),))}"
                    f" {cumulative}"
                )
                lines.append(
                    f"{_series(name + '_sum', labels)} "
                    f"{_format_value(data['sum'])}"
                )
                lines.append(
                    f"{_series(name + '_count', labels)} {data['count']}"
                )
        else:
            for key, value in entry["samples"].items():
                labels = _labels_from_key(key)
                lines.append(f"{_series(name, labels)} {_format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot_payload(snapshot: MetricsSnapshot) -> dict:
    """A snapshot as its versioned JSON document."""
    return snapshot.to_dict()


def validate_snapshot_payload(payload: dict) -> None:
    """Round-trip a snapshot payload; raises ValueError on problems."""
    snapshot = MetricsSnapshot.from_dict(payload)
    prometheus_text(snapshot)  # every entry must render
    json.dumps(payload)  # and serialise


def write_snapshot_json(path: str | Path, snapshot: MetricsSnapshot) -> dict:
    """Validate and write a snapshot's JSON document; returns it."""
    payload = snapshot_payload(snapshot)
    validate_snapshot_payload(payload)
    Path(path).write_text(
        json.dumps(payload, indent=1, sort_keys=True, ensure_ascii=False)
        + "\n",
        encoding="utf-8",
    )
    return payload


def write_prometheus_text(path: str | Path,
                          snapshot: MetricsSnapshot) -> str:
    """Write a snapshot in Prometheus text format; returns the text."""
    text = prometheus_text(snapshot)
    Path(path).write_text(text, encoding="utf-8")
    return text
