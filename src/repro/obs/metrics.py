"""Process-wide metrics: counters, gauges, and histograms.

This is the measurement substrate underneath every harness in the
repo: the campaign engine, the fuzzer, the frontier sweep, and the
CLI all accumulate into a :class:`MetricsRegistry` and hand around
frozen :class:`MetricsSnapshot` payloads.  Two properties carry the
whole design:

* **Determinism** -- a snapshot serialises with sorted metric names,
  sorted label sets, and canonical JSON, so the same measurements
  always produce the same bytes.  :meth:`MetricsSnapshot.merge_all`
  additionally sorts its inputs by their canonical serialisation
  before folding, so merging worker snapshots is *order-independent*:
  the parent of a multiprocessing campaign gets byte-identical output
  no matter which worker finished first.
* **Closed vocabulary** -- metric and label names are validated
  against the Prometheus grammar at registration time, so a typo is a
  :class:`ValueError` at the call site, not a silently new series.

Exporters (Prometheus text format and versioned JSON) live in
:mod:`repro.obs.export`; the run ledger that persists snapshots is
:mod:`repro.obs.ledger`.
"""

from __future__ import annotations

import json
import math
import re

#: Snapshot payload schema (bumped on incompatible layout changes).
SNAPSHOT_SCHEMA = 1

#: Payload ``kind`` marker for snapshot documents.
SNAPSHOT_KIND = "repro-metrics-snapshot"

#: Default histogram bucket upper bounds, in seconds: wide enough for
#: a cache hit (sub-millisecond) through a long simulation cell.
DEFAULT_SECONDS_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: A canonical label set: sorted (key, value) pairs.
LabelSet = tuple


def canonical_labels(labels: dict | None) -> LabelSet:
    """Validate and canonicalise a label mapping.

    Returns the sorted ``((key, value), ...)`` tuple used as the
    sample key everywhere; values are coerced to ``str`` so unicode
    workload names and numeric technology nodes both round-trip.

    Raises:
        ValueError: for a label name outside the Prometheus grammar.
    """
    if not labels:
        return ()
    items = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
        items.append((key, str(labels[key])))
    return tuple(items)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


class Metric:
    """Base class: one named metric with labeled samples."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        #: LabelSet -> value (counters/gauges) or _HistogramSample.
        self.samples: dict[LabelSet, object] = {}

    def labeled(self) -> dict[LabelSet, object]:
        """All samples, keyed by canonical label set."""
        return dict(self.samples)


class Counter(Metric):
    """A monotonically increasing sum (per label set)."""

    kind = "counter"

    def inc(self, amount: float = 1, labels: dict | None = None) -> None:
        """Add ``amount`` (>= 0) to the labeled sample."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc by {amount})")
        key = canonical_labels(labels)
        self.samples[key] = self.samples.get(key, 0) + amount

    def value(self, labels: dict | None = None) -> float:
        """Current sum for one label set (0 if never incremented)."""
        return self.samples.get(canonical_labels(labels), 0)


class Gauge(Metric):
    """A point-in-time value (per label set); merges take the max."""

    kind = "gauge"

    def set(self, value: float, labels: dict | None = None) -> None:
        """Set the labeled sample to ``value``."""
        if not math.isfinite(value):
            raise ValueError(f"gauge {self.name} must be finite, got {value}")
        self.samples[canonical_labels(labels)] = value

    def value(self, labels: dict | None = None) -> float:
        """Current value for one label set (0 if never set)."""
        return self.samples.get(canonical_labels(labels), 0)


class _HistogramSample:
    """Per-label-set histogram state: bucket counts, sum, count."""

    __slots__ = ("counts", "total", "count")

    def __init__(self, bounds: tuple) -> None:
        # One count per finite bound plus the +Inf overflow bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0


class Histogram(Metric):
    """A distribution over fixed, registration-time bucket bounds."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: tuple = DEFAULT_SECONDS_BUCKETS) -> None:
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name} buckets must be strictly increasing, "
                f"got {buckets!r}"
            )
        self.buckets = bounds

    def observe(self, value: float, labels: dict | None = None) -> None:
        """Record one observation."""
        key = canonical_labels(labels)
        sample = self.samples.get(key)
        if sample is None:
            sample = self.samples[key] = _HistogramSample(self.buckets)
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                sample.counts[index] += 1
                break
        else:
            sample.counts[-1] += 1
        sample.total += value
        sample.count += 1


class MetricsRegistry:
    """A collection of named metrics with snapshot/merge semantics.

    Registries are cheap; harnesses that must not interfere (one
    campaign worker, one profile) own private instances, while
    long-running processes (the future service tier) share
    :func:`get_registry`.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _register(self, cls, name: str, help: str, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is not None:
            if metric.kind != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"not {cls.kind}"
                )
            return metric
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a counter."""
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a gauge."""
        return self._register(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple = DEFAULT_SECONDS_BUCKETS) -> Histogram:
        """Get or create a histogram with fixed bucket bounds."""
        metric = self._register(Histogram, name, help, buckets=buckets)
        if metric.buckets != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{metric.buckets}, not {buckets}"
            )
        return metric

    def metrics(self) -> list[Metric]:
        """All registered metrics, sorted by name."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def value(self, name: str, labels: dict | None = None) -> float:
        """One sample's current value (0 for unknown metrics/labels)."""
        metric = self._metrics.get(name)
        if metric is None or isinstance(metric, Histogram):
            return 0
        return metric.value(labels)

    def labeled_values(self, name: str) -> dict[LabelSet, float]:
        """All of one counter/gauge's samples by canonical label set."""
        metric = self._metrics.get(name)
        if metric is None or isinstance(metric, Histogram):
            return {}
        return dict(metric.samples)

    def clear(self) -> None:
        """Drop every registered metric (tests and service restarts)."""
        self._metrics.clear()

    # -- snapshot / merge ------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """A frozen, canonical copy of every metric's current state."""
        payload: dict = {}
        for metric in self.metrics():
            entry: dict = {"kind": metric.kind, "help": metric.help}
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                entry["samples"] = {
                    _label_key(key): {
                        "counts": list(sample.counts),
                        "sum": sample.total,
                        "count": sample.count,
                    }
                    for key, sample in sorted(metric.samples.items())
                }
            else:
                entry["samples"] = {
                    _label_key(key): value
                    for key, value in sorted(metric.samples.items())
                }
            payload[metric.name] = entry
        return MetricsSnapshot(payload)

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold a snapshot into the live metrics.

        Counters and histogram buckets add; gauges take the max (the
        only order-independent pointwise choice).  Metrics are created
        on first sight, and kind/bucket mismatches raise.
        """
        for name, entry in snapshot.metrics.items():
            kind = entry["kind"]
            if kind == "counter":
                counter = self.counter(name, entry.get("help", ""))
                for key, value in entry["samples"].items():
                    labels = _labels_from_key(key)
                    counter.samples[labels] = (
                        counter.samples.get(labels, 0) + value
                    )
            elif kind == "gauge":
                gauge = self.gauge(name, entry.get("help", ""))
                for key, value in entry["samples"].items():
                    labels = _labels_from_key(key)
                    gauge.samples[labels] = max(
                        gauge.samples.get(labels, value), value
                    )
            elif kind == "histogram":
                histogram = self.histogram(
                    name, entry.get("help", ""),
                    buckets=tuple(entry["buckets"]),
                )
                for key, data in entry["samples"].items():
                    labels = _labels_from_key(key)
                    sample = histogram.samples.get(labels)
                    if sample is None:
                        sample = histogram.samples[labels] = (
                            _HistogramSample(histogram.buckets)
                        )
                    if len(data["counts"]) != len(sample.counts):
                        raise ValueError(
                            f"histogram {name!r} bucket count mismatch"
                        )
                    for index, count in enumerate(data["counts"]):
                        sample.counts[index] += count
                    sample.total += data["sum"]
                    sample.count += data["count"]
            else:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")


def _label_key(labels: LabelSet) -> str:
    """A label set as its canonical JSON key (sorted, unicode-safe)."""
    return json.dumps([list(pair) for pair in labels],
                      ensure_ascii=False, separators=(",", ":"))


def _labels_from_key(key: str) -> LabelSet:
    """Inverse of :func:`_label_key`."""
    return tuple(tuple(pair) for pair in json.loads(key))


class MetricsSnapshot:
    """A frozen, canonical view of a registry's state.

    The payload dict is already canonical (sorted names, sorted label
    keys); :meth:`canonical_json` is therefore deterministic, and two
    snapshots are equal exactly when their bytes are.
    """

    def __init__(self, metrics: dict) -> None:
        self.metrics = metrics

    def __eq__(self, other) -> bool:
        return (isinstance(other, MetricsSnapshot)
                and self.canonical_json() == other.canonical_json())

    def __repr__(self) -> str:
        return f"MetricsSnapshot({len(self.metrics)} metrics)"

    def to_dict(self) -> dict:
        """The versioned JSON document (what the ledger stores)."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "kind": SNAPSHOT_KIND,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> MetricsSnapshot:
        """Inverse of :meth:`to_dict`.

        Raises:
            ValueError: for a foreign or version-mismatched payload.
        """
        if not isinstance(payload, dict):
            raise ValueError("snapshot payload must be a JSON object")
        if payload.get("kind") != SNAPSHOT_KIND:
            raise ValueError(
                f"not a metrics snapshot: {payload.get('kind')!r}"
            )
        if payload.get("schema") != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"unsupported snapshot schema {payload.get('schema')!r}"
            )
        metrics = payload.get("metrics")
        if not isinstance(metrics, dict):
            raise ValueError("snapshot payload must carry a metrics object")
        return cls(metrics)

    def canonical_json(self) -> str:
        """Deterministic serialisation (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          ensure_ascii=False, separators=(",", ":"))

    def merge(self, other: MetricsSnapshot) -> MetricsSnapshot:
        """The element-wise merge of two snapshots (see merge_all)."""
        return MetricsSnapshot.merge_all([self, other])

    @staticmethod
    def merge_all(snapshots) -> MetricsSnapshot:
        """Merge snapshots **order-independently**.

        Inputs are sorted by their canonical serialisation before
        folding, so any arrival order of worker snapshots produces
        byte-identical output -- the property the parallel campaign's
        parent-side accounting stands on.
        """
        ordered = sorted(snapshots, key=MetricsSnapshot.canonical_json)
        registry = MetricsRegistry()
        for snapshot in ordered:
            registry.merge_snapshot(snapshot)
        return registry.snapshot()


def format_snapshot(snapshot: MetricsSnapshot) -> str:
    """Aligned text rendering of a snapshot (shared by ``repro stats
    --breakdown`` and the campaign/frontier/fuzz reports, so single
    runs and campaigns read the same way)."""
    lines = []
    for name in sorted(snapshot.metrics):
        entry = snapshot.metrics[name]
        if entry["kind"] == "histogram":
            for key, data in entry["samples"].items():
                labels = _labels_from_key(key)
                mean = data["sum"] / data["count"] if data["count"] else 0.0
                lines.append(
                    f"    {_series_name(name, labels):48s} "
                    f"count={data['count']} sum={data['sum']:.3f} "
                    f"mean={mean:.4f}"
                )
        else:
            for key, value in entry["samples"].items():
                labels = _labels_from_key(key)
                rendered = (f"{value:g}" if isinstance(value, float)
                            else str(value))
                lines.append(
                    f"    {_series_name(name, labels):48s} {rendered}"
                )
    return "\n".join(lines) if lines else "    (no metrics recorded)"


def _series_name(name: str, labels: LabelSet) -> str:
    """``name{key="value",...}`` in Prometheus style (for display)."""
    if not labels:
        return name
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{inner}}}"


#: The process-wide default registry (the serving tier exports this).
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous
