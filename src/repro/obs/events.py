"""Structured per-instruction pipeline lifecycle events.

The pipeline emits one :class:`TraceEvent` per lifecycle step of each
dynamic instruction into an :class:`EventTracer` -- a bounded ring
buffer, so tracing a long run costs constant memory (oldest events are
dropped and counted, never silently).  The zero-tracing path costs a
single ``is not None`` branch per event site in the pipeline.

Event vocabulary (one :class:`EventKind` per pipeline action):

========  ==========================================================
FETCH     instruction entered the fetch buffer (detail: opcode)
RENAME    destination register renamed at dispatch
STEER     steering decision (cluster, detail: FIFO index and rule)
DISPATCH  inserted into an issue window / FIFO
WAKEUP    last outstanding operand arrived in a cluster
SELECT    chosen by the select logic this cycle
ISSUE     left the issue buffer for a functional unit
EXECUTE   execution span (``dur`` = latency in cycles)
BYPASS    consumed an operand over the inter-cluster bypass
COMMIT    retired in order
SQUASH    mispredicted branch halted fetch (lost fetch cycles)
========  ==========================================================
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum


class EventKind(str, Enum):
    """Typed pipeline lifecycle events (see module docstring)."""

    FETCH = "fetch"
    RENAME = "rename"
    STEER = "steer"
    DISPATCH = "dispatch"
    WAKEUP = "wakeup"
    SELECT = "select"
    ISSUE = "issue"
    EXECUTE = "execute"
    BYPASS = "bypass"
    COMMIT = "commit"
    SQUASH = "squash"


#: Kinds that appear exactly once per committed instruction, in
#: program-lifecycle order.  WAKEUP/SELECT/BYPASS/SQUASH are optional
#: (an instruction ready at dispatch never sleeps, for example).
LIFECYCLE_ORDER = (
    EventKind.FETCH,
    EventKind.DISPATCH,
    EventKind.ISSUE,
    EventKind.COMMIT,
)


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One pipeline event.

    Attributes:
        cycle: Simulation cycle the event occurred.
        kind: What happened.
        seq: Dynamic sequence number of the instruction.
        cluster: Cluster involved (-1 when not applicable).
        detail: Small free-form annotation (opcode, FIFO, rule, ...).
        dur: Span length in cycles (EXECUTE only; 0 for instants).
    """

    cycle: int
    kind: EventKind
    seq: int
    cluster: int = -1
    detail: str = ""
    dur: int = 0


class EventTracer:
    """Bounded ring buffer of :class:`TraceEvent`.

    Attach one to a ``PipelineSimulator`` to capture its lifecycle
    events::

        tracer = EventTracer()
        simulator = PipelineSimulator(config, trace, tracer=tracer)
        simulator.run()
        tracer.events  # list[TraceEvent], oldest first

    Args:
        capacity: Maximum buffered events; older events are evicted
            (and counted in :attr:`dropped`).  ``None`` = unbounded.
    """

    #: Default ring capacity -- roughly 100k instructions of full
    #: lifecycle tracing before eviction starts.
    DEFAULT_CAPACITY = 1 << 20

    def __init__(self, capacity: int | None = DEFAULT_CAPACITY):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._buffer: deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0  #: Total events ever emitted.

    def emit(
        self,
        cycle: int,
        kind: EventKind,
        seq: int,
        cluster: int = -1,
        detail: str = "",
        dur: int = 0,
    ) -> None:
        """Append one event (evicting the oldest when full)."""
        self._buffer.append(TraceEvent(cycle, kind, seq, cluster, detail, dur))
        self.emitted += 1

    @property
    def events(self) -> list[TraceEvent]:
        """Buffered events, oldest first."""
        return list(self._buffer)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound."""
        return self.emitted - len(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def clear(self) -> None:
        """Drop all buffered events and reset the counters."""
        self._buffer.clear()
        self.emitted = 0

    def events_for(self, seq: int) -> list[TraceEvent]:
        """All buffered events of one instruction, oldest first."""
        return [event for event in self._buffer if event.seq == seq]

    def chains(self) -> dict[int, list[TraceEvent]]:
        """Buffered events grouped by instruction, order preserved."""
        grouped: dict[int, list[TraceEvent]] = {}
        for event in self._buffer:
            grouped.setdefault(event.seq, []).append(event)
        return grouped
