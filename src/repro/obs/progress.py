"""Live campaign telemetry: heartbeats and the ``--progress`` line.

The campaign engine, frontier sweep, and fuzzer emit one
:class:`Heartbeat` per completed unit of work (cell or case).  A
:class:`ProgressMeter` consumes them through an internal queue --
decoupling emission (inside the engine's collection loop) from
rendering (a single in-place TTY line on stderr) -- and derives the
live figures: units done, cache-hit rate, sustained simulated
instructions per second, and the ETA extrapolated from progress so
far.

The meter renders with a carriage return on TTYs (one continuously
updated line) and stays silent on non-TTY streams until ``close()``,
which always emits one final summary line -- so CI logs get exactly
one line instead of thousands.
"""

from __future__ import annotations

import queue
import time
from dataclasses import dataclass


@dataclass(frozen=True)
class Heartbeat:
    """One completed unit of campaign work.

    Attributes:
        label: Display identifier (``machine/workload`` or case id).
        source: ``"simulated"``, ``"cache"``, ``"case"``, or
            ``"fail"`` -- what kind of completion this was.
        seconds: Wall-clock the unit took (0.0 for cache hits).
        instructions: Simulated instructions in the unit (0 when not
            applicable, e.g. cache hits or failed cases).
    """

    label: str
    source: str = "simulated"
    seconds: float = 0.0
    instructions: int = 0


class ProgressMeter:
    """Consumes heartbeats; renders one live progress line.

    Args:
        total: Expected units, or None when unknown (no ETA then).
        stream: Output stream (stderr-like); None disables rendering
            but keeps the accounting (useful in tests).
        unit: Noun for the progress line (``cells``, ``cases``).
        clock: Injectable monotonic clock (tests).
    """

    def __init__(self, total: int | None, stream=None, unit: str = "cells",
                 clock=time.perf_counter) -> None:
        if total is not None and total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        self.total = total
        self.stream = stream
        self.unit = unit
        self._clock = clock
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._started = clock()
        self.done = 0
        self.hits = 0
        self.failures = 0
        self.instructions = 0
        self._closed = False

    # -- the heartbeat queue --------------------------------------------

    def post(self, beat: Heartbeat) -> None:
        """Enqueue one heartbeat and drain (engine-side callback)."""
        self._queue.put(beat)
        self.drain()

    def drain(self) -> None:
        """Fold every queued heartbeat into the counters and render."""
        updated = False
        while True:
            try:
                beat = self._queue.get_nowait()
            except queue.Empty:
                break
            self.done += 1
            if beat.source == "cache":
                self.hits += 1
            elif beat.source == "fail":
                self.failures += 1
            self.instructions += beat.instructions
            updated = True
        if updated:
            self._render()

    # -- derived figures -------------------------------------------------

    @property
    def elapsed(self) -> float:
        """Seconds since the meter started."""
        return max(self._clock() - self._started, 0.0)

    @property
    def hit_rate(self) -> float:
        """Cache hits over completed units (0.0 before any beat)."""
        if self.done <= 0:
            return 0.0
        return self.hits / self.done

    @property
    def instructions_per_second(self) -> float:
        """Simulated instructions per elapsed second (0.0 at start)."""
        elapsed = self.elapsed
        if elapsed <= 0:
            return 0.0
        return self.instructions / elapsed

    @property
    def eta_seconds(self) -> float | None:
        """Remaining seconds extrapolated from progress; None when
        unknowable (no total, or nothing completed yet)."""
        if self.total is None or self.done <= 0:
            return None
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        return self.elapsed / self.done * remaining

    def line(self) -> str:
        """The current progress line (no trailing newline)."""
        if self.total is not None:
            head = f"{self.done}/{self.total} {self.unit}"
        else:
            head = f"{self.done} {self.unit}"
        parts = [
            head,
            f"{100 * self.hit_rate:.0f}% hits",
            f"{self.instructions_per_second:,.0f} inst/s",
        ]
        if self.failures:
            parts.append(f"{self.failures} failed")
        eta = self.eta_seconds
        if eta is not None:
            parts.append(f"ETA {eta:.1f}s")
        return ", ".join(parts)

    # -- rendering -------------------------------------------------------

    def _is_tty(self) -> bool:
        isatty = getattr(self.stream, "isatty", None)
        try:
            return bool(isatty()) if callable(isatty) else False
        except (OSError, ValueError):
            return False

    def _render(self) -> None:
        if self.stream is None or self._closed or not self._is_tty():
            return
        self.stream.write("\r\x1b[2K  " + self.line())
        self.stream.flush()

    def close(self) -> None:
        """Drain, emit the final summary line, and stop rendering."""
        if self._closed:
            return
        self.drain()
        if self.stream is not None:
            if self._is_tty():
                self.stream.write("\r\x1b[2K")
            self.stream.write(f"  {self.line()} "
                              f"in {self.elapsed:.2f}s\n")
            self.stream.flush()
        self._closed = True
