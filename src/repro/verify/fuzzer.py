"""The differential fuzzing engine (``repro fuzz``).

Each *case* is derived from a single integer seed: sample a machine
config (:mod:`repro.verify.sampler`), sample a workload -- an
assembled program (architectural checks possible) or a synthetic
trace (timing-only) -- and run the full check stack from
:mod:`repro.verify.oracle`:

1. emulator vs shadow-interpreter architectural equality,
2. fast vs reference ``SimStats`` byte equality,
3. timing invariants on the fast simulator.

Cases fan out over the existing campaign worker pool
(:func:`repro.core.campaign._collect_parallel`); a case is fully
described by picklable integers, and workers rebuild everything
deterministically from the seed.  Failures are shrunk by the
delta-debugging minimizer and emitted as standalone reproducers under
``tests/repros/``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.core.campaign import _collect_parallel
from repro.isa.assembler import AssemblerError, assemble
from repro.isa.emulator import EmulationError, Emulator
from repro.obs.profiling import FuzzProfile
from repro.obs.progress import Heartbeat
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline_reference import ReferencePipelineSimulator
from repro.verify import minimize as minimize_mod
from repro.verify.generator import generate_source
from repro.verify.oracle import (
    check_timing_invariants,
    compare_architectural,
    compare_stats,
)
from repro.verify.sampler import (
    sample_machine,
    sample_program,
    sample_synthetic,
    sample_zoo,
)
from repro.workloads import synthetic_trace

#: Default dynamic-instruction cap per case: large enough for every
#: generated program to halt naturally, small enough that a 200-case
#: run (4 executions per case) finishes in seconds.
DEFAULT_CASE_INSTRUCTIONS = 2_000

#: Fraction of cases that use generated programs (the rest replay
#: synthetic traces, which cover op-class mixes no program reaches).
_PROGRAM_FRACTION = 0.7

#: Fraction of the *non-program* cases drawn from the registered
#: ``zoo_*`` scenarios instead of free-form synthetic configs.
_ZOO_FRACTION = 0.5

#: Directory reproducers land in by default.
DEFAULT_REPRO_DIR = Path("tests") / "repros"


def derive_case_seed(seed: int, case_id: int) -> int:
    """Per-case seed: decorrelated but reproducible from (seed, id)."""
    return (seed * 1_000_003 + case_id * 7_919 + 1) & 0x7FFF_FFFF


@dataclass(frozen=True)
class FuzzCase:
    """One unit of fuzzing work -- picklable integers only.

    Workers rebuild the machine config and workload deterministically
    from ``case_seed``, so the case travels to a worker process (or a
    reproduction session) as four scalars.
    """

    case_id: int
    case_seed: int
    max_instructions: int = DEFAULT_CASE_INSTRUCTIONS
    fifo_only: bool = False
    only_shapes: tuple[str, ...] | None = None

    @property
    def label(self) -> str:
        """Progress label (the campaign pool prints it)."""
        return f"case {self.case_id} (seed {self.case_seed})"


def _simulate_both(config: MachineConfig, trace) -> tuple:
    """Run all simulator models; returns (fast_sim, failures).

    Every case runs the fast interpreter; shapes the frozen reference
    covers are compared against it byte-for-byte, and shapes the
    pipeline compiler covers are additionally compared against the
    compiled artifact -- so a miscompilation (wrong constant fold,
    dropped branch, stale cache entry) is a first-class fuzz finding.
    """
    # Imported late so the planted-bug self-tests' monkeypatches of
    # the pipeline/compile modules are honoured even inside this
    # module.
    from repro.uarch import compile as compile_mod
    from repro.uarch.pipeline import PipelineSimulator
    from repro.uarch.scheduler import supports_reference

    fast = PipelineSimulator(config, trace)
    try:
        fast_stats = fast.run()
    except RuntimeError as error:
        # A deadlock (or cycle-bound overrun) is a first-class finding
        # -- reported as a failure string so the minimizer can shrink
        # the triggering program like any other check failure.
        return fast, [f"fast simulator failed to complete: {error}"]
    if supports_reference(config):
        reference_stats = ReferencePipelineSimulator(config, trace).run()
        failures = compare_stats(
            fast_stats.to_dict(), reference_stats.to_dict()
        )
    else:
        # The frozen reference predates the strategy layer; the new
        # strategies are checked by the oracle + invariants only.
        failures = []
    if compile_mod.supports_compile(config):
        compiled_sim = PipelineSimulator(config, trace)
        try:
            compiled_stats = compile_mod.run_compiled(compiled_sim)
        except RuntimeError as error:
            failures.append(
                f"compiled simulator failed to complete: {error}"
            )
        else:
            fast_payload = fast_stats.to_dict()
            compiled_payload = compiled_stats.to_dict()
            if compiled_payload != fast_payload:
                differing = {
                    key: (compiled_payload.get(key), fast_payload.get(key))
                    for key in set(compiled_payload) | set(fast_payload)
                    if compiled_payload.get(key) != fast_payload.get(key)
                }
                failures.append(
                    f"compiled/fast SimStats diverge: {differing}"
                )
    failures.extend(check_timing_invariants(fast, config, trace))
    return fast, failures


def check_program_trace(program, config: MachineConfig,
                        max_instructions: int) -> list[str]:
    """All three check families for one (program, machine) pair."""
    emulator = Emulator(program)
    trace = emulator.run(max_instructions)
    trace.name = "fuzz"
    failures = compare_architectural(emulator, trace, max_instructions)
    if len(trace):
        failures.extend(_simulate_both(config, trace)[1])
    return failures


def check_source_on_config(
    source: str,
    config: MachineConfig,
    max_instructions: int = DEFAULT_CASE_INSTRUCTIONS,
) -> list[str]:
    """Assemble ``source`` and run the full check stack.

    This is the entry point minimized reproducers call; failures come
    back as human-readable strings (empty list = case passes).
    """
    return check_program_trace(assemble(source), config, max_instructions)


def build_case_inputs(case: FuzzCase):
    """Deterministically rebuild a case's sampled inputs.

    Returns:
        ``(shape, config, kind, workload_config)`` where ``kind`` is
        ``"program"``, ``"synthetic"``, or ``"zoo"`` and
        ``workload_config`` is the matching generator config (for
        ``"zoo"`` it is the drawn scenario's
        :class:`~repro.workloads.synthetic.SyntheticConfig`).
    """
    rng = random.Random(case.case_seed)
    shape, config = sample_machine(
        rng, fifo_only=case.fifo_only, only_shapes=case.only_shapes
    )
    # Self-test runs (shape-restricted) always use programs so the
    # minimizer has a source to shrink.
    use_program = (
        case.fifo_only
        or bool(case.only_shapes)
        or rng.random() < _PROGRAM_FRACTION
    )
    if use_program:
        return shape, config, "program", sample_program(rng)
    length = min(case.max_instructions, 600)
    if rng.random() < _ZOO_FRACTION:
        _zoo_name, zoo_cfg = sample_zoo(rng, length)
        return shape, config, "zoo", zoo_cfg
    return shape, config, "synthetic", sample_synthetic(rng, length)


def run_fuzz_case(case: FuzzCase) -> dict:
    """Execute one case; the picklable worker entry point.

    Returns transport primitives (the same shape the campaign pool
    moves): seconds, sampled identifiers, and failure strings.
    """
    start = time.perf_counter()
    shape, config, kind, workload = build_case_inputs(case)
    if kind == "program":
        failures = check_program_trace(
            assemble(generate_source(workload)), config, case.max_instructions
        )
        instructions = None  # reported only for failures, below
    else:
        trace = synthetic_trace(workload)
        failures = _simulate_both(config, trace)[1]
        instructions = len(trace)
    return {
        "case_id": case.case_id,
        "case_seed": case.case_seed,
        "shape": shape,
        "machine": config.name,
        "kind": kind,
        "instructions": instructions,
        "failures": failures,
        "seconds": time.perf_counter() - start,
    }


@dataclass
class FuzzFailure:
    """One failing case, optionally with its minimized reproducer."""

    case_id: int
    case_seed: int
    shape: str
    kind: str
    failures: list[str]
    reproducer: Path | None = None
    minimized_instructions: int | None = None


@dataclass
class FuzzReport:
    """Outcome of one ``run_fuzz`` campaign."""

    profile: FuzzProfile
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every executed case passed every check."""
        return not self.failures


def _minimize_failure(
    case: FuzzCase, payload: dict, repro_dir: str | Path
) -> FuzzFailure:
    """Shrink one failing case and emit its reproducer file."""
    failure = FuzzFailure(
        case_id=payload["case_id"],
        case_seed=payload["case_seed"],
        shape=payload["shape"],
        kind=payload["kind"],
        failures=payload["failures"],
    )
    if payload["kind"] != "program":
        return failure  # synthetic traces have no source to shrink

    _, config, _, gen_config = build_case_inputs(case)
    source = generate_source(gen_config)

    def still_fails(text: str, candidate: MachineConfig) -> bool:
        try:
            return bool(
                check_source_on_config(text, candidate, case.max_instructions)
            )
        except (AssemblerError, EmulationError, ValueError, IndexError):
            return False

    small_source, small_config = minimize_mod.minimize_case(
        source, config, still_fails
    )
    failure.minimized_instructions = minimize_mod.instruction_count(
        small_source
    )
    failure.reproducer = minimize_mod.write_reproducer(
        repro_dir,
        case_id=payload["case_id"],
        seed=payload["case_seed"],
        summary=payload["failures"][0][:120],
        source=small_source,
        config=small_config,
        fifo_only=case.fifo_only,
    )
    return failure


def run_fuzz(
    cases: int = 200,
    seed: int = 0,
    jobs: int = 1,
    time_budget: float | None = None,
    max_instructions: int = DEFAULT_CASE_INSTRUCTIONS,
    repro_dir: str | Path = DEFAULT_REPRO_DIR,
    fifo_only: bool = False,
    only_shapes: tuple[str, ...] | None = None,
    minimize: bool = True,
    max_minimized: int = 5,
    first_case: int = 0,
    case_seed: int | None = None,
    progress: Callable[[str], None] | None = None,
    heartbeat: Callable[[Heartbeat], None] | None = None,
) -> FuzzReport:
    """Run a differential-fuzzing campaign.

    Args:
        cases: Number of cases to attempt.
        seed: Campaign seed; together with a case id it fully
            determines the case (see :func:`derive_case_seed`).
        jobs: Worker processes; >1 reuses the campaign pool.
        time_budget: Optional wall-clock cap in seconds, checked
            between batches; remaining cases are counted as skipped.
        max_instructions: Dynamic-instruction cap per case.
        repro_dir: Where minimized reproducers are written.
        fifo_only: Restrict machine sampling to FIFO-steered shapes
            (used by the planted steering-bug self-test).
        only_shapes: Restrict machine sampling to these registry
            shapes (used by the planted port-arbiter self-test).
        minimize: Shrink failures and emit reproducers.
        max_minimized: At most this many failures are minimized (the
            rest are reported unshrunk -- minimization is the
            expensive step).
        first_case: Offset of the first case id (lets a reproducer
            name one exact case).
        case_seed: Replay mode -- run exactly one case with this
            *derived* seed (the value a reproducer's header records),
            ignoring ``cases``/``seed``/``first_case``.
        progress: Optional line-oriented progress callback.
        heartbeat: Optional live-telemetry callback receiving one
            :class:`~repro.obs.progress.Heartbeat` per executed case
            in completion order (source ``"case"``, or ``"fail"`` for
            cases with failing checks).

    Returns:
        A :class:`FuzzReport` with the profile and any failures.
    """
    if cases < 1:
        raise ValueError(f"cases must be >= 1, got {cases}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    profile = FuzzProfile(jobs=jobs, seed=seed)
    started = time.perf_counter()
    if case_seed is not None:
        queue = [FuzzCase(case_id=0, case_seed=case_seed,
                          max_instructions=max_instructions,
                          fifo_only=fifo_only, only_shapes=only_shapes)]
    else:
        queue = [
            FuzzCase(
                case_id=case_id,
                case_seed=derive_case_seed(seed, case_id),
                max_instructions=max_instructions,
                fifo_only=fifo_only,
                only_shapes=only_shapes,
            )
            for case_id in range(first_case, first_case + cases)
        ]
    failures: list[FuzzFailure] = []

    def beat(case, payload: dict) -> None:
        if heartbeat:
            heartbeat(Heartbeat(
                label=case.label,
                source="fail" if payload["failures"] else "case",
                seconds=payload.get("seconds", 0.0),
                instructions=payload.get("instructions") or 0,
            ))

    batch_size = max(16, jobs * 4) if jobs > 1 else 1
    position = 0
    while position < len(queue):
        if (time_budget is not None
                and time.perf_counter() - started >= time_budget):
            profile.skipped = len(queue) - position
            if progress:
                progress(f"time budget reached; skipping "
                         f"{profile.skipped} remaining cases")
            break
        batch = queue[position:position + batch_size]
        position += len(batch)
        if jobs > 1:
            payloads = _collect_parallel(
                batch, jobs, run_fuzz_case, None, 0, profile, progress,
                heartbeat=beat,
            )
            ordered = [payloads[i] for i in range(len(batch))]
        else:
            ordered = []
            for case in batch:
                payload = run_fuzz_case(case)
                ordered.append(payload)
                beat(case, payload)
        for case, payload in zip(batch, ordered):
            profile.note_case(
                payload["shape"], payload["kind"], payload["seconds"],
                failed=bool(payload["failures"]),
            )
            if payload["failures"]:
                if minimize and sum(
                    1 for f in failures if f.reproducer is not None
                ) < max_minimized:
                    failures.append(
                        _minimize_failure(case, payload, repro_dir)
                    )
                else:
                    failures.append(FuzzFailure(
                        case_id=payload["case_id"],
                        case_seed=payload["case_seed"],
                        shape=payload["shape"],
                        kind=payload["kind"],
                        failures=payload["failures"],
                    ))
                if progress:
                    progress(f"case {payload['case_id']}: FAIL "
                             f"({payload['failures'][0][:80]})")
            elif progress and payload["case_id"] % 50 == 0:
                progress(f"case {payload['case_id']}: ok "
                         f"({payload['shape']}/{payload['kind']})")
    profile.wall_seconds = time.perf_counter() - started
    return FuzzReport(profile=profile, failures=failures)
