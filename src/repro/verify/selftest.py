"""Planted-bug self-tests: prove the fuzzer can actually catch bugs.

A verification harness that has never caught anything is an untested
claim.  This module *plants* three realistic bugs, one per layer the
fuzz oracle guards:

* a **steering bug** -- a FIFO dispatch heuristic that ignores the
  paper's behind-the-producer rule -- planted into the **fast**
  pipeline only (the module-level ``FifoDispatchSteering`` name that
  ``repro.uarch.pipeline`` binds at import is rebound for the
  duration; the reference pipeline imports its own copy and keeps the
  correct logic).  Caught by fast/reference stats divergence.
* a **port-arbiter bug** -- a ``ports_limited`` register file whose
  per-cycle read-port budget is never replenished, so issue starves
  and the pipeline deadlocks.  The reference model does not cover the
  ports_limited strategy, so this one must be caught by the fast
  simulator's own failure checks (the no-forward-progress guard
  surfaces as a failure string).
* a **compiler constant-folding bug** -- the pipeline compiler's
  ``_PLANTED_BUG`` knob folds the load-miss latency branch down to
  the hit latency, the classic dropped-branch miscompilation.  The
  interpreter stays correct, so this one must be caught by the
  compiled/fast stats comparison the fuzzer runs on every
  compile-supported shape.

Each bug must be (a) detected and (b) shrunk to a small reproducer.
The patches are process-local, so the self-tests always run with
``jobs=1`` -- worker processes would import the unpatched modules and
see no bug.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.uarch import compile as compile_mod
from repro.uarch import pipeline as pipeline_mod
from repro.uarch import regfile_model as regfile_mod
from repro.uarch.regfile_model import PortsLimitedRegfile
from repro.uarch.steering import FifoDispatchSteering, Placement
from repro.verify.fuzzer import FuzzReport, run_fuzz


class PlantedSteeringBug(FifoDispatchSteering):
    """FIFO steering with the dependence heuristic removed.

    Every instruction is sent to a new empty FIFO regardless of where
    its producers sit -- exactly the "steer blindly" failure mode the
    paper's Section 5.1 heuristic exists to avoid.  Timing-visible,
    architecturally invisible: the perfect planted bug for a
    differential fuzzer.
    """

    def place(self, view, outstanding) -> Placement | None:
        placement = self._new_fifo(view)
        self.last_rule = "new_fifo" if placement is not None else ""
        return placement


class PlantedPortArbiterBug(PortsLimitedRegfile):
    """A read-port arbiter that never releases claimed ports.

    ``new_cycle`` -- the per-cycle budget replenishment -- is a no-op,
    so every read permanently consumes ports and issue eventually
    starves: the classic leaked-resource arbiter bug.  The pipeline's
    no-forward-progress guard turns the ensuing deadlock into a
    failure the fuzzer reports and minimizes.
    """

    def reset(self) -> None:
        # Grant the initial budget once per run (the correct model
        # re-grants it every cycle).
        ports = self.read_ports
        budget = self.budget
        for cluster in range(len(budget)):
            budget[cluster] = ports

    def new_cycle(self) -> None:
        pass  # the planted leak: claimed ports are never freed


@dataclass
class SelfTestResult:
    """Outcome of one planted-bug run."""

    report: FuzzReport
    detected: bool
    minimized_instructions: int | None
    reproducer: Path | None


def run_selftest(
    cases: int = 40,
    seed: int = 1,
    repro_dir: str | Path = "repros-selftest",
    max_minimized: int = 1,
) -> SelfTestResult:
    """Plant the steering bug, fuzz FIFO machines, restore, report.

    Args:
        cases: Fuzz cases to run against the sabotaged simulator.
        seed: Campaign seed (any seed works; the bug is gross).
        repro_dir: Where the minimized reproducer is written -- point
            this at a temp directory, not ``tests/repros``.
        max_minimized: Failures to shrink (1 keeps the test fast).

    Returns:
        A :class:`SelfTestResult`; ``detected`` must be True and the
        minimized reproducer small for the harness to be trusted.
    """
    original = pipeline_mod.FifoDispatchSteering
    pipeline_mod.FifoDispatchSteering = PlantedSteeringBug
    try:
        report = run_fuzz(
            cases=cases,
            seed=seed,
            jobs=1,  # the patch is process-local
            repro_dir=repro_dir,
            fifo_only=True,
            minimize=True,
            max_minimized=max_minimized,
        )
    finally:
        pipeline_mod.FifoDispatchSteering = original
    minimized = [f for f in report.failures if f.reproducer is not None]
    return SelfTestResult(
        report=report,
        detected=bool(report.failures),
        minimized_instructions=(
            minimized[0].minimized_instructions if minimized else None
        ),
        reproducer=minimized[0].reproducer if minimized else None,
    )


def run_compile_selftest(
    cases: int = 20,
    seed: int = 1,
    repro_dir: str | Path = "repros-selftest",
    max_minimized: int = 1,
) -> SelfTestResult:
    """Plant the constant-folding bug, fuzz compiled shapes, report.

    :data:`repro.uarch.compile._PLANTED_BUG` is set to
    ``"load_hit_fold"`` for the duration: every runner generated while
    it is set folds the load-miss latency to the hit latency.  The
    knob is part of the compile-cache key and the cache is cleared on
    both sides of the patch, so sabotaged runners can never leak into
    (or survive from) clean runs.  Sampling is restricted to the
    ``baseline`` registry shape -- the compiler's home turf -- and the
    bug must surface as a compiled/fast SimStats divergence.
    """
    compile_mod.clear_compile_cache()
    original = compile_mod._PLANTED_BUG
    compile_mod._PLANTED_BUG = "load_hit_fold"
    try:
        report = run_fuzz(
            cases=cases,
            seed=seed,
            jobs=1,  # the patch is process-local
            repro_dir=repro_dir,
            only_shapes=("baseline",),
            minimize=True,
            max_minimized=max_minimized,
        )
    finally:
        compile_mod._PLANTED_BUG = original
        compile_mod.clear_compile_cache()
    minimized = [f for f in report.failures if f.reproducer is not None]
    return SelfTestResult(
        report=report,
        detected=bool(report.failures),
        minimized_instructions=(
            minimized[0].minimized_instructions if minimized else None
        ),
        reproducer=minimized[0].reproducer if minimized else None,
    )


def run_port_selftest(
    cases: int = 20,
    seed: int = 1,
    repro_dir: str | Path = "repros-selftest",
    max_minimized: int = 1,
) -> SelfTestResult:
    """Plant the port-arbiter bug, fuzz ports_limited machines, report.

    The ``ports_limited`` entry of
    :data:`repro.uarch.regfile_model.REGFILE_REGISTRY` is swapped for
    :class:`PlantedPortArbiterBug` for the duration (simulators look
    the strategy up at construction time, so the swap takes effect
    immediately) and sampling is restricted to the ``ports_limited``
    registry shape so every case exercises the sabotaged arbiter.
    """
    original = regfile_mod.REGFILE_REGISTRY["ports_limited"]
    regfile_mod.REGFILE_REGISTRY["ports_limited"] = PlantedPortArbiterBug
    try:
        report = run_fuzz(
            cases=cases,
            seed=seed,
            jobs=1,  # the patch is process-local
            repro_dir=repro_dir,
            only_shapes=("ports_limited",),
            minimize=True,
            max_minimized=max_minimized,
        )
    finally:
        regfile_mod.REGFILE_REGISTRY["ports_limited"] = original
    minimized = [f for f in report.failures if f.reproducer is not None]
    return SelfTestResult(
        report=report,
        detected=bool(report.failures),
        minimized_instructions=(
            minimized[0].minimized_instructions if minimized else None
        ),
        reproducer=minimized[0].reproducer if minimized else None,
    )
