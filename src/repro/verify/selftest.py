"""Planted-bug self-test: prove the fuzzer can actually catch bugs.

A verification harness that has never caught anything is an untested
claim.  This module *plants* a realistic steering bug -- a FIFO
dispatch heuristic that ignores the paper's behind-the-producer rule
-- into the **fast** pipeline only (the module-level
``FifoDispatchSteering`` name that ``repro.uarch.pipeline`` binds at
import is rebound for the duration; the reference pipeline imports its
own copy from :mod:`repro.uarch.steering` and keeps the correct
logic).  The fuzzer must then (a) detect the fast/reference stats
divergence and (b) shrink a failing case to a small reproducer.

The patch is process-local, so the self-test always runs with
``jobs=1`` -- worker processes would import the unpatched module and
see no bug.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.uarch import pipeline as pipeline_mod
from repro.uarch.steering import FifoDispatchSteering, Placement
from repro.verify.fuzzer import FuzzReport, run_fuzz


class PlantedSteeringBug(FifoDispatchSteering):
    """FIFO steering with the dependence heuristic removed.

    Every instruction is sent to a new empty FIFO regardless of where
    its producers sit -- exactly the "steer blindly" failure mode the
    paper's Section 5.1 heuristic exists to avoid.  Timing-visible,
    architecturally invisible: the perfect planted bug for a
    differential fuzzer.
    """

    def place(self, view, outstanding) -> Placement | None:
        placement = self._new_fifo(view)
        self.last_rule = "new_fifo" if placement is not None else ""
        return placement


@dataclass
class SelfTestResult:
    """Outcome of one planted-bug run."""

    report: FuzzReport
    detected: bool
    minimized_instructions: int | None
    reproducer: Path | None


def run_selftest(
    cases: int = 40,
    seed: int = 1,
    repro_dir: str | Path = "repros-selftest",
    max_minimized: int = 1,
) -> SelfTestResult:
    """Plant the steering bug, fuzz FIFO machines, restore, report.

    Args:
        cases: Fuzz cases to run against the sabotaged simulator.
        seed: Campaign seed (any seed works; the bug is gross).
        repro_dir: Where the minimized reproducer is written -- point
            this at a temp directory, not ``tests/repros``.
        max_minimized: Failures to shrink (1 keeps the test fast).

    Returns:
        A :class:`SelfTestResult`; ``detected`` must be True and the
        minimized reproducer small for the harness to be trusted.
    """
    original = pipeline_mod.FifoDispatchSteering
    pipeline_mod.FifoDispatchSteering = PlantedSteeringBug
    try:
        report = run_fuzz(
            cases=cases,
            seed=seed,
            jobs=1,  # the patch is process-local
            repro_dir=repro_dir,
            fifo_only=True,
            minimize=True,
            max_minimized=max_minimized,
        )
    finally:
        pipeline_mod.FifoDispatchSteering = original
    minimized = [f for f in report.failures if f.reproducer is not None]
    return SelfTestResult(
        report=report,
        detected=bool(report.failures),
        minimized_instructions=(
            minimized[0].minimized_instructions if minimized else None
        ),
        reproducer=minimized[0].reproducer if minimized else None,
    )
