"""Constrained-random sampling of machine configs and workloads.

Machine sampling starts from the canonical shape registry
(:data:`repro.core.machines.MACHINE_REGISTRY` -- the same source the
test suites use) and perturbs the free parameters each shape exposes:
buffer geometry, pipeline widths, in-flight limit, wakeup/select
depth, inter-cluster bypass latency, selection policy, and the random
steering seed.  Every sample is a *valid* :class:`MachineConfig` by
construction (``MachineConfig.__post_init__`` would reject anything
else loudly).

Workload sampling alternates between the new assembly-program
generator (:mod:`repro.verify.generator`), which enables the
architectural oracle, and :class:`~repro.workloads.synthetic.
SyntheticConfig` streams -- either free-form (:func:`sample_synthetic`)
or drawn from the registered ``zoo_*`` scenarios
(:func:`sample_zoo`), which stress timing-only behaviour with
op-class mixes no real program reaches.
"""

from __future__ import annotations

import dataclasses
import random

from repro.core.machines import MACHINE_REGISTRY
from repro.uarch.config import MachineConfig, SelectionPolicy
from repro.verify.generator import ProgramGenConfig
from repro.workloads import SyntheticConfig

#: Shape names whose machines steer through real FIFOs -- the subset
#: the planted-bug self-test restricts itself to.
FIFO_SHAPES = ("dependence", "clustered")

#: Per-shape geometry parameters the sampler may perturb.
_SHAPE_GEOMETRY = {
    "baseline": {"window_size": (4, 16, 32, 64)},
    "dependence": {"fifo_count": (2, 4, 8), "fifo_depth": (2, 4, 8)},
    "clustered": {
        "fifos_per_cluster": (2, 4),
        "fifo_depth": (4, 8),
        "inter_cluster_bypass_cycles": (1, 2, 3),
    },
    "clustered_windows": {
        "window_size": (8, 16, 32),
        "inter_cluster_bypass_cycles": (1, 2, 3),
    },
    "exec_steer": {"inter_cluster_bypass_cycles": (1, 2, 3)},
    "random": {
        "window_size": (8, 16, 32),
        "inter_cluster_bypass_cycles": (1, 2, 3),
    },
    "modulo": {
        "window_size": (8, 16, 32),
        "inter_cluster_bypass_cycles": (1, 2, 3),
    },
    "least_loaded": {
        "window_size": (8, 16, 32),
        "inter_cluster_bypass_cycles": (1, 2, 3),
    },
    "load_tracking": {"window_size": (16, 32, 64)},
    "ports_limited": {
        "read_ports": (2, 3, 4, 6),
        "window_size": (16, 32, 64),
    },
}


def sample_machine(
    rng: random.Random,
    fifo_only: bool = False,
    only_shapes: tuple[str, ...] | None = None,
) -> tuple[str, MachineConfig]:
    """Draw one (shape name, machine config) pair.

    Args:
        rng: Seeded source of randomness (the only entropy used).
        fifo_only: Restrict to :data:`FIFO_SHAPES` (for the planted
            steering-bug self-test, which mutates FIFO steering).
        only_shapes: Restrict to these registry shapes (the planted
            port-arbiter self-test samples only ``ports_limited``).
    """
    if only_shapes:
        shapes: tuple[str, ...] = only_shapes
    elif fifo_only:
        shapes = FIFO_SHAPES
    else:
        shapes = tuple(sorted(MACHINE_REGISTRY))
    shape = shapes[rng.randrange(len(shapes))]
    kwargs = {
        name: values[rng.randrange(len(values))]
        for name, values in _SHAPE_GEOMETRY[shape].items()
    }
    # Common MachineConfig knobs every factory forwards as overrides.
    kwargs["fetch_width"] = rng.choice((2, 4, 8))
    kwargs["dispatch_width"] = rng.choice((2, 4, 8))
    kwargs["issue_width"] = rng.choice((2, 4, 8))
    kwargs["retire_width"] = rng.choice((4, 8, 16))
    kwargs["max_in_flight"] = rng.choice((32, 64, 128))
    kwargs["wakeup_select_stages"] = rng.choice((1, 2))
    kwargs["selection"] = rng.choice(tuple(SelectionPolicy))
    kwargs["steering_seed"] = rng.randrange(1, 1 << 16)
    # An in-flight limit below the buffer capacity is rejected by
    # MachineConfig (the buffers could never fill); probe the drawn
    # geometry and clamp the limit up without consuming extra entropy.
    probe_kwargs = dict(kwargs)
    del probe_kwargs["max_in_flight"]
    probe = MACHINE_REGISTRY[shape](**probe_kwargs)
    kwargs["max_in_flight"] = max(kwargs["max_in_flight"], probe.total_capacity)
    return shape, MACHINE_REGISTRY[shape](**kwargs)


def sample_program(rng: random.Random) -> ProgramGenConfig:
    """Draw one assembly-program generator configuration."""
    return ProgramGenConfig(
        seed=rng.randrange(1 << 30),
        blocks=rng.randrange(1, 5),
        block_size=rng.randrange(4, 17),
        loop_iterations=rng.randrange(2, 7),
        memory_words=rng.choice((4, 8, 12, 16)),
        store_fraction=rng.choice((0.1, 0.2, 0.3)),
        load_fraction=rng.choice((0.1, 0.2, 0.3)),
        # The six fractions must sum to <= 1.0 even at their maxima
        # (0.3 + 0.3 + 0.2 + 0.08 + 0.06 + 0.05 = 0.99).
        branch_fraction=rng.choice((0.05, 0.1, 0.2)),
        muldiv_fraction=rng.choice((0.0, 0.08)),
        fp_fraction=rng.choice((0.0, 0.06)),
        call_fraction=rng.choice((0.0, 0.05)),
        outer_loop=rng.random() < 0.7,
    )


def sample_synthetic(rng: random.Random, length: int) -> SyntheticConfig:
    """Draw one synthetic-trace configuration (timing-only cases)."""
    return SyntheticConfig(
        length=length,
        seed=rng.randrange(1, 1 << 30),
        load_fraction=rng.choice((0.1, 0.25, 0.35)),
        store_fraction=rng.choice((0.05, 0.15)),
        branch_fraction=rng.choice((0.05, 0.15, 0.3)),
        branch_taken_probability=rng.choice((0.3, 0.6, 0.9)),
        mean_dependence_distance=rng.choice((2.0, 4.0, 8.0)),
    )


def sample_zoo(rng: random.Random,
               length: int) -> tuple[str, SyntheticConfig]:
    """Draw one registered ``zoo_*`` scenario, reseeded per case.

    Returns ``(zoo name, generator config)`` where the config is the
    scenario's registered parameters with this case's length and a
    fresh seed -- so the fuzzer explores the scenario's *axis
    position* (its mix/entropy/footprint), not a single fixed trace.
    """
    from repro.workloads.zoo import ZOO_NAMES, zoo_config

    name = ZOO_NAMES[rng.randrange(len(ZOO_NAMES))]
    return name, dataclasses.replace(
        zoo_config(name, length=length), seed=rng.randrange(1, 1 << 30)
    )
