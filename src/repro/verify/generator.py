"""Constrained-random ``repro.isa`` program generation for fuzzing.

The synthetic-trace generator (:mod:`repro.workloads.synthetic`)
fabricates dynamic streams directly, which is ideal for timing-only
studies but exercises no architectural semantics.  This module instead
generates real *assembly programs* -- loops with counted back-edges,
data-dependent (mispredicting) forward branches, loads and stores that
alias through a small shared array, multiply/divide chains, a sprinkle
of floating point, and call/return pairs -- so a case can be pushed
through all three implementations of the machine (ISA emulator, fast
pipeline, reference pipeline) and cross-checked end to end.

Two properties are guaranteed by construction:

* **Determinism** -- the whole program is a pure function of
  :class:`ProgramGenConfig` (every random draw comes from one seeded
  :class:`~repro.workloads._datagen.Lcg`).
* **Termination** -- every backward edge is a counted loop on a
  dedicated counter register that the loop body never touches, so a
  generated program always reaches ``halt`` (the emulator's
  instruction cap is a second, independent bound).

Programs are built as a list of source *lines* with labels on lines of
their own -- exactly the shape the delta-debugging minimizer
(:mod:`repro.verify.minimize`) wants: any subset of instruction lines
still assembles against the surviving labels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.assembler import Program, assemble
from repro.workloads._datagen import Lcg

#: Registers holding generated data values (dests cycle through these).
_DATA_REGS = tuple(range(1, 13))
#: Scratch registers for computed (data-dependent) addresses.
_ADDR_REG = 13
#: Base register pointing at the shared data array.
_BASE_REG = 20
#: Loop counter registers, one per loop nesting slot; never used as a
#: data destination, so loop trip counts cannot be corrupted.
_COUNTER_REGS = (25, 26, 27, 28)

#: Register-register ALU opcodes the generator draws from.
_ALU_RR = ("addu", "subu", "and", "or", "xor", "slt", "sltu")
#: Register-immediate ALU opcodes.
_ALU_RI = ("addiu", "andi", "ori", "xori", "slti", "sll", "srl", "sra")
#: Two-source conditional branches (data dependent -> mispredicts).
_BRANCHES = ("beq", "bne", "blt", "bge")
#: Multiply/divide opcodes (IMUL class coverage).
_MULDIV = ("mult", "div", "rem")


@dataclass(frozen=True)
class ProgramGenConfig:
    """Parameters of one generated program.

    Attributes:
        seed: Sole entropy source; equal configs generate equal text.
        blocks: Number of counted loops laid out back to back.
        block_size: Instruction slots per loop body.
        loop_iterations: Trip count of each counted loop.
        memory_words: Size of the shared array; *small* values make
            loads and stores alias heavily (the interesting case for
            memory-ordering logic).
        store_fraction: Fraction of body slots that are stores.
        load_fraction: Fraction of body slots that are loads.
        branch_fraction: Fraction of body slots that are forward,
            data-dependent conditional branches.
        muldiv_fraction: Fraction of body slots that are mult/div/rem.
        fp_fraction: Fraction of body slots that are floating point.
        call_fraction: Fraction of body slots that call a leaf
            subroutine (``jal``/``jr`` coverage).
        outer_loop: Wrap all blocks in one extra counted loop.
    """

    seed: int = 0
    blocks: int = 3
    block_size: int = 10
    loop_iterations: int = 4
    memory_words: int = 12
    store_fraction: float = 0.15
    load_fraction: float = 0.20
    branch_fraction: float = 0.15
    muldiv_fraction: float = 0.06
    fp_fraction: float = 0.05
    call_fraction: float = 0.04
    outer_loop: bool = True

    def __post_init__(self) -> None:
        if self.blocks < 1:
            raise ValueError(f"blocks must be >= 1, got {self.blocks}")
        if self.block_size < 2:
            raise ValueError(f"block_size must be >= 2, got {self.block_size}")
        if self.loop_iterations < 1:
            raise ValueError("loop_iterations must be >= 1")
        if self.memory_words < 1:
            raise ValueError("memory_words must be >= 1")
        fractions = (
            self.store_fraction + self.load_fraction + self.branch_fraction
            + self.muldiv_fraction + self.fp_fraction + self.call_fraction
        )
        if not 0.0 <= fractions <= 1.0:
            raise ValueError("slot fractions must sum to within [0, 1]")


def _pick_slot_kind(rng: Lcg, config: ProgramGenConfig) -> str:
    roll = rng.next_below(1000) / 1000.0
    for kind, fraction in (
        ("store", config.store_fraction),
        ("load", config.load_fraction),
        ("branch", config.branch_fraction),
        ("muldiv", config.muldiv_fraction),
        ("fp", config.fp_fraction),
        ("call", config.call_fraction),
    ):
        if roll < fraction:
            return kind
        roll -= fraction
    return "alu"


class _Emitter:
    """Accumulates source lines and hands out unique labels."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self._labels = 0

    def label(self, prefix: str) -> str:
        self._labels += 1
        return f"{prefix}{self._labels}"

    def inst(self, text: str) -> None:
        self.lines.append(f"    {text}")

    def mark(self, label: str) -> None:
        self.lines.append(f"{label}:")


def _emit_body_slot(
    emitter: _Emitter,
    rng: Lcg,
    config: ProgramGenConfig,
    dest_cursor: list[int],
    pending_labels: dict[int, list[str]],
    slot: int,
    block_size: int,
    has_leaf: bool,
) -> None:
    """Emit one loop-body slot (possibly scheduling a forward label)."""
    kind = _pick_slot_kind(rng, config)
    regs = _DATA_REGS
    src_a = regs[rng.next_below(len(regs))]
    src_b = regs[rng.next_below(len(regs))]
    dest = regs[dest_cursor[0] % len(regs)]
    dest_cursor[0] += 1
    if kind == "store":
        if rng.next_below(2):
            # Static-offset store into the small shared pool.
            offset = 4 * rng.next_below(config.memory_words)
            emitter.inst(f"sw    r{src_a}, {offset}(r{_BASE_REG})")
        else:
            # Data-dependent address: masked value indexes the pool,
            # so different iterations alias unpredictably.
            emitter.inst(f"andi  r{_ADDR_REG}, r{src_a}, "
                         f"{config.memory_words - 1}")
            emitter.inst(f"sll   r{_ADDR_REG}, r{_ADDR_REG}, 2")
            emitter.inst(f"addu  r{_ADDR_REG}, r{_ADDR_REG}, r{_BASE_REG}")
            emitter.inst(f"sw    r{src_b}, 0(r{_ADDR_REG})")
    elif kind == "load":
        if rng.next_below(2):
            offset = 4 * rng.next_below(config.memory_words)
            emitter.inst(f"lw    r{dest}, {offset}(r{_BASE_REG})")
        else:
            emitter.inst(f"andi  r{_ADDR_REG}, r{src_a}, "
                         f"{config.memory_words - 1}")
            emitter.inst(f"sll   r{_ADDR_REG}, r{_ADDR_REG}, 2")
            emitter.inst(f"addu  r{_ADDR_REG}, r{_ADDR_REG}, r{_BASE_REG}")
            emitter.inst(f"lw    r{dest}, 0(r{_ADDR_REG})")
    elif kind == "branch" and slot + 2 < block_size:
        # Forward, data-dependent branch over the next 1-3 slots.
        skip = 1 + rng.next_below(min(3, block_size - slot - 2))
        label = emitter.label("F")
        pending_labels.setdefault(slot + skip, []).append(label)
        opcode = _BRANCHES[rng.next_below(len(_BRANCHES))]
        emitter.inst(f"{opcode:5s} r{src_a}, r{src_b}, {label}")
    elif kind == "muldiv":
        opcode = _MULDIV[rng.next_below(len(_MULDIV))]
        emitter.inst(f"{opcode:5s} r{dest}, r{src_a}, r{src_b}")
    elif kind == "fp":
        fd = rng.next_below(4)
        emitter.inst(f"cvt.s.w f{fd}, r{src_a}")
        emitter.inst(f"add.s f{fd}, f{fd}, f{(fd + 1) & 3}")
    elif kind == "call" and has_leaf:
        emitter.inst("jal   leaf")
    else:  # alu (and the fall-through cases above)
        if rng.next_below(3) == 0:
            opcode = _ALU_RI[rng.next_below(len(_ALU_RI))]
            imm = rng.next_below(255) if opcode != "addiu" \
                else rng.next_below(511) - 255
            emitter.inst(f"{opcode:5s} r{dest}, r{src_a}, {imm}")
        else:
            opcode = _ALU_RR[rng.next_below(len(_ALU_RR))]
            emitter.inst(f"{opcode:5s} r{dest}, r{src_a}, r{src_b}")


def generate_source(config: ProgramGenConfig) -> str:
    """Generate a complete, terminating assembly program."""
    rng = Lcg(config.seed ^ 0x5EED_F00D)
    emitter = _Emitter()
    has_leaf = config.call_fraction > 0.0

    # Data section: the shared, heavily aliased word pool.
    emitter.lines.append("    .data")
    words = ", ".join(
        str(rng.next_below(1 << 16)) for _ in range(config.memory_words)
    )
    emitter.lines.append("pool:")
    emitter.lines.append(f"    .word {words}")
    emitter.lines.append("    .text")
    emitter.mark("main")
    emitter.inst(f"la    r{_BASE_REG}, pool")
    for reg in _DATA_REGS:
        emitter.inst(f"li    r{reg}, {rng.next_below(1 << 12)}")

    outer_counter = _COUNTER_REGS[-1]
    if config.outer_loop:
        emitter.inst(f"li    r{outer_counter}, 2")
        emitter.mark("outer")

    dest_cursor = [0]
    for block in range(config.blocks):
        counter = _COUNTER_REGS[block % (len(_COUNTER_REGS) - 1)]
        body_label = f"L{block}"
        emitter.inst(f"li    r{counter}, {config.loop_iterations}")
        emitter.mark(body_label)
        pending_labels: dict[int, list[str]] = {}
        for slot in range(config.block_size):
            for label in pending_labels.pop(slot, ()):
                emitter.mark(label)
            _emit_body_slot(
                emitter, rng, config, dest_cursor, pending_labels,
                slot, config.block_size, has_leaf,
            )
        for labels in pending_labels.values():
            for label in labels:
                emitter.mark(label)
        emitter.inst(f"addiu r{counter}, r{counter}, -1")
        emitter.inst(f"bgtz  r{counter}, {body_label}")

    if config.outer_loop:
        emitter.inst(f"addiu r{outer_counter}, r{outer_counter}, -1")
        emitter.inst(f"bgtz  r{outer_counter}, outer")
    emitter.inst("halt")

    if has_leaf:
        # A flat leaf subroutine (never calls anything, so the single
        # link register is safe).
        emitter.mark("leaf")
        emitter.inst("xor   r9, r1, r2")
        emitter.inst("addiu r9, r9, 17")
        emitter.inst("jr    r31")

    return "\n".join(emitter.lines) + "\n"


def generate_program(config: ProgramGenConfig) -> Program:
    """Generate and assemble a program (see :func:`generate_source`)."""
    return assemble(generate_source(config))
