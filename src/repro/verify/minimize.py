"""Delta-debugging minimizer for fuzz failures.

Given a failing (program, machine config) pair and a predicate that
re-checks it, this module shrinks both halves:

* **Program**: classic ddmin over the *instruction lines* of the
  assembly source.  Directives, labels, and ``halt`` are pinned --
  any subset of the remaining lines still assembles -- so the search
  space is exactly the removable instructions.
* **Config**: greedy per-field simplification toward the baseline
  defaults (fewer width, shallower buffers, one cluster where the
  steering policy permits), accepting a change only when the failure
  persists.

The result is written as a standalone pytest reproducer under
``tests/repros/`` that re-runs the original checks and fails while
the underlying bug exists.
"""

from __future__ import annotations

import dataclasses
import enum
from pathlib import Path
from typing import Callable

from repro.isa.assembler import assemble
from repro.uarch.config import MachineConfig

#: A predicate deciding whether a (source, config) case still fails.
#: It must return False (not raise) for cases that no longer assemble
#: or run -- the minimizer probes aggressively.
FailurePredicate = Callable[[str, MachineConfig], bool]


def _is_removable(line: str) -> bool:
    """True for instruction lines ddmin may delete.

    Labels, section directives, ``.word`` data, and the terminating
    ``halt`` stay pinned so every candidate subset still assembles
    and terminates.
    """
    stripped = line.strip()
    if not stripped or stripped.endswith(":") or stripped.startswith("."):
        return False
    return stripped != "halt"


def ddmin_lines(source: str, still_fails: Callable[[str], bool]) -> str:
    """Minimize the removable lines of ``source`` under ``still_fails``.

    Standard ddmin: try removing chunks of removable lines, halving
    the chunk size until it reaches one line and no single removal
    reproduces the failure.  ``still_fails`` receives candidate full
    sources (pinned lines always included, original order preserved).
    """
    lines = source.splitlines()
    removable = [i for i, line in enumerate(lines) if _is_removable(line)]

    def build(kept: set[int]) -> str:
        return "\n".join(
            line for i, line in enumerate(lines)
            if i in kept or not _is_removable(line)
        ) + "\n"

    kept = set(removable)
    chunk = max(1, len(kept) // 2)
    while chunk >= 1:
        progress = False
        order = [i for i in removable if i in kept]
        for start in range(0, len(order), chunk):
            candidate = kept - set(order[start:start + chunk])
            if candidate != kept and still_fails(build(candidate)):
                kept = candidate
                progress = True
        if not progress:
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
    return build(kept)


#: Candidate simplified values per MachineConfig field, tried in
#: order; the first that keeps the failure alive wins.
_CONFIG_SHRINKS = {
    "fetch_width": (1, 2, 4),
    "dispatch_width": (1, 2, 4),
    "issue_width": (1, 2, 4),
    "retire_width": (2, 4, 8),
    "max_in_flight": (8, 16, 32),
    "wakeup_select_stages": (1,),
    "inter_cluster_bypass_cycles": (1,),
    "front_end_stages": (0, 1),
}


def shrink_config(
    source: str, config: MachineConfig, still_fails: FailurePredicate
) -> MachineConfig:
    """Greedy per-field simplification of a failing machine config."""
    for field, candidates in _CONFIG_SHRINKS.items():
        for value in candidates:
            if getattr(config, field) == value:
                break
            try:
                candidate = dataclasses.replace(config, **{field: value})
            except ValueError:
                continue
            if still_fails(source, candidate):
                config = candidate
                break
    # A single cluster is simpler than two, when the policy allows it.
    if len(config.clusters) == 2:
        try:
            candidate = dataclasses.replace(config, clusters=config.clusters[:1])
            if still_fails(source, candidate):
                config = candidate
        except ValueError:
            pass
    return config


def minimize_case(
    source: str, config: MachineConfig, still_fails: FailurePredicate
) -> tuple[str, MachineConfig]:
    """Shrink program first (the big win), then the machine config."""
    small = ddmin_lines(source, lambda text: still_fails(text, config))
    return small, shrink_config(small, config, still_fails)


def instruction_count(source: str) -> int:
    """Assembled instruction count of a source text."""
    return len(assemble(source).instructions)


# ----------------------------------------------------------------------
# reproducer emission
# ----------------------------------------------------------------------


def _value_source(value) -> str:
    """Python constructor source for a config field value."""
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ", ".join(
            f"{f.name}={_value_source(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"{type(value).__name__}({fields})"
    if isinstance(value, tuple):
        inner = ", ".join(_value_source(item) for item in value)
        return f"({inner},)" if inner else "()"
    return repr(value)


def config_source(config: MachineConfig) -> str:
    """Eval-able constructor source for a machine config."""
    return _value_source(config)


_REPRO_TEMPLATE = '''\
"""Minimized fuzz reproducer (auto-generated -- do not edit).

Case seed {seed} (case {case_id}): {summary}

Replay the original (unminimized) case with:
    PYTHONPATH=src python -m repro fuzz --case-seed {seed}{extra_flags}
"""

from repro.uarch.config import (
    CacheConfig,
    ClusterConfig,
    MachineConfig,
    PredictorConfig,
    SelectionPolicy,
    SteeringPolicy,
)
from repro.verify.fuzzer import check_source_on_config

SOURCE = """\\
{source}"""

CONFIG = {config}


def test_reproducer():
    failures = check_source_on_config(SOURCE, CONFIG)
    assert not failures, "\\n".join(failures)
'''


def write_reproducer(
    directory: str | Path,
    case_id: int,
    seed: int,
    summary: str,
    source: str,
    config: MachineConfig,
    fifo_only: bool = False,
) -> Path:
    """Emit a standalone pytest file for a minimized failure.

    The test *fails while the bug exists* (it re-runs the differential
    checks and asserts they pass), so fixing the bug turns it into a
    permanent regression guard.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"test_case_{seed}_{case_id}.py"
    path.write_text(
        _REPRO_TEMPLATE.format(
            seed=seed,
            case_id=case_id,
            summary=summary,
            source=source,
            config=config_source(config),
            extra_flags=" --fifo-only" if fifo_only else "",
        ),
        encoding="utf-8",
    )
    return path
