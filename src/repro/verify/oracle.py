"""Architectural oracle and invariant checks for differential fuzzing.

Three independent implementations of the machine exist in this repo:
the ISA emulator (:mod:`repro.isa.emulator`), the optimized timing
pipeline, and the frozen reference pipeline.  This module adds a
fourth -- a deliberately *re-implemented* shadow interpreter -- and
the comparison functions the fuzzer applies to every case:

* :func:`compare_architectural` -- final register file, memory image,
  and committed-instruction stream: emulator vs shadow interpreter.
* :func:`compare_stats` -- byte-identical ``SimStats.to_dict()``
  between the optimized and reference pipelines.
* :func:`check_timing_invariants` -- per-instruction lifecycle
  ordering, width/occupancy bounds, and the stall-cycle partition.

The shadow interpreter is written in a different style on purpose
(unsigned 32-bit register file with a signed *view*, opcode dispatch
table) so a semantics bug in the emulator is unlikely to be faithfully
duplicated here.  Every check returns a list of human-readable failure
strings -- empty means the case passed.
"""

from __future__ import annotations

from repro.isa.assembler import Program
from repro.isa.emulator import Emulator, Trace
from repro.isa.instructions import FP_REG_BASE, OpClass

_M32 = 0xFFFFFFFF


def _signed(value: int) -> int:
    """Signed view of an unsigned 32-bit value."""
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


class ShadowState:
    """Architectural state of the shadow interpreter.

    Integer registers are kept *unsigned* 32-bit (the emulator keeps
    them signed) -- the different representation is part of the
    independence argument.
    """

    def __init__(self, program: Program):
        self.program = program
        self.iregs = [0] * FP_REG_BASE
        self.fregs = [0.0] * FP_REG_BASE
        self.memory: dict[int, int] = dict(program.data_image)
        self.pc = program.entry_point
        self.halted = False

    # register access --------------------------------------------------

    def get(self, index: int) -> int:
        """Unsigned value of an integer register (r0 reads zero)."""
        return self.iregs[index] if index else 0

    def sget(self, index: int) -> int:
        """Signed value of an integer register."""
        return _signed(self.get(index))

    def put(self, index: int, value: int) -> None:
        """Write an integer register (r0 writes vanish)."""
        if index:
            self.iregs[index] = value & _M32

    def fget(self, flat: int) -> float:
        """Read a flat fp register index."""
        return self.fregs[flat - FP_REG_BASE]

    def fput(self, flat: int, value: float) -> None:
        """Write a flat fp register index."""
        self.fregs[flat - FP_REG_BASE] = float(value)

    # memory access ----------------------------------------------------

    def read_mem(self, address: int, size: int) -> int:
        """Unsigned little-endian read; absent bytes are zero."""
        value = 0
        for i in range(size - 1, -1, -1):
            value = (value << 8) | self.memory.get(address + i, 0)
        return value

    def write_mem(self, address: int, value: int, size: int) -> None:
        """Little-endian write of the low ``size`` bytes."""
        for i in range(size):
            self.memory[address + i] = (value >> (8 * i)) & 0xFF


def _trunc_div(a: int, b: int) -> int:
    """C-style truncating division; division by zero yields zero."""
    if b == 0:
        return 0
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def shadow_run(
    program: Program, max_instructions: int = 1_000_000
) -> tuple[list[tuple], ShadowState]:
    """Execute ``program`` on the shadow interpreter.

    Returns:
        ``(records, state)`` where each record is the committed tuple
        ``(pc, opcode, taken, next_pc, mem_addr)`` -- the fields the
        emulator's :class:`~repro.isa.emulator.DynInst` must agree on
        -- and ``state`` is the final architectural state.
    """
    s = ShadowState(program)
    text = program.instructions
    records: list[tuple] = []
    while not s.halted and len(records) < max_instructions:
        if not 0 <= s.pc < len(text):
            raise IndexError(f"shadow PC {s.pc} outside text segment")
        inst = text[s.pc]
        op = inst.opcode
        pc = s.pc
        next_pc = pc + 1
        taken = False
        mem_addr = None
        cls = inst.op_class

        if cls is OpClass.IALU:
            _SHADOW_IALU[op](s, inst)
        elif cls is OpClass.IMUL:
            a, b = s.sget(inst.srcs[0]), s.sget(inst.srcs[1])
            if op == "mult":
                s.put(inst.dest, a * b)
            elif op == "div":
                s.put(inst.dest, _trunc_div(a, b))
            else:  # rem: sign follows the dividend; rem-by-zero is zero
                s.put(inst.dest,
                      0 if b == 0 else a - _trunc_div(a, b) * b)
        elif cls is OpClass.LOAD:
            mem_addr = (s.get(inst.srcs[0]) + inst.imm) & _M32
            _shadow_load(s, inst, op, mem_addr)
        elif cls is OpClass.STORE:
            mem_addr = (s.get(inst.srcs[1]) + inst.imm) & _M32
            _shadow_store(s, inst, op, mem_addr)
        elif cls is OpClass.BRANCH:
            taken = _SHADOW_BRANCH[op](s, inst)
            if taken:
                next_pc = inst.target
        elif cls is OpClass.JUMP:
            taken = True
            if op in ("j", "b", "jal"):
                if op == "jal":
                    s.put(31, pc + 1)
                next_pc = inst.target
            else:
                target = s.sget(inst.srcs[0])
                if op == "jalr":
                    s.put(31, pc + 1)
                if not 0 <= target < len(text):
                    raise IndexError(f"shadow jr target {target} (pc={pc})")
                next_pc = target
        elif cls is OpClass.FPU:
            _shadow_fpu(s, inst, op)
        else:  # NOP / HALT
            if op == "halt":
                s.halted = True
                break

        s.pc = next_pc
        records.append((pc, op, taken, next_pc, mem_addr))
    return records, s


_SHADOW_IALU = {
    "addu": lambda s, i: s.put(i.dest, s.get(i.srcs[0]) + s.get(i.srcs[1])),
    "subu": lambda s, i: s.put(i.dest, s.get(i.srcs[0]) - s.get(i.srcs[1])),
    "and": lambda s, i: s.put(i.dest, s.get(i.srcs[0]) & s.get(i.srcs[1])),
    "or": lambda s, i: s.put(i.dest, s.get(i.srcs[0]) | s.get(i.srcs[1])),
    "xor": lambda s, i: s.put(i.dest, s.get(i.srcs[0]) ^ s.get(i.srcs[1])),
    "nor": lambda s, i: s.put(i.dest, ~(s.get(i.srcs[0]) | s.get(i.srcs[1]))),
    "slt": lambda s, i: s.put(i.dest, int(s.sget(i.srcs[0]) < s.sget(i.srcs[1]))),
    "sltu": lambda s, i: s.put(i.dest, int(s.get(i.srcs[0]) < s.get(i.srcs[1]))),
    "sllv": lambda s, i: s.put(i.dest, s.get(i.srcs[0]) << (s.get(i.srcs[1]) & 31)),
    "srlv": lambda s, i: s.put(i.dest, s.get(i.srcs[0]) >> (s.get(i.srcs[1]) & 31)),
    "srav": lambda s, i: s.put(i.dest, s.sget(i.srcs[0]) >> (s.get(i.srcs[1]) & 31)),
    "addiu": lambda s, i: s.put(i.dest, s.get(i.srcs[0]) + i.imm),
    "andi": lambda s, i: s.put(i.dest, s.get(i.srcs[0]) & (i.imm & _M32)),
    "ori": lambda s, i: s.put(i.dest, s.get(i.srcs[0]) | (i.imm & _M32)),
    "xori": lambda s, i: s.put(i.dest, s.get(i.srcs[0]) ^ (i.imm & _M32)),
    "slti": lambda s, i: s.put(i.dest, int(s.sget(i.srcs[0]) < i.imm)),
    "sltiu": lambda s, i: s.put(i.dest, int(s.get(i.srcs[0]) < (i.imm & _M32))),
    "sll": lambda s, i: s.put(i.dest, s.get(i.srcs[0]) << (i.imm & 31)),
    "srl": lambda s, i: s.put(i.dest, s.get(i.srcs[0]) >> (i.imm & 31)),
    "sra": lambda s, i: s.put(i.dest, s.sget(i.srcs[0]) >> (i.imm & 31)),
    "lui": lambda s, i: s.put(i.dest, i.imm << 16),
    "li": lambda s, i: s.put(i.dest, i.imm),
    "move": lambda s, i: s.put(i.dest, s.get(i.srcs[0])),
}

_SHADOW_BRANCH = {
    "beq": lambda s, i: s.get(i.srcs[0]) == s.get(i.srcs[1]),
    "bne": lambda s, i: s.get(i.srcs[0]) != s.get(i.srcs[1]),
    "blez": lambda s, i: s.sget(i.srcs[0]) <= 0,
    "bgtz": lambda s, i: s.sget(i.srcs[0]) > 0,
    "bltz": lambda s, i: s.sget(i.srcs[0]) < 0,
    "bgez": lambda s, i: s.sget(i.srcs[0]) >= 0,
    "blt": lambda s, i: s.sget(i.srcs[0]) < s.sget(i.srcs[1]),
    "bge": lambda s, i: s.sget(i.srcs[0]) >= s.sget(i.srcs[1]),
    "ble": lambda s, i: s.sget(i.srcs[0]) <= s.sget(i.srcs[1]),
    "bgt": lambda s, i: s.sget(i.srcs[0]) > s.sget(i.srcs[1]),
}


def _shadow_load(s: ShadowState, inst, op: str, address: int) -> None:
    if op == "lw":
        s.put(inst.dest, s.read_mem(address, 4))
    elif op == "lbu":
        s.put(inst.dest, s.read_mem(address, 1))
    elif op == "lb":
        s.put(inst.dest, (s.read_mem(address, 1) ^ 0x80) - 0x80)
    elif op == "lhu":
        s.put(inst.dest, s.read_mem(address, 2))
    elif op == "lh":
        s.put(inst.dest, (s.read_mem(address, 2) ^ 0x8000) - 0x8000)
    else:  # l.s: 16.16 fixed point, matching the emulator's convention
        raw = (s.read_mem(address, 4) ^ 0x8000_0000) - 0x8000_0000
        s.fput(inst.dest, raw / 65536.0)


def _shadow_store(s: ShadowState, inst, op: str, address: int) -> None:
    source = inst.srcs[0]
    if op == "sw":
        s.write_mem(address, s.get(source), 4)
    elif op == "sb":
        s.write_mem(address, s.get(source), 1)
    elif op == "sh":
        s.write_mem(address, s.get(source), 2)
    else:  # s.s
        s.write_mem(address, int(s.fget(source) * 65536.0) & _M32, 4)


def _shadow_fpu(s: ShadowState, inst, op: str) -> None:
    if op == "add.s":
        s.fput(inst.dest, s.fget(inst.srcs[0]) + s.fget(inst.srcs[1]))
    elif op == "sub.s":
        s.fput(inst.dest, s.fget(inst.srcs[0]) - s.fget(inst.srcs[1]))
    elif op == "mul.s":
        s.fput(inst.dest, s.fget(inst.srcs[0]) * s.fget(inst.srcs[1]))
    elif op == "div.s":
        divisor = s.fget(inst.srcs[1])
        s.fput(inst.dest, 0.0 if divisor == 0 else s.fget(inst.srcs[0]) / divisor)
    elif op == "mov.s":
        s.fput(inst.dest, s.fget(inst.srcs[0]))
    elif op == "cvt.s.w":
        s.fput(inst.dest, float(s.sget(inst.srcs[0])))
    else:  # cvt.w.s -- truncating float-to-int into an integer register
        s.put(inst.dest, int(s.fget(inst.srcs[0])))


# ----------------------------------------------------------------------
# comparisons
# ----------------------------------------------------------------------


def _nonzero_bytes(memory: dict[int, int]) -> dict[int, int]:
    """Memory image normalised to its non-zero bytes (absent == 0)."""
    return {addr: byte for addr, byte in memory.items() if byte}


def compare_architectural(
    emulator: Emulator, trace: Trace, max_instructions: int = 1_000_000
) -> list[str]:
    """Emulator vs shadow interpreter: full architectural equality.

    Args:
        emulator: A *finished* emulator (its :meth:`run` produced
            ``trace``).
        trace: The committed stream the emulator reported.
        max_instructions: The same cap the emulator ran with.

    Returns:
        Failure descriptions; empty when the oracle agrees.
    """
    failures: list[str] = []
    try:
        records, shadow = shadow_run(emulator.program, max_instructions)
    except IndexError as error:
        return [f"shadow interpreter crashed: {error}"]

    if shadow.halted != emulator.halted:
        failures.append(
            f"halt disagreement: emulator halted={emulator.halted}, "
            f"shadow halted={shadow.halted}"
        )
    if len(records) != len(trace):
        failures.append(
            f"committed-stream length: emulator {len(trace)}, "
            f"shadow {len(records)}"
        )
    for inst, record in zip(trace, records):
        mine = (inst.pc, inst.opcode, inst.taken, inst.next_pc, inst.mem_addr)
        if mine != record:
            failures.append(
                f"committed stream diverges at seq {inst.seq}: "
                f"emulator {mine} vs shadow {record}"
            )
            break
    for index in range(1, FP_REG_BASE):
        emulated = emulator.int_regs[index] & _M32
        if emulated != shadow.iregs[index]:
            failures.append(
                f"int register r{index}: emulator {emulated:#x}, "
                f"shadow {shadow.iregs[index]:#x}"
            )
    for index in range(FP_REG_BASE):
        if emulator.fp_regs[index] != shadow.fregs[index]:
            failures.append(
                f"fp register f{index}: emulator {emulator.fp_regs[index]!r}, "
                f"shadow {shadow.fregs[index]!r}"
            )
    emulator_mem = _nonzero_bytes(emulator.memory)
    shadow_mem = _nonzero_bytes(shadow.memory)
    if emulator_mem != shadow_mem:
        differing = sorted(
            addr for addr in set(emulator_mem) | set(shadow_mem)
            if emulator_mem.get(addr, 0) != shadow_mem.get(addr, 0)
        )
        failures.append(
            f"memory image differs at {len(differing)} byte(s), "
            f"first at {differing[0]:#x}"
        )
    return failures


def compare_stats(fast_payload: dict, reference_payload: dict) -> list[str]:
    """Fast vs reference ``SimStats.to_dict()`` payloads, byte level."""
    import json

    fast_bytes = json.dumps(fast_payload, sort_keys=True)
    reference_bytes = json.dumps(reference_payload, sort_keys=True)
    if fast_bytes == reference_bytes:
        return []
    differing = {
        key: (fast_payload.get(key), reference_payload.get(key))
        for key in set(fast_payload) | set(reference_payload)
        if fast_payload.get(key) != reference_payload.get(key)
    }
    return [f"fast/reference SimStats diverge: {differing}"]


def check_timing_invariants(simulator, config, trace) -> list[str]:
    """Machine-independent timing invariants on a finished fast run.

    Checks per-instruction lifecycle ordering (fetch <= dispatch <=
    issue < complete <= commit), in-order commit within the retire
    width, per-cycle issue-width enforcement, occupancy bounds, and
    the stall-cycle partition (``SimStats.validate``).
    """
    failures: list[str] = []
    stats = simulator.stats
    try:
        stats.validate()
    except ValueError as error:
        failures.append(f"stats invariants: {error}")
    n = len(trace)
    if stats.committed != n:
        failures.append(
            f"committed {stats.committed} of {n} trace instructions"
        )
    fetch = simulator.fetch_cycle
    dispatch = simulator.dispatch_cycle
    issue = simulator.issue_cycle
    complete = simulator.complete_cycle
    commit = simulator.commit_cycle
    issued_per_cycle: dict[int, int] = {}
    committed_per_cycle: dict[int, int] = {}
    for seq in range(n):
        if not simulator.issued[seq]:
            failures.append(f"inst {seq} never issued")
            continue
        if not (fetch[seq] <= dispatch[seq] <= issue[seq]):
            failures.append(
                f"inst {seq} lifecycle out of order: fetch {fetch[seq]}, "
                f"dispatch {dispatch[seq]}, issue {issue[seq]}"
            )
        if complete[seq] < issue[seq] + 1:
            failures.append(
                f"inst {seq} completed at {complete[seq]} before "
                f"issue {issue[seq]} + latency"
            )
        if commit[seq] < complete[seq]:
            failures.append(
                f"inst {seq} committed at {commit[seq]} before "
                f"completing at {complete[seq]}"
            )
        if seq and commit[seq] < commit[seq - 1]:
            failures.append(
                f"out-of-order commit: inst {seq} at {commit[seq]} "
                f"before inst {seq - 1} at {commit[seq - 1]}"
            )
        if not 0 <= simulator.cluster_of[seq] < len(config.clusters):
            failures.append(f"inst {seq} on bogus cluster "
                            f"{simulator.cluster_of[seq]}")
        issued_per_cycle[issue[seq]] = issued_per_cycle.get(issue[seq], 0) + 1
        committed_per_cycle[commit[seq]] = (
            committed_per_cycle.get(commit[seq], 0) + 1
        )
        if len(failures) > 8:  # a broken run floods; keep output short
            failures.append("... further per-instruction checks elided")
            break
    if issued_per_cycle and max(issued_per_cycle.values()) > config.issue_width:
        failures.append(
            f"issue width exceeded: {max(issued_per_cycle.values())} > "
            f"{config.issue_width}"
        )
    if (committed_per_cycle
            and max(committed_per_cycle.values()) > config.retire_width):
        failures.append(
            f"retire width exceeded: {max(committed_per_cycle.values())} > "
            f"{config.retire_width}"
        )
    if stats.occupancy_sum > stats.cycles * config.total_capacity:
        failures.append(
            f"occupancy sum {stats.occupancy_sum} exceeds cycles x capacity "
            f"({stats.cycles} x {config.total_capacity})"
        )
    return failures
