"""Differential fuzzing and architectural-oracle verification.

The repo carries three independent implementations of the same
machine -- the ISA emulator, the optimized timing pipeline, and the
frozen reference pipeline.  This package cross-checks them on
*sampled* (machine config, program) pairs instead of a fixed grid:

* :mod:`repro.verify.generator` -- constrained-random assembly
  programs (counted loops, aliasing stores, mispredicting branches).
* :mod:`repro.verify.sampler` -- machine-config and workload sampling
  over the canonical shape registry.
* :mod:`repro.verify.oracle` -- the shadow-interpreter architectural
  oracle, stats comparison, and timing-invariant checks.
* :mod:`repro.verify.fuzzer` -- the seeded campaign driver
  (``repro fuzz``), reusing the parallel campaign pool.
* :mod:`repro.verify.minimize` -- delta-debugging shrinker and
  reproducer emission.
* :mod:`repro.verify.selftest` -- the planted-bug proof that the
  harness detects and minimizes real divergences.
"""

from repro.verify.fuzzer import (
    DEFAULT_CASE_INSTRUCTIONS,
    FuzzCase,
    FuzzFailure,
    FuzzReport,
    check_source_on_config,
    derive_case_seed,
    run_fuzz,
    run_fuzz_case,
)
from repro.verify.generator import ProgramGenConfig, generate_program, generate_source
from repro.verify.minimize import ddmin_lines, minimize_case, write_reproducer
from repro.verify.oracle import (
    check_timing_invariants,
    compare_architectural,
    compare_stats,
    shadow_run,
)
from repro.verify.sampler import sample_machine, sample_program, sample_synthetic
from repro.verify.selftest import PlantedSteeringBug, SelfTestResult, run_selftest

__all__ = [
    "DEFAULT_CASE_INSTRUCTIONS",
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "PlantedSteeringBug",
    "ProgramGenConfig",
    "SelfTestResult",
    "check_source_on_config",
    "check_timing_invariants",
    "compare_architectural",
    "compare_stats",
    "ddmin_lines",
    "derive_case_seed",
    "generate_program",
    "generate_source",
    "minimize_case",
    "run_fuzz",
    "run_fuzz_case",
    "run_selftest",
    "sample_machine",
    "sample_program",
    "sample_synthetic",
    "shadow_run",
    "write_reproducer",
]
