"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``delay``      -- print the Table 2 delay summary (and Table 4);
  ``--machine`` prints a per-structure critical-path breakdown for
  any registered machine shape.
* ``frontier``   -- the complexity-effectiveness frontier: window
  sizes and every registered shape swept over the campaign pool
  (cached), with BIPS at one or all technology nodes.
* ``machines``   -- list the simulated machine configurations.
* ``workloads``  -- list (and optionally profile) the benchmark suite.
* ``simulate``   -- run one machine over one workload.
* ``stats``      -- simulate and print the per-cause stall breakdown.
* ``trace``      -- emit a structured event trace (Chrome/Perfetto
  JSON, metrics JSON, or a text timeline).
* ``experiment`` -- regenerate fig13 / fig15 / fig17 / speedup.
* ``campaign``   -- run a figure grid on the parallel campaign engine
  (worker pool, on-disk result cache, per-cell timeout/retry).
* ``asm``        -- assemble, run, and optionally simulate a program.
* ``fuzz``       -- differential fuzzing: sampled machines and
  programs cross-checked against the architectural oracle, the
  reference pipeline, and the compiled pipeline (``--selftest``
  plants a steering bug, a port-arbiter bug, and a compiler
  constant-folding bug to prove the harness works).
* ``serve``      -- design-space-as-a-service: a long-running asyncio
  HTTP/JSON server over the campaign cache (frontier / cell / delay /
  machines / healthz / metrics endpoints, coalesced misses, bounded
  simulation queue; ``--warm`` pre-fills the cache first).
* ``ledger``     -- inspect the run ledger: the append-only JSONL
  history every simulate/campaign/frontier/fuzz invocation appends to
  (list/show/diff/gc).
* ``bench``      -- the perf-regression gate: current measurements vs
  the committed ``BENCH_*.json`` floors and the ledger's trailing
  window (``--check`` exits nonzero on regression).

``campaign``/``frontier``/``fuzz`` accept ``--progress`` for a live
single-line telemetry readout (cells done, hit rate, inst/s, ETA) fed
by per-cell heartbeats from the engine.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import profile_trace
from repro.core import experiments, machines, speedup
from repro.core.experiments import DEFAULT_INSTRUCTIONS
from repro.delay.reservation import ReservationTableDelayModel
from repro.delay.summary import overall_delays
from repro.isa import assemble, run_to_trace
from repro.report import bar_chart, text_table
from repro.technology import TECHNOLOGIES, technology_by_feature_size
from repro.uarch.pipeline import simulate as run_simulation
from repro.workloads import (
    WORKLOAD_NAMES,
    WORKLOAD_REGISTRY,
    ZOO_NAMES,
    SyntheticConfig,
    get_trace,
    register_external_trace,
    synthetic_trace,
    workload_names,
)

#: CLI machine names -> factory functions.
MACHINES = {
    "baseline": machines.baseline_8way,
    "dependence": machines.dependence_based_8way,
    "clustered-fifos": machines.clustered_dependence_8way,
    "clustered-windows": machines.clustered_windows_8way,
    "exec-steer": machines.clustered_exec_steer_8way,
    "random-steer": machines.clustered_random_8way,
    "modulo-steer": machines.clustered_modulo_8way,
    "least-loaded-steer": machines.clustered_least_loaded_8way,
    "load-tracking": machines.load_tracking_8way,
    "ports-limited": machines.ports_limited_8way,
}


def _progress_meter(enabled: bool, total: int | None, unit: str):
    """A live ProgressMeter on stderr, or None when not requested."""
    if not enabled:
        return None
    from repro.obs.progress import ProgressMeter

    return ProgressMeter(total=total, stream=sys.stderr, unit=unit)


def _record_ledger(kind: str, *, profile=None, config_hash: str = "",
                   extra: dict | None = None, **scalars) -> None:
    """Append this invocation to the run ledger.

    The ledger is advisory history: a failure to record (read-only
    checkout, weird filesystem) is reported on stderr but never fails
    the run that produced the real results.
    """
    from repro.obs import ledger as ledger_mod

    try:
        if profile is not None:
            entry = ledger_mod.record_profile(
                kind, profile, config_hash=config_hash, extra=extra
            )
        else:
            entry = ledger_mod.record_run(
                kind, config_hash=config_hash, extra=extra, **scalars
            )
        print(f"  ledger: recorded {kind} run {entry.run_id[:12]}")
    except Exception as error:  # pragma: no cover - environment-specific
        print(f"  ledger: not recorded ({error})", file=sys.stderr)


def _cmd_delay(args) -> int:
    techs = (
        [technology_by_feature_size(args.tech)] if args.tech else list(TECHNOLOGIES)
    )
    if args.machine:
        from repro.delay.critical_path import critical_path

        config = MACHINES[args.machine]()
        for tech in techs:
            print(critical_path(config, tech).format_report())
        return 0
    rows = []
    for tech in techs:
        for point in ((4, 32), (8, 64)):
            summary = overall_delays(tech, *point)
            rows.append(
                [
                    tech.name,
                    f"{point[0]}-way/{point[1]}",
                    round(summary.rename_ps, 1),
                    round(summary.window_logic_ps, 1),
                    round(summary.bypass_ps, 1),
                    round(summary.critical_path_ps, 1),
                ]
            )
    print(text_table(
        ["tech", "design", "rename", "wakeup+select", "bypass", "critical"], rows
    ))
    print("\nreservation table (dependence-based wakeup):")
    for tech in techs:
        model = ReservationTableDelayModel(tech)
        print(f"  {tech.name}: 4-way/80 regs {model.total(4, 80):7.1f} ps, "
              f"8-way/128 regs {model.total(8, 128):7.1f} ps")
    return 0


def _cmd_machines(_args) -> int:
    for name, factory in MACHINES.items():
        config = factory()
        organisation = " + ".join(
            (f"{c.fifo_count}x{c.fifo_depth} FIFOs" if c.uses_fifos
             else f"{c.window_size}-entry window")
            for c in config.clusters
        )
        print(f"  {name:20s} {config.name:30s} {organisation}, "
              f"{config.total_fu_count} FUs, steering={config.steering.value}")
    return 0


def _cmd_workloads(args) -> int:
    names = workload_names(None if args.kind == "all" else args.kind)
    for name in names:
        workload = WORKLOAD_REGISTRY[name]
        trace = get_trace(name, args.instructions)
        if args.profile:
            print(f"{name} [{workload.kind}] -- {workload.description}")
            print(profile_trace(trace).format_report())
            print()
        else:
            print(f"  {name:20s} {workload.kind:9s} {len(trace)} insts, "
                  f"{100 * trace.branch_fraction():.1f}% branches, "
                  f"{100 * trace.load_fraction():.1f}% loads")
    return 0


def _cmd_simulate(args) -> int:
    import time

    from repro.core.campaign import cache_key
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.profiling import record_simulation_metrics

    config = MACHINES[args.machine]()
    if args.trace_file:
        if args.workload:
            print("repro simulate: error: give a workload name or "
                  "--trace-file, not both", file=sys.stderr)
            return 2
        try:
            workload = register_external_trace(
                args.trace_file, replace=True
            ).name
        except (OSError, ValueError) as error:
            print(f"repro simulate: error: {error}", file=sys.stderr)
            return 2
    elif args.workload:
        workload = args.workload
        if workload not in WORKLOAD_REGISTRY:
            known = ", ".join(workload_names())
            print(f"repro simulate: error: unknown workload "
                  f"{workload!r} (known: {known})", file=sys.stderr)
            return 2
    else:
        print("repro simulate: error: a workload name (see 'repro "
              "workloads') or --trace-file is required", file=sys.stderr)
        return 2
    trace = get_trace(workload, args.instructions)
    start = time.perf_counter()
    stats = run_simulation(config, trace, mode=args.mode)
    seconds = time.perf_counter() - start
    print(stats.summary())
    registry = MetricsRegistry()
    record_simulation_metrics(registry, stats, seconds,
                              machine=config.name, workload=workload)
    extra = {
        "machine": args.machine,
        "workload": workload,
        "mode": args.mode,
    }
    if args.trace_file:
        extra["trace_file"] = args.trace_file
    if args.mode == "compiled":
        from repro.obs.profiling import record_compile_metrics
        from repro.uarch.compile import compile_cache_stats

        extra["compile"] = compile_cache_stats()
        record_compile_metrics(registry)
    _record_ledger(
        "simulate",
        wall_seconds=seconds,
        instructions_per_second=(stats.committed / seconds
                                 if seconds > 0 else 0.0),
        config_hash=cache_key(config, workload, args.instructions),
        snapshot=registry.snapshot(),
        extra=extra,
    )
    if args.verbose:
        print(f"  fetched {stats.fetched}, mispredicts {stats.mispredicts}, "
              f"store forwards {stats.store_forwards}")
        if stats.dispatch_stalls:
            stalls = ", ".join(
                f"{k.value}={v}"
                for k, v in sorted(stats.dispatch_stalls.items())
            )
            print(f"  dispatch stalls: {stalls}")
        histogram = {
            f"{k} issued": v for k, v in sorted(stats.issue_histogram.items())
        }
        print(bar_chart(histogram, unit=" cycles"))
    return 0


def _get_any_trace(workload: str, instructions: int):
    """A bundled workload trace, or a fresh synthetic one."""
    if workload == "synthetic":
        return synthetic_trace(SyntheticConfig(length=instructions))
    return get_trace(workload, instructions)


def _cmd_stats(args) -> int:
    import time

    config = MACHINES[args.machine]()
    trace = _get_any_trace(args.workload, args.instructions)
    start = time.perf_counter()
    stats = run_simulation(config, trace)
    seconds = time.perf_counter() - start
    stats.validate()
    print(stats.summary())
    if args.breakdown:
        rows = [
            [cause, cycles, f"{100 * fraction:5.1f}%"]
            for cause, cycles, fraction in stats.stall_breakdown()
        ]
        print("\nper-cause cycle attribution (sums to total cycles):")
        print(text_table(["cause", "cycles", "share"], rows))
        attributed = stats.active_cycles + sum(stats.stall_cycles.values())
        print(f"  attributed {attributed} of {stats.cycles} cycles")
        # The same registry + formatting the campaign reports use, so
        # a single run and a thousand-cell campaign read identically.
        from repro.obs.metrics import MetricsRegistry, format_snapshot
        from repro.obs.profiling import record_simulation_metrics

        registry = MetricsRegistry()
        record_simulation_metrics(registry, stats, seconds,
                                  machine=config.name,
                                  workload=args.workload)
        print("\nmetrics snapshot:")
        print(format_snapshot(registry.snapshot()))
    if args.json:
        from repro.obs import write_metrics_json

        write_metrics_json(args.json, stats)
        print(f"  metrics written to {args.json}")
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import EventTracer, write_chrome_trace, write_metrics_json
    from repro.report.timeline import render_timeline
    from repro.uarch.pipeline import PipelineSimulator

    config = MACHINES[args.machine]()
    trace = _get_any_trace(args.workload, args.instructions)
    capacity = (
        args.capacity if args.capacity is not None
        else EventTracer.DEFAULT_CAPACITY
    )
    try:
        tracer = EventTracer(capacity=capacity)
    except ValueError as error:
        print(f"repro trace: error: {error}", file=sys.stderr)
        return 2
    simulator = PipelineSimulator(config, trace, tracer=tracer)
    stats = simulator.run()
    stats.validate()
    if args.format == "chrome":
        payload = write_chrome_trace(args.out, tracer.events, stats=stats)
        print(f"wrote {len(payload['traceEvents'])} trace events to "
              f"{args.out} (open in Perfetto or chrome://tracing)")
    elif args.format == "metrics":
        write_metrics_json(args.out, stats)
        print(f"wrote metrics JSON to {args.out}")
    else:  # timeline
        text = render_timeline(simulator, first=0, count=args.count)
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote text timeline to {args.out}")
    if tracer.dropped:
        print(f"  note: ring buffer evicted {tracer.dropped} of "
              f"{tracer.emitted} events (raise --capacity to keep more)")
    print(stats.summary())
    return 0


def _cmd_timeline(args) -> int:
    from repro.obs import EventTracer
    from repro.report.timeline import render_timeline
    from repro.uarch.pipeline import PipelineSimulator

    config = MACHINES[args.machine]()
    trace = get_trace(args.workload, args.instructions)
    simulator = PipelineSimulator(config, trace, tracer=EventTracer())
    simulator.run()
    print(render_timeline(simulator, first=args.start, count=args.count))
    print(simulator.stats.summary())
    return 0


def _cmd_frontier(args) -> int:
    from repro.core.campaign import ResultCache
    from repro.core.frontier import (
        DEFAULT_WINDOW_SIZES,
        design_space_frontier,
        format_frontier,
    )
    from repro.core.machines import machine_registry

    if args.tech == "all":
        techs = list(TECHNOLOGIES)
    else:
        techs = [technology_by_feature_size(float(args.tech))]
    # Window-size sweep plus every registered shape; distinct configs
    # are simulated once regardless of how many technologies they are
    # clocked at.
    grid = {
        f"window-{window_size}": machines.baseline_8way(window_size=window_size)
        for window_size in DEFAULT_WINDOW_SIZES
    }
    grid.update(machine_registry())
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    meter = _progress_meter(args.progress, None, "cells")
    try:
        points, profile = design_space_frontier(
            techs=techs,
            machines=grid,
            max_instructions=args.instructions,
            jobs=args.jobs,
            cache=cache,
            heartbeat=meter.post if meter else None,
        )
    finally:
        if meter:
            meter.close()
    print(format_frontier(points))
    from repro.report import frontier_chart

    print("\nBIPS frontier:")
    print(frontier_chart(points))
    print("\ncampaign profile:")
    print(profile.format_report())
    from repro.core.campaign import grid_fingerprint

    _record_ledger(
        "frontier",
        profile=profile,
        config_hash=grid_fingerprint(grid, WORKLOAD_NAMES,
                                     args.instructions),
        extra={"tech": args.tech, "points": len(points),
               "jobs": args.jobs},
    )
    if args.metrics:
        import json

        with open(args.metrics, "w", encoding="utf-8") as handle:
            json.dump(profile.to_dict(), handle, indent=1, sort_keys=True)
        print(f"  campaign metrics written to {args.metrics}")
    return 0


def _cmd_experiment(args) -> int:
    if args.which == "speedup":
        summary = speedup.speedup_summary(max_instructions=args.instructions)
        print(summary.format_table())
        return 0
    runner = {
        "fig13": experiments.run_fig13,
        "fig15": experiments.run_fig15,
        "fig17": experiments.run_fig17,
    }[args.which]
    result = runner(max_instructions=args.instructions)
    print(result.format_table())
    if args.which == "fig17":
        print("\ninter-cluster bypass frequency:")
        print(result.format_table("bypass"))
    return 0


def _cmd_campaign(args) -> int:
    from repro.core.campaign import (
        ResultCache,
        grid_fingerprint,
        run_campaign,
    )
    from repro.core.results_io import save_result

    try:
        configs = experiments.figure_configs(args.which)
    except KeyError as error:
        print(f"repro campaign: error: {error}", file=sys.stderr)
        return 2
    workloads = {
        "paper": WORKLOAD_NAMES,
        "zoo": ZOO_NAMES,
        "all": workload_names(),
    }[args.workloads]
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir)
    progress = None
    if args.verbose:
        progress = lambda line: print(f"  {line}", file=sys.stderr)  # noqa: E731
    meter = _progress_meter(args.progress,
                            len(configs) * len(workloads), "cells")
    try:
        result, profile = run_campaign(
            configs,
            workloads=workloads,
            max_instructions=args.instructions,
            name=args.which,
            jobs=args.jobs,
            cache=cache,
            timeout=args.timeout,
            retries=args.retries,
            progress=progress,
            heartbeat=meter.post if meter else None,
        )
    finally:
        if meter:
            meter.close()
    print(result.format_table())
    if args.which == "fig17":
        print("\ninter-cluster bypass frequency:")
        print(result.format_table("bypass"))
    print("\ncampaign profile:")
    print(profile.format_report())
    _record_ledger(
        "campaign",
        profile=profile,
        config_hash=grid_fingerprint(configs, workloads,
                                     args.instructions),
        extra={"figure": args.which, "jobs": args.jobs,
               "workloads": args.workloads},
    )
    if args.out:
        save_result(result, args.out)
        print(f"  result written to {args.out}")
    if args.metrics:
        import json

        with open(args.metrics, "w", encoding="utf-8") as handle:
            json.dump(profile.to_dict(), handle, indent=1, sort_keys=True)
        print(f"  campaign metrics written to {args.metrics}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.core.machines import machine_registry
    from repro.service.app import DesignSpaceService

    if args.warm:
        from repro.core.campaign import ResultCache, run_campaign

        if args.warm == "registry":
            configs = machine_registry()
        else:
            configs = experiments.figure_configs(args.warm)
        meter = _progress_meter(args.progress,
                                len(configs) * len(WORKLOAD_NAMES), "cells")
        print(f"warming {args.warm} grid "
              f"({len(configs)} machines x {len(WORKLOAD_NAMES)} workloads, "
              f"n={args.instructions}) into {args.cache_dir} ...")
        try:
            _, profile = run_campaign(
                configs,
                max_instructions=args.instructions,
                name=f"warm-{args.warm}",
                jobs=args.jobs,
                cache=ResultCache(args.cache_dir),
                heartbeat=meter.post if meter else None,
            )
        finally:
            if meter:
                meter.close()
        print(f"  cache warm: {profile.cache_hits} hits, "
              f"{profile.simulated_cells} simulated")
    service = DesignSpaceService(
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        queue_depth=args.queue_depth,
        request_timeout=args.timeout,
        instructions=args.instructions,
    )
    print(f"serving the design space on http://{args.host}:{args.port} "
          f"(jobs={args.jobs}, queue depth {args.queue_depth}); Ctrl-C stops")
    try:
        asyncio.run(service.serve(args.host, args.port))
    except KeyboardInterrupt:
        print("\n  shutting down")
    finally:
        service.close()
    return 0


def _cmd_fuzz(args) -> int:
    from repro.verify.fuzzer import DEFAULT_REPRO_DIR, run_fuzz
    from repro.verify.selftest import (
        run_compile_selftest,
        run_port_selftest,
        run_selftest,
    )

    if args.selftest:
        import tempfile

        repro_dir = args.repro_dir or tempfile.mkdtemp(prefix="repro-selftest-")
        exit_code = 0
        for label, runner in (
            ("steering", run_selftest),
            ("port-arbiter", run_port_selftest),
            ("compiler", run_compile_selftest),
        ):
            result = runner(
                cases=args.cases, seed=args.seed, repro_dir=repro_dir
            )
            print(f"planted {label}-bug self-test:")
            print(result.report.profile.format_report())
            if not result.detected:
                print(f"  FAILED: planted {label} bug was not detected",
                      file=sys.stderr)
                exit_code = 1
                continue
            print(f"  detected the planted {label} bug; minimized "
                  f"reproducer: {result.reproducer} "
                  f"({result.minimized_instructions} instructions)")
        return exit_code

    progress = None
    if args.verbose:
        progress = lambda line: print(f"  {line}", file=sys.stderr)  # noqa: E731
    total = 1 if args.case_seed is not None else args.cases
    meter = _progress_meter(args.progress, total, "cases")
    try:
        report = run_fuzz(
            cases=args.cases,
            seed=args.seed,
            jobs=args.jobs,
            time_budget=args.time_budget,
            repro_dir=args.repro_dir or DEFAULT_REPRO_DIR,
            first_case=args.first_case,
            case_seed=args.case_seed,
            fifo_only=args.fifo_only,
            minimize=not args.no_minimize,
            progress=progress,
            heartbeat=meter.post if meter else None,
        )
    finally:
        if meter:
            meter.close()
    print("fuzz campaign:")
    print(report.profile.format_report())
    _record_ledger(
        "fuzz",
        wall_seconds=report.profile.wall_seconds,
        snapshot=report.profile.snapshot(),
        extra={
            "seed": args.seed,
            "cases": report.profile.cases,
            "cases_per_second": report.profile.cases_per_second,
            "failures": report.profile.failures,
            "skipped": report.profile.skipped,
        },
    )
    for failure in report.failures:
        print(f"  case {failure.case_id} (seed {failure.case_seed}, "
              f"{failure.shape}/{failure.kind}):")
        for line in failure.failures[:3]:
            print(f"    {line}")
        if failure.reproducer:
            print(f"    minimized reproducer: {failure.reproducer} "
                  f"({failure.minimized_instructions} instructions)")
    if args.metrics:
        import json

        with open(args.metrics, "w", encoding="utf-8") as handle:
            json.dump(report.profile.to_dict(), handle, indent=1,
                      sort_keys=True)
        print(f"  fuzz metrics written to {args.metrics}")
    return 0 if report.ok else 1


def _cmd_ledger(args) -> int:
    import json

    from repro.obs.ledger import Ledger, diff_entries

    ledger = Ledger(args.ledger_dir)
    if args.action == "list":
        entries = ledger.entries(kind=args.kind, limit=args.limit)
        if not entries:
            print("  (ledger empty)")
            return 0
        print(text_table(
            ["run", "kind", "git", "wall s", "inst/s", "cache"],
            [entry.summary_row() for entry in entries],
        ))
        return 0
    if args.action == "show":
        entry = ledger.find(args.run_id)
        if entry is None:
            print(f"repro ledger: no entry matching {args.run_id!r}",
                  file=sys.stderr)
            return 2
        print(json.dumps(entry.to_dict(), indent=2, sort_keys=True,
                         ensure_ascii=False))
        return 0
    if args.action == "diff":
        old = ledger.find(args.run_id)
        new = ledger.find(args.other)
        for wanted, found in ((args.run_id, old), (args.other, new)):
            if found is None:
                print(f"repro ledger: no entry matching {wanted!r}",
                      file=sys.stderr)
                return 2
        print(text_table(
            ["field", old.run_id[:12], new.run_id[:12], "delta"],
            [list(row) for row in diff_entries(old, new)],
        ))
        return 0
    removed = ledger.gc(args.keep)  # action == "gc"
    print(f"  removed {removed} entries, kept newest {args.keep}")
    return 0


def _cmd_bench(args) -> int:
    from repro.obs.ledger import Ledger
    from repro.obs.regression import (
        DEFAULT_THRESHOLD,
        DEFAULT_WINDOW,
        check_all,
        format_findings,
    )

    try:
        findings = check_all(
            bench_dir=args.bench_dir,
            ledger=Ledger(args.ledger_dir),
            threshold=(args.threshold if args.threshold is not None
                       else DEFAULT_THRESHOLD),
            window=(args.window if args.window is not None
                    else DEFAULT_WINDOW),
        )
    except ValueError as error:
        print(f"repro bench: error: {error}", file=sys.stderr)
        return 2
    print("bench regression gate:")
    print(format_findings(findings))
    if findings and args.check:
        return 1
    return 0


def _cmd_compile(args) -> int:
    from repro.lang import compile_source, compile_to_assembly

    with open(args.file, "r", encoding="utf-8") as handle:
        source = handle.read()
    if args.listing:
        print(compile_to_assembly(source))
    program = compile_source(source)
    trace = run_to_trace(program, max_instructions=args.instructions,
                         name=args.file)
    from repro.isa import Emulator

    emulator = Emulator(program)
    emulator.run(max_instructions=args.instructions)
    print(f"compiled {len(program)} instructions; "
          f"main returned {emulator.int_regs[2]} "
          f"({'halted' if emulator.halted else 'capped'})")
    if args.simulate:
        stats = run_simulation(MACHINES[args.simulate](), trace)
        print(stats.summary())
    return 0


def _cmd_asm(args) -> int:
    with open(args.file, "r", encoding="utf-8") as handle:
        source = handle.read()
    program = assemble(source)
    if args.listing:
        print(program.disassemble())
    trace = run_to_trace(program, max_instructions=args.instructions,
                         name=args.file)
    print(f"executed {len(trace)} instructions "
          f"({'halted' if trace.halted else 'capped'})")
    print(profile_trace(trace).format_report())
    if args.simulate:
        stats = run_simulation(MACHINES[args.simulate](), trace)
        print(stats.summary())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Complexity-Effective Superscalar "
                    "Processors' (ISCA 1997)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    delay = commands.add_parser("delay", help="print the Table 2 delay summary")
    delay.add_argument("--tech", type=float, default=None,
                       help="feature size in um (0.8, 0.35, 0.18); default all")
    delay.add_argument("--machine", choices=sorted(MACHINES), default=None,
                       help="print the per-structure critical-path "
                            "breakdown for one machine instead")
    delay.set_defaults(func=_cmd_delay)

    machine_list = commands.add_parser("machines", help="list machine configs")
    machine_list.set_defaults(func=_cmd_machines)

    workloads = commands.add_parser(
        "workloads", help="list the registered workloads"
    )
    workloads.add_argument("--profile", action="store_true",
                           help="print full trace characterisation")
    workloads.add_argument("--kind",
                           choices=("kernel", "synthetic", "external", "all"),
                           default="all",
                           help="only list workloads of this kind "
                                "(default all)")
    workloads.add_argument("-n", "--instructions", type=int, default=5_000)
    workloads.set_defaults(func=_cmd_workloads)

    simulate = commands.add_parser("simulate", help="run one machine on one workload")
    simulate.add_argument("machine", choices=sorted(MACHINES))
    simulate.add_argument("workload", nargs="?", default=None,
                          help="a registered workload name "
                               "(see 'repro workloads')")
    simulate.add_argument("--trace-file", default=None, metavar="PATH",
                          help="simulate an external JSONL trace file "
                               "(repro-trace format) instead of a "
                               "registered workload")
    simulate.add_argument("-n", "--instructions", type=int,
                          default=DEFAULT_INSTRUCTIONS,
                          help=f"dynamic instructions "
                               f"(default {DEFAULT_INSTRUCTIONS})")
    simulate.add_argument("--mode", choices=("reference", "fast", "compiled"),
                          default="compiled",
                          help="simulator model: the frozen reference, the "
                               "fast interpreter, or the per-config compiled "
                               "pipeline (default; falls back to fast on "
                               "unsupported shapes)")
    simulate.add_argument("-v", "--verbose", action="store_true")
    simulate.set_defaults(func=_cmd_simulate)

    stats_cmd = commands.add_parser(
        "stats", help="simulate and print the stall-cycle breakdown"
    )
    stats_cmd.add_argument("machine", choices=sorted(MACHINES))
    stats_cmd.add_argument("workload", choices=WORKLOAD_NAMES + ("synthetic",))
    stats_cmd.add_argument("-n", "--instructions", type=int,
                           default=DEFAULT_INSTRUCTIONS,
                           help=f"dynamic instructions "
                                f"(default {DEFAULT_INSTRUCTIONS})")
    stats_cmd.add_argument("--breakdown", action="store_true",
                           help="print per-cause cycle attribution")
    stats_cmd.add_argument("--json", default=None, metavar="PATH",
                           help="also write machine-readable metrics JSON")
    stats_cmd.set_defaults(func=_cmd_stats)

    trace_cmd = commands.add_parser(
        "trace", help="emit a structured pipeline event trace"
    )
    trace_cmd.add_argument("workload", choices=WORKLOAD_NAMES + ("synthetic",))
    trace_cmd.add_argument("--machine", choices=sorted(MACHINES),
                           default="baseline")
    trace_cmd.add_argument("-n", "--instructions", type=int, default=5_000)
    trace_cmd.add_argument("--out", default="trace.json",
                           help="output path (default trace.json)")
    trace_cmd.add_argument("--format", choices=("chrome", "metrics", "timeline"),
                           default="chrome",
                           help="chrome trace_event JSON (default), metrics "
                                "JSON, or a text timeline")
    trace_cmd.add_argument("--capacity", type=int, default=None,
                           help="tracer ring-buffer capacity "
                                "(default 1M events)")
    trace_cmd.add_argument("--count", type=int, default=48,
                           help="instructions to render (timeline format)")
    trace_cmd.set_defaults(func=_cmd_trace)

    experiment = commands.add_parser("experiment", help="regenerate a figure")
    experiment.add_argument("which", choices=("fig13", "fig15", "fig17", "speedup"))
    experiment.add_argument("-n", "--instructions", type=int, default=15_000)
    experiment.set_defaults(func=_cmd_experiment)

    campaign = commands.add_parser(
        "campaign",
        help="run a figure grid on the parallel campaign engine",
    )
    campaign.add_argument("which", choices=("fig13", "fig15", "fig17"))
    campaign.add_argument("--workloads", choices=("paper", "zoo", "all"),
                          default="paper",
                          help="workload set to sweep: the paper suite "
                               "(default), the synthetic zoo_* scenarios, "
                               "or every registered workload")
    campaign.add_argument("-n", "--instructions", type=int,
                          default=DEFAULT_INSTRUCTIONS,
                          help=f"dynamic instructions per cell "
                               f"(default {DEFAULT_INSTRUCTIONS})")
    campaign.add_argument("-j", "--jobs", type=int, default=1,
                          help="worker processes (default 1 = serial)")
    campaign.add_argument("--cache-dir", default=".repro-cache",
                          help="result cache directory "
                               "(default .repro-cache)")
    campaign.add_argument("--no-cache", action="store_true",
                          help="simulate every cell, read/write no cache")
    campaign.add_argument("--timeout", type=float, default=None,
                          help="per-cell seconds before retry "
                               "(default: no timeout)")
    campaign.add_argument("--retries", type=int, default=1,
                          help="resubmissions per failed/timed-out cell "
                               "before serial fallback (default 1)")
    campaign.add_argument("--out", default=None, metavar="PATH",
                          help="also write the result JSON (results_io)")
    campaign.add_argument("--metrics", default=None, metavar="PATH",
                          help="also write campaign profile JSON")
    campaign.add_argument("-v", "--verbose", action="store_true",
                          help="per-cell progress on stderr")
    campaign.add_argument("--progress", action="store_true",
                          help="live telemetry line on stderr (cells, "
                               "hit rate, inst/s, ETA)")
    campaign.set_defaults(func=_cmd_campaign)

    timeline = commands.add_parser("timeline", help="render a pipeline timeline")
    timeline.add_argument("machine", choices=sorted(MACHINES))
    timeline.add_argument("workload", choices=WORKLOAD_NAMES)
    timeline.add_argument("-n", "--instructions", type=int, default=2_000)
    timeline.add_argument("--start", type=int, default=0,
                          help="first dynamic instruction to show")
    timeline.add_argument("--count", type=int, default=24)
    timeline.set_defaults(func=_cmd_timeline)

    frontier = commands.add_parser(
        "frontier", help="the complexity-effectiveness frontier"
    )
    frontier.add_argument("-n", "--instructions", type=int, default=8_000)
    frontier.add_argument("--tech", choices=("0.8", "0.35", "0.18", "all"),
                          default="0.18",
                          help="technology node(s) to clock the sweep at "
                               "(default 0.18)")
    frontier.add_argument("-j", "--jobs", type=int, default=1,
                          help="worker processes (default 1 = serial)")
    frontier.add_argument("--cache-dir", default=".repro-cache",
                          help="result cache directory "
                               "(default .repro-cache)")
    frontier.add_argument("--no-cache", action="store_true",
                          help="simulate every cell, read/write no cache")
    frontier.add_argument("--metrics", default=None, metavar="PATH",
                          help="also write campaign profile JSON")
    frontier.add_argument("--progress", action="store_true",
                          help="live telemetry line on stderr")
    frontier.set_defaults(func=_cmd_frontier)

    serve = commands.add_parser(
        "serve", help="serve the design space over HTTP (asyncio)"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8787,
                       help="bind port (default 8787)")
    serve.add_argument("--cache-dir", default=".repro-cache",
                       help="campaign result cache backing the hot path "
                            "(default .repro-cache)")
    serve.add_argument("-j", "--jobs", type=int, default=1,
                       help="simulation worker processes (default 1)")
    serve.add_argument("--warm", default=None,
                       choices=("fig13", "fig15", "fig17", "registry"),
                       help="pre-warm the cache with a figure grid or the "
                            "full machine registry before binding")
    serve.add_argument("-n", "--instructions", type=int,
                       default=DEFAULT_INSTRUCTIONS,
                       help=f"default per-cell instruction budget "
                            f"(default {DEFAULT_INSTRUCTIONS})")
    serve.add_argument("--queue-depth", type=int, default=8,
                       help="max concurrently in-flight simulations before "
                            "misses are shed with 503 (default 8)")
    serve.add_argument("--timeout", type=float, default=120.0,
                       help="per-request seconds before an uncached cell "
                            "answers 504 (default 120)")
    serve.add_argument("--progress", action="store_true",
                       help="live telemetry line on stderr while warming")
    serve.set_defaults(func=_cmd_serve)

    asm = commands.add_parser("asm", help="assemble and run a program")
    asm.add_argument("file")
    asm.add_argument("-n", "--instructions", type=int, default=100_000)
    asm.add_argument("--listing", action="store_true", help="print disassembly")
    asm.add_argument("--simulate", choices=sorted(MACHINES), default=None,
                     help="also run the trace through a machine")
    asm.set_defaults(func=_cmd_asm)

    fuzz = commands.add_parser(
        "fuzz",
        help="differential fuzzing: emulator vs oracle, "
             "fast vs reference vs compiled",
    )
    fuzz.add_argument("--cases", type=int, default=200,
                      help="fuzz cases to run (default 200)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="campaign seed (default 0)")
    fuzz.add_argument("-j", "--jobs", type=int, default=1,
                      help="worker processes (default 1 = serial)")
    fuzz.add_argument("--time-budget", type=float, default=None,
                      help="wall-clock cap in seconds; remaining cases "
                           "are skipped (default: none)")
    fuzz.add_argument("--first-case", type=int, default=0,
                      help="first case id (shifts the sampled range)")
    fuzz.add_argument("--case-seed", type=int, default=None,
                      help="replay exactly one case by its derived seed "
                           "(what a reproducer header records)")
    fuzz.add_argument("--fifo-only", action="store_true",
                      help="sample only FIFO-steered machine shapes")
    fuzz.add_argument("--repro-dir", default=None,
                      help="directory for minimized reproducers (default "
                           "tests/repros; a temp dir under --selftest)")
    fuzz.add_argument("--no-minimize", action="store_true",
                      help="report failures without shrinking them")
    fuzz.add_argument("--metrics", default=None, metavar="PATH",
                      help="also write the FuzzProfile JSON")
    fuzz.add_argument("--selftest", action="store_true",
                      help="plant a steering bug, a port-arbiter bug, and "
                           "a compiler constant-folding bug and assert the "
                           "fuzzer detects and minimizes all three")
    fuzz.add_argument("-v", "--verbose", action="store_true",
                      help="per-case progress on stderr")
    fuzz.add_argument("--progress", action="store_true",
                      help="live telemetry line on stderr")
    fuzz.set_defaults(func=_cmd_fuzz)

    ledger_cmd = commands.add_parser(
        "ledger", help="inspect the append-only run ledger"
    )
    ledger_cmd.add_argument("--ledger-dir", default=None, metavar="DIR",
                            help="ledger directory (default "
                                 "$REPRO_LEDGER_DIR or .repro/ledger)")
    ledger_sub = ledger_cmd.add_subparsers(dest="action", required=True)
    ledger_list = ledger_sub.add_parser("list", help="newest entries")
    ledger_list.add_argument("--kind", default=None,
                             help="filter by run kind (simulate, campaign, "
                                  "frontier, fuzz)")
    ledger_list.add_argument("--limit", type=int, default=20,
                             help="newest entries to show (default 20)")
    ledger_show = ledger_sub.add_parser("show", help="one entry as JSON")
    ledger_show.add_argument("run_id", help="run id (or unique prefix)")
    ledger_diff = ledger_sub.add_parser("diff", help="compare two entries")
    ledger_diff.add_argument("run_id", help="older run id (or prefix)")
    ledger_diff.add_argument("other", help="newer run id (or prefix)")
    ledger_gc = ledger_sub.add_parser("gc", help="compact old entries")
    ledger_gc.add_argument("--keep", type=int, default=100,
                           help="newest entries to keep (default 100)")
    ledger_cmd.set_defaults(func=_cmd_ledger)

    bench = commands.add_parser(
        "bench",
        help="perf-regression gate: measurements vs committed floors "
             "and the ledger trailing window",
    )
    bench.add_argument("--check", action="store_true",
                       help="exit nonzero when any regression is found")
    bench.add_argument("--threshold", type=float, default=None,
                       help="max tolerated relative drop vs the trailing "
                            "mean, in (0, 1] (default 0.5)")
    bench.add_argument("--window", type=int, default=None,
                       help="trailing ledger entries per kind (default 5)")
    bench.add_argument("--bench-dir", default=".", metavar="DIR",
                       help="directory holding BENCH_*.json (default .)")
    bench.add_argument("--ledger-dir", default=None, metavar="DIR",
                       help="ledger directory (default $REPRO_LEDGER_DIR "
                            "or .repro/ledger)")
    bench.set_defaults(func=_cmd_bench)

    compile_cmd = commands.add_parser(
        "compile", help="compile and run a Mini program"
    )
    compile_cmd.add_argument("file")
    compile_cmd.add_argument("-n", "--instructions", type=int, default=300_000)
    compile_cmd.add_argument("--listing", action="store_true",
                             help="print generated assembly")
    compile_cmd.add_argument("--simulate", choices=sorted(MACHINES), default=None)
    compile_cmd.set_defaults(func=_cmd_compile)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
