"""Section 5.5: clock-adjusted speedup of the dependence-based machine.

Paper: the dependence-based clusters need only 4-way/32-entry window
logic, so from Table 2 the clock can be 724/578 ~ 1.25x faster at
0.18 um; combined with the Figure 15 IPC results this gives overall
speedups of 10-22%, mean 16%.
"""

import pytest

from repro.core.speedup import clock_adjusted_speedup
from repro.delay.summary import clock_ratio_dependence_based, max_clock_improvement_4way
from repro.technology import TECH_018, TECHNOLOGIES

DEP = "2-cluster dependence-based"
WIN = "window-based 8-way"


def test_sec55_clock_adjusted_speedup(benchmark, paper_report, fig15_result):
    summary = benchmark(
        clock_adjusted_speedup, fig15_result, DEP, WIN, TECH_018
    )
    lines = [summary.format_table(), ""]
    lines.append(f"paper: clock ratio 724/578 = {724 / 578:.3f}, "
                 "speedups 10-22%, mean 16%")
    lines.append(f"Section 5.3 bound: rename-limited 4-way clock improvement "
                 f"= {100 * max_clock_improvement_4way(TECH_018):.1f}% (paper: 39%)")
    paper_report("Section 5.5: clock-adjusted speedup", "\n".join(lines))

    assert summary.clock_ratio == pytest.approx(724.0 / 578.0, rel=0.01)
    # Our IPC gap is a little larger than the paper's, so the band is
    # wider, but the conclusion must hold: the dependence-based
    # machine wins once clock speed is taken into account.
    assert summary.mean > 1.02
    assert summary.min > 0.95


def test_sec55_clock_ratio_across_technologies(benchmark, paper_report):
    ratios = benchmark(
        lambda: {t.name: clock_ratio_dependence_based(t) for t in TECHNOLOGIES}
    )
    body = "\n".join(f"  {name:8s} f_dep/f_win = {ratio:.3f}"
                     for name, ratio in ratios.items())
    paper_report("Clock ratio by technology", body)
    assert all(ratio > 1.0 for ratio in ratios.values())
    assert ratios["0.18um"] == pytest.approx(1.25, abs=0.02)
