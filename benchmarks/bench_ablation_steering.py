"""Ablation: why does random steering lose -- blindness or imbalance?

Random steering (Figure 17's baseline) is both dependence-blind and
(statistically) load balanced.  Two extra policies separate the
factors: modulo steering is blind but perfectly balanced; least-loaded
steering is blind and actively balancing.  If they perform like
random steering while dispatch-driven dependence steering does not,
the paper's conclusion -- "it is essential for the steering logic to
consider dependences" -- is confirmed at the mechanism level.
"""

from conftest import bench_instructions

from repro.core.experiments import run_machines
from repro.core.machines import (
    baseline_8way,
    clustered_least_loaded_8way,
    clustered_modulo_8way,
    clustered_random_8way,
    clustered_windows_8way,
)

WORKLOADS = ("compress", "gcc", "m88ksim", "vortex")
IDEAL = "ideal"


def run_suite():
    configs = {
        IDEAL: baseline_8way(),
        "dispatch (dependence-aware)": clustered_windows_8way(),
        "random (blind)": clustered_random_8way(),
        "modulo (blind, balanced)": clustered_modulo_8way(),
        "least-loaded (blind, balancing)": clustered_least_loaded_8way(),
    }
    return run_machines(
        configs,
        workloads=WORKLOADS,
        max_instructions=bench_instructions(),
        name="ablation-steering",
    )


def format_report(result):
    lines = [result.format_table(), "", "mean relative IPC and bypass traffic:"]
    for machine in result.machine_names:
        if machine == IDEAL:
            continue
        mean = result.mean_relative_ipc(machine, IDEAL)
        traffic = sum(result.bypass_frequency(machine).values()) / len(WORKLOADS)
        lines.append(f"  {machine:34s} {mean:.3f}  ({100 * traffic:.1f}% x-bypass)")
    return "\n".join(lines)


def test_ablation_steering_blindness(benchmark, paper_report):
    result = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    paper_report("Ablation: dependence-blind steering variants",
                 format_report(result))
    means = {
        machine: result.mean_relative_ipc(machine, IDEAL)
        for machine in result.machine_names
        if machine != IDEAL
    }
    aware = means.pop("dispatch (dependence-aware)")
    # Every blind policy loses badly; dependence awareness recovers
    # most of the gap regardless of load balance.
    for machine, mean in means.items():
        assert mean < aware - 0.05, machine
        traffic = sum(result.bypass_frequency(machine).values()) / len(WORKLOADS)
        assert traffic > 0.30, machine
