"""Differential fuzzer throughput.

Not a paper figure -- this times the *reproduction's* verification
machinery (`repro.verify`): serial and parallel fuzz campaigns, and
the program-generation + oracle stack on its own.  The numbers keep
the CI fuzz-smoke budget honest: a 200-case run must fit comfortably
inside its wall-clock cap.
"""

import random

import pytest

from repro.isa.assembler import assemble
from repro.isa.emulator import Emulator
from repro.verify.fuzzer import run_fuzz
from repro.verify.generator import generate_source
from repro.verify.oracle import compare_architectural
from repro.verify.sampler import sample_program

CASES = 60


def test_fuzz_serial(benchmark, tmp_path, paper_report):
    report = benchmark.pedantic(
        lambda: run_fuzz(cases=CASES, seed=0, jobs=1, repro_dir=tmp_path),
        rounds=1, iterations=1,
    )
    assert report.ok
    profile = report.profile
    paper_report(
        "Differential fuzzer: serial campaign",
        f"{profile.cases} cases, {profile.cases_per_second:.1f} cases/s, "
        f"{len(profile.shape_counts)} machine shapes",
    )


def test_fuzz_parallel(benchmark, tmp_path):
    report = benchmark.pedantic(
        lambda: run_fuzz(cases=CASES, seed=0, jobs=2, repro_dir=tmp_path),
        rounds=1, iterations=1,
    )
    assert report.ok
    assert report.profile.jobs == 2


@pytest.mark.benchmark(group="fuzz-oracle")
def test_generate_and_oracle_check(benchmark):
    """Program generation + emulation + shadow-oracle comparison only
    (no timing simulation): the fixed per-case overhead."""

    def one_case():
        config = sample_program(random.Random(42))
        program = assemble(generate_source(config))
        emulator = Emulator(program)
        trace = emulator.run(2_000)
        return compare_architectural(emulator, trace, 2_000)

    failures = benchmark(one_case)
    assert failures == []
