"""Supporting structures the paper discusses but defers to cited work.

* Register file (Farkas et al. [6]; Section 5.4): per-cluster copies
  have fewer read ports, so they are faster -- the clustered design's
  third advantage.
* CAM-scheme rename (Section 4.1.1): comparable to the RAM scheme in
  the studied design space, but less scalable.
* Cache access time (Wada [18], Wilton & Jouppi [21]; Section 2.1):
  grows with size and associativity, but can be pipelined -- unlike
  window logic and bypasses.
"""

from repro.delay import (
    CacheAccessDelayModel,
    CamRenameDelayModel,
    RegisterFileDelayModel,
    RenameDelayModel,
)
from repro.technology import TECH_018
from repro.uarch.config import CacheConfig


def sweep():
    regfile = RegisterFileDelayModel(TECH_018)
    cam = CamRenameDelayModel(TECH_018)
    ram = RenameDelayModel(TECH_018)
    cache = CacheAccessDelayModel(TECH_018)
    return {
        "regfile": {
            "8-way shared (16r/8w)": regfile.machine_total(120, 8),
            "per-cluster copy (8r/8w)": regfile.clustered_total(120, 8, 2),
            "4-way (8r/4w)": regfile.machine_total(120, 4),
        },
        "rename": {
            (iw, regs): (ram.total(iw), cam.total(iw, regs))
            for iw, regs in ((2, 64), (4, 80), (8, 128), (8, 256))
        },
        "cache": {
            kb: cache.total(CacheConfig(size_bytes=kb * 1024))
            for kb in (8, 16, 32, 64, 128)
        },
    }


def format_report(data):
    lines = ["register file (120 regs, 64b, 0.18um):"]
    for label, delay in data["regfile"].items():
        lines.append(f"  {label:28s} {delay:8.1f} ps")
    lines.append("rename schemes (RAM vs CAM, 0.18um):")
    for (iw, regs), (ram, cam) in data["rename"].items():
        lines.append(
            f"  {iw}-way/{regs:3d} regs: RAM {ram:7.1f} ps, CAM {cam:7.1f} ps"
        )
    lines.append("cache access (2-way, 32B lines, 0.18um):")
    for kb, delay in data["cache"].items():
        lines.append(f"  {kb:4d} KB {delay:8.1f} ps")
    return "\n".join(lines)


def test_supporting_structures(benchmark, paper_report):
    data = benchmark(sweep)
    paper_report("Supporting structures (Sections 2.1, 4.1.1, 5.4)",
                 format_report(data))
    # Clustered register-file copies are faster (Section 5.4).
    assert (
        data["regfile"]["per-cluster copy (8r/8w)"]
        < data["regfile"]["8-way shared (16r/8w)"]
    )
    # CAM comparable at the 4-wide design point, less scalable beyond.
    ram4, cam4 = data["rename"][(4, 80)]
    assert abs(cam4 - ram4) / ram4 < 0.01
    ram8_big, cam8_big = data["rename"][(8, 256)]
    assert cam8_big > 1.5 * ram8_big
    # Cache delay grows with size.
    sizes = sorted(data["cache"])
    delays = [data["cache"][kb] for kb in sizes]
    assert delays == sorted(delays)
