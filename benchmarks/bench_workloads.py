"""Benchmark the workload layer: trace-generation throughput.

The workload registry fronts every simulation, so trace generation
must stay cheap relative to the timing simulation it feeds.  This
bench measures dynamic-instructions-per-second of trace *generation*
for one representative of each built-in kind -- an assembled paper
kernel (emulator-executed) and a ``zoo_*`` synthetic scenario
(generator-driven) -- plus the external-trace ingestion path
(JSONL export + strict validating reload).

The numbers fold into ``BENCH_workloads.json`` (repo root) next to
the checked-in ``min_gen_inst_per_s_floor``, which the ``repro bench
--check`` regression gate enforces against every measured generation
rate.
"""

import os
import time

from repro.workloads import get_workload

#: The checked-in workload-layer throughput record (repo root).
BENCH_WORKLOADS_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..",
    "BENCH_workloads.json"
)

#: Every measured generation path must produce at least this many
#: dynamic instructions per second.  Deliberately far below observed
#: rates (CI machines are slow and shared); the trailing-window gate
#: catches slow erosion.  Also checked in as
#: ``recorded.min_gen_inst_per_s_floor``.
MIN_GEN_RATE = 20_000.0

#: One representative per built-in kind.
KERNEL = "li"
ZOO = "zoo_br_coin"

#: Instructions per generation pass (uncached budgets each round).
LENGTH = 30_000


def _generation_rate(name: str, rounds: int = 5) -> float:
    """Fresh-trace generation rate (inst/s), bypassing the cache."""
    workload = get_workload(name)
    instructions = 0
    started = time.perf_counter()
    for round_index in range(rounds):
        # Distinct budgets defeat the (name, budget) trace cache.
        trace = workload._loader(LENGTH - round_index)
        instructions += len(trace)
    return instructions / (time.perf_counter() - started)


def _ingestion_rate(tmp_path, rounds: int = 5) -> float:
    """External-trace round-trip rate: JSONL export + strict reload."""
    from repro.workloads.trace_format import load_trace, save_trace

    trace = get_workload(KERNEL).trace(LENGTH)
    instructions = 0
    started = time.perf_counter()
    for round_index in range(rounds):
        path = save_trace(trace, tmp_path / f"bench-{round_index}.jsonl")
        instructions += len(load_trace(path))
    return instructions / (time.perf_counter() - started)


def _record_workloads(measured: dict) -> None:
    from repro.obs.ledger import record_bench

    record_bench(BENCH_WORKLOADS_PATH, "repro-workloads-bench", measured)


def test_workload_generation_throughput(benchmark, paper_report, tmp_path):
    """Measure generation + ingestion rates and enforce the floor."""

    def measure() -> dict:
        return {
            f"{KERNEL} (kernel)": round(_generation_rate(KERNEL), 1),
            f"{ZOO} (synthetic)": round(_generation_rate(ZOO), 1),
            "external round-trip": round(_ingestion_rate(tmp_path), 1),
        }

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    paper_report(
        "Workload-layer throughput (trace generation, inst/s)",
        "\n".join(f"  {label}: {rate:,.0f} inst/s"
                  for label, rate in sorted(measured.items())),
    )
    _record_workloads(measured)
    for label, rate in measured.items():
        assert rate >= MIN_GEN_RATE, (label, rate)
