"""Figure 17: clustered microarchitectures and steering policies.

Paper (top graph, IPC): random steering is consistently worst
(17-26% below ideal); execution-driven steering is nearly ideal (max
6% loss) but needs the complex central window; both dispatch-steered
organisations are competitive.

Paper (bottom graph): inter-cluster bypass frequency anti-correlates
with IPC, peaking around 35% for random steering on m88ksim.
"""

from conftest import bench_instructions

from repro.core.machines import clustered_random_8way
from repro.uarch.pipeline import simulate
from repro.workloads import get_trace

IDEAL = "1-cluster.1window"
RANDOM = "2-cluster.windows.random_steer"
EXEC = "2-cluster.1window.exec_steer"
FIFO = "2-cluster.FIFOs.dispatch_steer"
WINDOWS = "2-cluster.windows.dispatch_steer"


def format_report(result):
    lines = ["IPC:", result.format_table(), ""]
    lines.append("inter-cluster bypass frequency:")
    lines.append(result.format_table("bypass"))
    lines.append("")
    for machine in (FIFO, WINDOWS, EXEC, RANDOM):
        mean = result.mean_relative_ipc(machine, IDEAL)
        lines.append(f"  mean relative IPC {machine:34s} {mean:.3f}")
    return "\n".join(lines)


def test_fig17_steering_comparison(benchmark, paper_report, fig17_result):
    trace = get_trace("vortex", bench_instructions())
    benchmark.pedantic(
        simulate, args=(clustered_random_8way(), trace), rounds=1, iterations=1
    )

    paper_report("Figure 17: clustered microarchitectures", format_report(fig17_result))
    result = fig17_result
    means = {
        machine: result.mean_relative_ipc(machine, IDEAL)
        for machine in (FIFO, WINDOWS, EXEC, RANDOM)
    }
    # Random steering is the clear loser (paper: 17-26% degradation).
    assert min(means, key=means.get) == RANDOM
    assert means[RANDOM] < 0.88
    # Execution-driven steering is nearly ideal (paper: max 6% loss).
    assert means[EXEC] > 0.92
    # Dispatch-steered organisations are competitive.
    assert means[FIFO] > 0.82
    assert means[WINDOWS] > 0.82
    # Bottom graph: the machine with the most inter-cluster traffic
    # has the lowest IPC, and random traffic is high.
    traffic = {
        machine: sum(result.bypass_frequency(machine).values())
        for machine in means
    }
    assert max(traffic, key=traffic.get) == RANDOM
    assert max(result.bypass_frequency(RANDOM).values()) > 0.25
    assert all(v == 0 for v in result.bypass_frequency(IDEAL).values())
