"""Figure 8: selection delay versus window size.

Paper: delay grows logarithmically with window size (in steps of the
4-ary arbiter-tree depth); doubling the window from 16 to 32 (or 64
to 128) costs less than 100% because the root-cell delay is window
independent; all components scale well with feature size (pure
logic).
"""

from repro.delay.select import COMPONENTS, SelectionDelayModel
from repro.technology import TECHNOLOGIES

WINDOW_SIZES = (16, 32, 64, 128)


def sweep():
    return {
        tech.name: {
            window: SelectionDelayModel(tech).components(window)
            for window in WINDOW_SIZES
        }
        for tech in TECHNOLOGIES
    }


def format_report(table):
    headers = {"request_propagation": "request", "root": "root",
               "grant_propagation": "grant"}
    lines = [f"{'tech':8s}{'window':>8s}" +
             "".join(f"{headers[c]:>10s}" for c in COMPONENTS) + f"{'total':>9s}"]
    for tech, by_window in table.items():
        for window, parts in by_window.items():
            total = sum(parts.values())
            lines.append(
                f"{tech:8s}{window:8d}" +
                "".join(f"{parts[c]:10.1f}" for c in COMPONENTS) +
                f"{total:9.1f}"
            )
    return "\n".join(lines)


def test_fig8_selection_delay(benchmark, paper_report):
    table = benchmark(sweep)
    paper_report("Figure 8: selection delay vs window size (ps)",
                 format_report(table))
    for tech_name, by_window in table.items():
        totals = {w: sum(p.values()) for w, p in by_window.items()}
        # Monotone, with sub-2x steps on doubling.
        assert totals[16] <= totals[32] <= totals[64] <= totals[128]
        assert totals[32] < 2 * totals[16]
        assert totals[128] < 2 * totals[64]
        # Root delay is window independent.
        roots = {w: p["root"] for w, p in by_window.items()}
        assert len(set(roots.values())) == 1
    # Pure-logic structure: it shrinks substantially with feature size.
    assert sum(table["0.18um"][64].values()) < 0.3 * sum(table["0.8um"][64].values())
