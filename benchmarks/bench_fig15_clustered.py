"""Figure 15: IPC of the clustered dependence-based machine.

Paper: the 2x4-way clustered dependence-based machine (2-cycle
inter-cluster bypasses) stays near the single-window 8-way baseline;
the worst degradations are m88ksim (~12%) and compress (~9%), caused
by inter-cluster bypass latency.
"""

from conftest import bench_instructions

from repro.core.machines import clustered_dependence_8way
from repro.uarch.pipeline import simulate
from repro.workloads import get_trace

DEP = "2-cluster dependence-based"
WIN = "window-based 8-way"


def format_report(result):
    relative = result.relative_ipc(DEP, WIN)
    lines = [result.format_table(), ""]
    lines.append("relative IPC (clustered dependence-based / window-based):")
    lines.append("  " + "  ".join(f"{w}={v:.3f}" for w, v in relative.items()))
    mean = result.mean_relative_ipc(DEP, WIN)
    lines.append(f"  mean={mean:.3f}   (paper mean degradation: 6.3%)")
    return "\n".join(lines)


def test_fig15_clustered_ipc(benchmark, paper_report, fig15_result):
    trace = get_trace("m88ksim", bench_instructions())
    config = clustered_dependence_8way()
    benchmark.pedantic(simulate, args=(config, trace), rounds=1, iterations=1)

    paper_report("Figure 15: IPC, window-based vs 2x4-way dependence-based",
                 format_report(fig15_result))
    relative = fig15_result.relative_ipc(DEP, WIN)
    # Shape: close to the baseline, moderate worst case, never faster.
    assert min(relative.values()) > 0.75
    assert max(relative.values()) <= 1.02
    assert fig15_result.mean_relative_ipc(DEP, WIN) > 0.82
