"""Figure 10: wakeup and select form an atomic operation.

Paper: if wakeup+select is pipelined over multiple stages, dependent
instructions cannot execute in consecutive cycles (the add/sub bubble
of Figure 10) -- which is why window-logic delay bounds the clock
instead of being pipelined away.  This bench quantifies the IPC cost
of splitting the loop into 2 and 3 stages, overall and on a fully
serial chain where every cycle of bubble is exposed.
"""

from conftest import bench_instructions

from repro.core.machines import baseline_8way
from repro.isa import assemble, run_to_trace
from repro.uarch.pipeline import simulate
from repro.workloads import WORKLOAD_NAMES, get_trace

STAGES = (1, 2, 3)


def serial_chain_trace(length=400):
    body = "\n".join("addu r1, r1, r2" for _ in range(length))
    return run_to_trace(assemble(f"li r1, 0\nli r2, 1\n{body}\nhalt\n"))


def sweep():
    instructions = bench_instructions()
    suite = {}
    for stages in STAGES:
        config = baseline_8way(wakeup_select_stages=stages)
        ipcs = {
            w: simulate(config, get_trace(w, instructions)).ipc
            for w in WORKLOAD_NAMES
        }
        serial = simulate(config, serial_chain_trace()).ipc
        suite[stages] = (ipcs, serial)
    return suite


def format_report(suite):
    lines = [f"{'stages':>7s}" + "".join(f"{w:>10s}" for w in WORKLOAD_NAMES)
             + f"{'serial':>10s}"]
    for stages, (ipcs, serial) in suite.items():
        lines.append(
            f"{stages:7d}"
            + "".join(f"{ipcs[w]:10.3f}" for w in WORKLOAD_NAMES)
            + f"{serial:10.3f}"
        )
    base = suite[1][0]
    mean_loss = {
        stages: 1 - sum(ipcs[w] / base[w] for w in WORKLOAD_NAMES) / len(WORKLOAD_NAMES)
        for stages, (ipcs, _serial) in suite.items()
    }
    lines.append("")
    for stages in STAGES[1:]:
        lines.append(f"  {stages}-stage wakeup/select: mean IPC loss "
                     f"{100 * mean_loss[stages]:.1f}%")
    lines.append("  (paper: dependent instructions cannot issue "
                 "back-to-back, Figure 10)")
    return "\n".join(lines)


def test_fig10_wakeup_select_atomicity(benchmark, paper_report):
    suite = benchmark.pedantic(sweep, rounds=1, iterations=1)
    paper_report("Figure 10: cost of pipelining wakeup+select", format_report(suite))
    # A fully serial chain exposes the bubble exactly: IPC ~ 1/stages.
    for stages in STAGES:
        _ipcs, serial = suite[stages]
        assert abs(serial - 1.0 / stages) < 0.15
    # Real workloads lose IPC monotonically with deeper window logic.
    for workload in WORKLOAD_NAMES:
        series = [suite[s][0][workload] for s in STAGES]
        assert series[0] >= series[1] >= series[2]
