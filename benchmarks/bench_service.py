"""Load-test the design-space service: cold vs warm queries/sec.

The serving-tier claim is that the campaign cache turns design-space
queries into a hot path: the *first* request for a cell pays for a
simulation (cold), every later request is answered from cache on the
event loop (warm) at thousands of queries per second.

This bench measures both against a real listening server over real
sockets -- the same :mod:`repro.service.loadgen` client the CI smoke
burst uses -- and folds the numbers into ``BENCH_service.json``
(repo root) next to the checked-in ``min_warm_qps_floor``, which the
``repro bench --check`` regression gate enforces.

* **cold**: one request per uncached cell, sequentially, over a small
  machine subset (each one simulates on the worker pool);
* **warm**: a keep-alive burst of thousands of requests round-robined
  over the same cells, asserting **zero** additional simulations.
"""

import asyncio
import os
import time

from repro.service.app import DesignSpaceService
from repro.service.loadgen import get_json, run_burst

#: The checked-in service throughput record (repo root).
BENCH_SERVICE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_service.json"
)

#: A warm cache must serve at least this many queries per second --
#: the acceptance floor for "the simulator became the slow backing
#: store behind a hot path".  Also checked in as
#: ``recorded.min_warm_qps_floor`` for the regression gate.
MIN_WARM_QPS = 1000.0

#: Machines x workloads served during the bench (small on purpose:
#: the cold phase simulates each cell once).
MACHINES = ("baseline", "dependence")
WORKLOADS = ("compress", "gcc", "li")

#: Requests in the warm keep-alive burst.
WARM_REQUESTS = 4000


def _record_service(measured: dict) -> None:
    """Fold this run's measurements into ``BENCH_service.json`` via
    the single schema-stamped writer (preserves the recorded block)."""
    from repro.obs.ledger import record_bench

    record_bench(BENCH_SERVICE_PATH, "repro-service-bench", measured)


async def _measure(tmp_path) -> dict:
    # Imported lazily so the docs-sync suite can import this module
    # for its constants without the benchmarks/ conftest on sys.path.
    from conftest import bench_instructions

    budget = bench_instructions()
    service = DesignSpaceService(
        cache_dir=str(tmp_path / "cache"),
        jobs=2,
        instructions=budget,
        ledger_root=str(tmp_path / "ledger"),
    )
    paths = [
        f"/v1/cell?machine={machine}&workload={workload}&n={budget}"
        for machine in MACHINES
        for workload in WORKLOADS
    ]
    server = await service.start("127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    try:
        # Cold: every request is a miss that simulates its cell.
        started = time.perf_counter()
        for path in paths:
            status, payload = await get_json("127.0.0.1", port, path,
                                             timeout=600.0)
            assert status == 200, payload
            assert payload["source"] == "simulated"
        cold_seconds = time.perf_counter() - started
        simulations = service.registry.value("service_simulations_total")
        assert simulations == len(paths)

        # Warm: a keep-alive burst over the same cells, zero new work.
        result = await run_burst("127.0.0.1", port, paths,
                                 requests=WARM_REQUESTS, concurrency=8)
        assert result.all_ok, result.to_dict()
        assert service.registry.value(
            "service_simulations_total") == simulations
    finally:
        server.close()
        await server.wait_closed()
        service.close()
    cold_qps = len(paths) / cold_seconds
    return {
        "instructions_per_cell": budget,
        "cells": len(paths),
        "cold_seconds": round(cold_seconds, 3),
        "cold_qps": round(cold_qps, 2),
        "warm_requests": result.requests,
        "warm_seconds": round(result.seconds, 3),
        "warm_qps": round(result.qps, 2),
        "warm_speedup": round(result.qps / cold_qps, 1),
    }


def test_service_cold_vs_warm_throughput(benchmark, paper_report, tmp_path):
    """Serve cold misses, then prove the warm hot path over sockets."""
    measured = benchmark.pedantic(
        lambda: asyncio.run(_measure(tmp_path)), rounds=1, iterations=1
    )
    paper_report(
        "Design-space service throughput (HTTP over the campaign cache)",
        f"  cold: {measured['cells']} cells simulated in "
        f"{measured['cold_seconds']}s ({measured['cold_qps']} qps)\n"
        f"  warm: {measured['warm_requests']} requests in "
        f"{measured['warm_seconds']}s ({measured['warm_qps']} qps, "
        f"{measured['warm_speedup']}x cold)",
    )
    _record_service(measured)
    assert measured["warm_qps"] >= MIN_WARM_QPS
    assert measured["warm_qps"] > measured["cold_qps"]
