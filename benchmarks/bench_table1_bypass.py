"""Table 1: bypass wire lengths and delays for 4-way and 8-way.

Paper: 4-way -> 20500 lambda, 184.9 ps; 8-way -> 49000 lambda,
1056.4 ps; identical across technologies because wire delay is
constant under the scaling model.
"""

import pytest

from repro.delay.bypass import BypassDelayModel
from repro.delay.calibration import TABLE1
from repro.technology import TECH_018, TECHNOLOGIES


def sweep():
    model = BypassDelayModel(TECH_018)
    return {
        width: (model.wire_length_lambda(width), model.total(width))
        for width in sorted(TABLE1)
    }


def format_report(rows):
    lines = [f"{'width':>6s}{'paper len':>11s}{'len':>9s}"
             f"{'paper ps':>10s}{'ps':>9s}"]
    for width, (length, delay) in rows.items():
        paper_length, paper_delay = TABLE1[width]
        lines.append(
            f"{width:6d}{paper_length:11.0f}{length:9.0f}"
            f"{paper_delay:10.1f}{delay:9.1f}"
        )
    return "\n".join(lines)


def test_table1_bypass(benchmark, paper_report):
    rows = benchmark(sweep)
    paper_report("Table 1: bypass wire length (lambda) and delay (ps)",
                 format_report(rows))
    for width, (length, delay) in rows.items():
        paper_length, paper_delay = TABLE1[width]
        assert length == pytest.approx(paper_length)
        assert delay == pytest.approx(paper_delay, abs=0.1)
    # Technology invariance.
    for tech in TECHNOLOGIES:
        assert BypassDelayModel(tech).total(8) == pytest.approx(
            rows[8][1]
        )
