"""Ablations over the dependence-based design's free parameters.

These are the design choices DESIGN.md calls out: the FIFO geometry
(count x depth) of the dependence-based machine, and the inter-cluster
bypass latency of the clustered machine.  Neither is swept in the
paper; the ablations bound how sensitive its conclusions are to them.
"""

from conftest import bench_instructions

from repro.core.machines import clustered_dependence_8way, dependence_based_8way
from repro.uarch.pipeline import simulate
from repro.workloads import get_trace

ABLATION_WORKLOADS = ("compress", "li", "m88ksim")


def geometric_mean(values):
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def fifo_geometry_sweep():
    """Mean IPC across representative workloads per FIFO geometry."""
    results = {}
    instructions = bench_instructions()
    for count, depth in ((4, 8), (8, 4), (8, 8), (8, 16), (16, 8)):
        config = dependence_based_8way(fifo_count=count, fifo_depth=depth)
        ipcs = [
            simulate(config, get_trace(w, instructions)).ipc
            for w in ABLATION_WORKLOADS
        ]
        results[(count, depth)] = geometric_mean(ipcs)
    return results


def bypass_latency_sweep():
    """Mean IPC of the clustered machine per inter-cluster latency."""
    results = {}
    instructions = bench_instructions()
    for cycles in (1, 2, 3, 4):
        config = clustered_dependence_8way(inter_cluster_bypass_cycles=cycles)
        ipcs = [
            simulate(config, get_trace(w, instructions)).ipc
            for w in ABLATION_WORKLOADS
        ]
        results[cycles] = geometric_mean(ipcs)
    return results


def test_ablation_fifo_geometry(benchmark, paper_report):
    results = benchmark.pedantic(fifo_geometry_sweep, rounds=1, iterations=1)
    body = "\n".join(
        f"  {count:2d} FIFOs x {depth:2d} deep : mean IPC {ipc:.3f}"
        for (count, depth), ipc in sorted(results.items())
    )
    paper_report("Ablation: dependence-based FIFO geometry", body)
    # The paper's 8x8 choice should be at (or near) the knee: more
    # capacity than 8x4 helps little, less (4x8) hurts.
    assert results[(8, 8)] >= results[(4, 8)] - 0.02
    assert results[(16, 8)] <= results[(8, 8)] * 1.10


def test_ablation_intercluster_latency(benchmark, paper_report):
    results = benchmark.pedantic(bypass_latency_sweep, rounds=1, iterations=1)
    body = "\n".join(
        f"  {cycles} cycle(s): mean IPC {ipc:.3f}"
        for cycles, ipc in sorted(results.items())
    )
    paper_report("Ablation: inter-cluster bypass latency", body)
    ordered = [results[c] for c in sorted(results)]
    # IPC must degrade monotonically as inter-cluster bypasses slow.
    for faster, slower in zip(ordered, ordered[1:]):
        assert slower <= faster + 1e-9
