"""The complexity-effectiveness frontier (the paper's thesis, on one
axis pair).

Growing a conventional issue window raises IPC but slows the clock
(wakeup+select delay), so instructions-per-second peaks at a moderate
window.  The dependence-based machine breaks the trade-off: near-big-
window IPC at small-window clock, so it sits above the conventional
curve -- which is what "complexity-effective" means.
"""

from conftest import bench_instructions

from repro.core.frontier import (
    conventional_frontier,
    dependence_based_point,
    format_frontier,
    issue_width_frontier,
)
from repro.technology import TECH_018

WORKLOADS = ("compress", "gcc", "li", "m88ksim", "vortex")


def build_frontier():
    instructions = bench_instructions()
    points = conventional_frontier(
        tech=TECH_018, workloads=WORKLOADS, max_instructions=instructions
    )
    points.append(
        dependence_based_point(
            tech=TECH_018, workloads=WORKLOADS, max_instructions=instructions
        )
    )
    return points


def test_complexity_effectiveness_frontier(benchmark, paper_report):
    points = benchmark.pedantic(build_frontier, rounds=1, iterations=1)
    paper_report(
        "Complexity-effectiveness frontier (IPC x clock, 0.18um)",
        format_frontier(points),
    )
    conventional = points[:-1]
    dependence = points[-1]
    # IPC grows monotonically with window size...
    ipcs = [p.mean_ipc for p in conventional]
    assert all(b >= a - 0.02 for a, b in zip(ipcs, ipcs[1:]))
    # ...but clock slows, so BIPS peaks strictly inside the sweep.
    bips = [p.bips for p in conventional]
    assert max(bips) not in (bips[0], bips[-1])
    # The dependence-based machine is complexity-effective: it beats
    # every conventional window at instructions per second.
    assert dependence.bips > max(bips)


def test_issue_width_frontier(benchmark, paper_report):
    points = benchmark.pedantic(
        issue_width_frontier,
        kwargs={
            "tech": TECH_018,
            "workloads": WORKLOADS,
            "max_instructions": bench_instructions(),
        },
        rounds=1,
        iterations=1,
    )
    paper_report(
        "Issue-width frontier (windows scaled 8 entries/slot, 0.18um)",
        format_frontier(points),
    )
    # IPC grows with width but sub-linearly (diminishing parallelism)...
    ipcs = [p.mean_ipc for p in points]
    assert ipcs == sorted(ipcs)
    assert ipcs[-1] < 2.5 * ipcs[0]
    # ...while the window-logic clock keeps slowing.
    clocks = [p.clock_ps for p in points]
    assert clocks == sorted(clocks)
