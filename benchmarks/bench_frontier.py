"""The complexity-effectiveness frontier (the paper's thesis, on one
axis pair).

Growing a conventional issue window raises IPC but slows the clock
(wakeup+select delay), so instructions-per-second peaks at a moderate
window.  The dependence-based machine breaks the trade-off: near-big-
window IPC at small-window clock, so it sits above the conventional
curve -- which is what "complexity-effective" means.

The design-space sweep benchmark additionally times the full
shapes x technologies frontier (``design_space_frontier``) cold and
warm, asserts the warm pass performs zero simulations, and folds both
wall times into ``BENCH_frontier.json`` (repo root) next to the
checked-in ``recorded`` numbers -- the ``BENCH_simulator.json``
pattern applied to the campaign cache.
"""

import os
import time

from conftest import bench_instructions

from repro.core.campaign import ResultCache
from repro.core.frontier import (
    conventional_frontier,
    dependence_based_point,
    design_space_frontier,
    format_frontier,
    issue_width_frontier,
)
from repro.technology import TECH_018

WORKLOADS = ("compress", "gcc", "li", "m88ksim", "vortex")

#: The checked-in frontier sweep record (repo root).
BENCH_FRONTIER_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_frontier.json"
)

#: A warm (all-cache) sweep must beat the cold sweep by at least this
#: factor; cache reads are orders of magnitude cheaper than simulating,
#: so 2x catches a broken cache path without inviting CI flakiness.
MIN_WARM_SPEEDUP = 2.0


def _record_sweep(measured: dict) -> None:
    """Fold this run's measurements into ``BENCH_frontier.json``.

    Delegated to :func:`repro.obs.ledger.record_bench` -- the single,
    schema-stamped, atomic path every BENCH_*.json write goes through.
    """
    from repro.obs.ledger import record_bench

    record_bench(BENCH_FRONTIER_PATH, "repro-frontier-bench", measured)


def build_frontier():
    instructions = bench_instructions()
    points = conventional_frontier(
        tech=TECH_018, workloads=WORKLOADS, max_instructions=instructions
    )
    points.append(
        dependence_based_point(
            tech=TECH_018, workloads=WORKLOADS, max_instructions=instructions
        )
    )
    return points


def test_complexity_effectiveness_frontier(benchmark, paper_report):
    points = benchmark.pedantic(build_frontier, rounds=1, iterations=1)
    paper_report(
        "Complexity-effectiveness frontier (IPC x clock, 0.18um)",
        format_frontier(points),
    )
    conventional = points[:-1]
    dependence = points[-1]
    # IPC grows monotonically with window size...
    ipcs = [p.mean_ipc for p in conventional]
    assert all(b >= a - 0.02 for a, b in zip(ipcs, ipcs[1:]))
    # ...but clock slows, so BIPS peaks strictly inside the sweep.
    bips = [p.bips for p in conventional]
    assert max(bips) not in (bips[0], bips[-1])
    # The dependence-based machine is complexity-effective: it beats
    # every conventional window at instructions per second.
    assert dependence.bips > max(bips)


def test_issue_width_frontier(benchmark, paper_report):
    points = benchmark.pedantic(
        issue_width_frontier,
        kwargs={
            "tech": TECH_018,
            "workloads": WORKLOADS,
            "max_instructions": bench_instructions(),
        },
        rounds=1,
        iterations=1,
    )
    paper_report(
        "Issue-width frontier (windows scaled 8 entries/slot, 0.18um)",
        format_frontier(points),
    )
    # IPC grows with width but sub-linearly (diminishing parallelism)...
    ipcs = [p.mean_ipc for p in points]
    assert ipcs == sorted(ipcs)
    assert ipcs[-1] < 2.5 * ipcs[0]
    # ...while the window-logic clock keeps slowing.
    clocks = [p.clock_ps for p in points]
    assert clocks == sorted(clocks)


def test_design_space_sweep_cold_vs_warm(benchmark, paper_report, tmp_path):
    """Time the shapes x technologies sweep cold, then re-run it warm."""
    cache = ResultCache(tmp_path / "cache")
    budget = bench_instructions()

    def cold_sweep():
        return design_space_frontier(
            workloads=WORKLOADS, max_instructions=budget, cache=cache
        )

    points, cold_profile = benchmark.pedantic(
        cold_sweep, rounds=1, iterations=1
    )
    cold_seconds = benchmark.stats.stats.mean
    assert cold_profile.simulated_cells == cold_profile.cell_count

    started = time.perf_counter()
    warm_points, warm_profile = design_space_frontier(
        workloads=WORKLOADS, max_instructions=budget, cache=cache
    )
    warm_seconds = time.perf_counter() - started

    # The warm sweep is served entirely from the campaign cache and
    # must reproduce the cold run's points exactly.
    assert warm_profile.simulated_cells == 0
    assert warm_profile.cache_hits == cold_profile.cell_count
    assert warm_points == points

    paper_report(
        "Design-space frontier sweep (shapes x technologies)",
        format_frontier(points)
        + f"\n  cold: {cold_seconds:.2f}s "
        f"({cold_profile.cell_count} cells simulated); "
        f"warm: {warm_seconds:.2f}s (all cache, "
        f"{cold_seconds / warm_seconds:.0f}x)",
    )
    _record_sweep(
        {
            "instructions_per_cell": budget,
            "cells": cold_profile.cell_count,
            "frontier_points": len(points),
            "cold_seconds": round(cold_seconds, 3),
            "warm_seconds": round(warm_seconds, 3),
            "warm_speedup": round(cold_seconds / warm_seconds, 1),
        }
    )
    assert warm_seconds * MIN_WARM_SPEEDUP < cold_seconds
