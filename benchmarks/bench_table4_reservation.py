"""Table 4: reservation-table delay (0.18 um).

Paper: a 4-way machine with 80 physical registers needs a 10x8
reservation table with 192.1 ps access; 8-way/128 needs 16x8 at
251.7 ps -- far below the corresponding issue-window wakeup+select
delays, which is the dependence-based design's clock advantage.
"""

import pytest

from repro.delay.calibration import TABLE4_018
from repro.delay.reservation import ReservationTableDelayModel
from repro.delay.summary import window_logic_delay
from repro.technology import TECH_018


def sweep():
    model = ReservationTableDelayModel(TECH_018)
    return {
        width: (
            model.entries(spec["physical_registers"]),
            model.total(width, spec["physical_registers"]),
        )
        for width, spec in TABLE4_018.items()
    }


def format_report(rows):
    lines = [f"{'width':>6s}{'regs':>6s}{'entries':>9s}"
             f"{'paper ps':>10s}{'ours ps':>9s}"]
    for width, (entries, delay) in rows.items():
        spec = TABLE4_018[width]
        lines.append(
            f"{width:6d}{spec['physical_registers']:6d}{entries:9d}"
            f"{spec['delay_ps']:10.1f}{delay:9.1f}"
        )
    return "\n".join(lines)


def test_table4_reservation_table(benchmark, paper_report):
    rows = benchmark(sweep)
    paper_report("Table 4: reservation-table delay, 0.18um", format_report(rows))
    for width, (entries, delay) in rows.items():
        spec = TABLE4_018[width]
        assert entries == spec["entries"]
        assert delay == pytest.approx(spec["delay_ps"], abs=0.05)
    # Far below the window logic it replaces (Section 5.3).
    assert rows[8][1] < 0.5 * window_logic_delay(TECH_018, 4, 32)
