"""Ablation: selection policy (oldest-first vs positional).

Section 4.3 assumes a static, position-based selection policy (as in
the HP PA-8000) and cites Butler & Patt [5] that overall performance
is largely independent of the policy -- that is what lets the paper
skip analysing window compaction.  This ablation checks the claim: a
non-compacting window whose freed slots are re-used (so selection
priority is *not* age order) should perform almost identically to
true oldest-first selection.
"""

from conftest import bench_instructions

from repro.core.machines import baseline_8way
from repro.uarch.config import SelectionPolicy
from repro.uarch.pipeline import simulate
from repro.workloads import WORKLOAD_NAMES, get_trace


def sweep():
    instructions = bench_instructions()
    results = {}
    for policy in (SelectionPolicy.OLDEST_FIRST, SelectionPolicy.POSITION):
        config = baseline_8way(selection=policy)
        results[policy.value] = {
            w: simulate(config, get_trace(w, instructions)).ipc
            for w in WORKLOAD_NAMES
        }
    return results


def format_report(results):
    lines = [f"{'policy':>10s}" + "".join(f"{w:>10s}" for w in WORKLOAD_NAMES)]
    for policy, ipcs in results.items():
        lines.append(
            f"{policy:>10s}" + "".join(f"{ipcs[w]:10.3f}" for w in WORKLOAD_NAMES)
        )
    worst = max(
        abs(1 - results["position"][w] / results["oldest"][w])
        for w in WORKLOAD_NAMES
    )
    lines.append(f"\n  worst-case policy effect: {100 * worst:.1f}% "
                 "(Butler & Patt: largely independent)")
    return "\n".join(lines)


def test_ablation_selection_policy(benchmark, paper_report):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    paper_report("Ablation: selection policy (Butler & Patt claim)",
                 format_report(results))
    for workload in WORKLOAD_NAMES:
        oldest = results["oldest"][workload]
        position = results["position"][workload]
        # Largely independent: within a few percent on every benchmark.
        assert abs(position - oldest) / oldest < 0.06, workload
