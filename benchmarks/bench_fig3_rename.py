"""Figure 3: rename delay versus issue width.

Paper: total rename delay rises (effectively linearly) with issue
width for all three technologies; the bitline component grows fastest
because bitlines are longer than wordlines; wire-dominated components
worsen relative to logic as the feature size shrinks.
"""

from repro.delay.rename import COMPONENTS, RenameDelayModel
from repro.technology import TECHNOLOGIES

ISSUE_WIDTHS = (2, 4, 8)


def sweep():
    rows = []
    for tech in TECHNOLOGIES:
        model = RenameDelayModel(tech)
        for issue_width in ISSUE_WIDTHS:
            rows.append((tech.name, issue_width, model.total(issue_width),
                         model.components(issue_width)))
    return rows


def format_report(rows):
    lines = [f"{'tech':8s}{'width':>6s}{'total':>9s}" +
             "".join(f"{c:>10s}" for c in COMPONENTS)]
    for tech, width, total, components in rows:
        lines.append(
            f"{tech:8s}{width:6d}{total:9.1f}" +
            "".join(f"{components[c]:10.1f}" for c in COMPONENTS)
        )
    return "\n".join(lines)


def test_fig3_rename_delay(benchmark, paper_report):
    rows = benchmark(sweep)
    paper_report("Figure 3: rename delay vs issue width (ps)", format_report(rows))
    # Shape checks: monotone in width, bitline grows fastest.
    by_tech = {}
    for tech, width, total, components in rows:
        by_tech.setdefault(tech, []).append((width, total, components))
    for series in by_tech.values():
        totals = [t for _w, t, _c in series]
        assert totals == sorted(totals)
        first, last = series[0][2], series[-1][2]
        growth = {c: last[c] - first[c] for c in COMPONENTS}
        assert growth["bitline"] == max(growth.values())
