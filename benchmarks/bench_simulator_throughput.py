"""Engineering benchmark: simulator throughput and its profile.

Not a paper result -- this times the reproduction's own machinery so
throughput regressions in the pipeline model are caught.  It reports
simulated instructions per second for the cheapest and the most
complex machine, the functional emulator's execution rate, a
per-stage host-time profile (via ``repro.obs.profiling``) showing
where simulation time itself goes, and the event-tracing overhead.

``MIN_RATE`` is the floor asserted after the hot-path optimization
pass (pre-analysis arrays, inlined stages, cycle skipping -- see
``docs/performance.md``); it is set well below the measured rates so
CI machines clear it, but well above what the unoptimized seed could
reach -- a regression back to the seed's hot path fails loudly.
``COMPILED_MIN_RATE`` is the raised floor for the per-config
compiled pipeline (``simulate(..., mode="compiled")``, see
``repro.uarch.compile``): twice the interpreter floor, so a compiled
path that silently degrades to interpreter speed fails.  The
tracing-disabled overhead guard keeps the instrumented pipeline (one
``tracer is None`` branch per event site) at or above the
interpreter floor, so tracing hooks cannot silently erode the
zero-tracing path.

Measured rates are folded into ``BENCH_simulator.json`` (repo root)
by the ``sim_bench_record`` fixture, next to the checked-in
before/after record of the optimization pass.
"""

from repro.core.machines import (
    baseline_8way,
    clustered_dependence_8way,
    load_tracking_8way,
    ports_limited_8way,
)
from repro.isa import Emulator
from repro.obs import EventTracer, profile_simulation
from repro.obs.profiling import profile_run
from repro.uarch.pipeline import simulate
from repro.workloads import build_program, get_trace

TRACE_LENGTH = 8_000

#: Simulated instructions/second floor on the baseline 8-way machine
#: (gcc).  The seed revision sustained ~66k and asserted 10k; the
#: optimized hot path sustains ~180k locally, so 30k catches any
#: regression to seed-level throughput with ample CI headroom.
MIN_RATE = 30_000

#: The seed revision's floor, kept for the history books (and the
#: docs-sync test that pins the optimization log to real constants).
SEED_MIN_RATE = 10_000

#: Floor for the compiled pipeline on its home shapes: 2x the
#: interpreter floor (locally it measures >2.5x the interpreter; see
#: BENCH_simulator.json's "compiled" record).
COMPILED_MIN_RATE = 60_000


def test_throughput_baseline_machine(benchmark, paper_report, sim_bench_record):
    trace = get_trace("gcc", TRACE_LENGTH)
    stats = benchmark(simulate, baseline_8way(), trace)
    rate = TRACE_LENGTH / benchmark.stats.stats.mean
    paper_report(
        "Simulator throughput: baseline machine",
        f"  {rate:,.0f} simulated instructions/second "
        f"(IPC {stats.ipc:.2f} on gcc)",
    )
    sim_bench_record("baseline_8way/gcc", rate)
    assert rate > MIN_RATE  # a regression to the seed hot path fails here


def test_throughput_clustered_fifo_machine(benchmark, sim_bench_record):
    trace = get_trace("gcc", TRACE_LENGTH)
    benchmark(simulate, clustered_dependence_8way(), trace)
    rate = TRACE_LENGTH / benchmark.stats.stats.mean
    sim_bench_record("clustered_dependence_8way/gcc", rate)
    assert rate > MIN_RATE


def test_throughput_load_tracking_machine(benchmark, sim_bench_record):
    """The load-delay-tracking scheduler opts out of cycle skipping
    (held candidates expire at cycles no completion event marks), so
    it is held to the seed-era floor, not the optimized one."""
    trace = get_trace("gcc", TRACE_LENGTH)
    benchmark(simulate, load_tracking_8way(), trace)
    rate = TRACE_LENGTH / benchmark.stats.stats.mean
    sim_bench_record("load_tracking_8way/gcc", rate)
    assert rate > SEED_MIN_RATE


def test_throughput_ports_limited_machine(benchmark, sim_bench_record):
    """Per-cycle read-port arbitration is O(issue width) bookkeeping
    on the existing hot path, so the optimized floor still applies."""
    trace = get_trace("gcc", TRACE_LENGTH)
    benchmark(simulate, ports_limited_8way(), trace)
    rate = TRACE_LENGTH / benchmark.stats.stats.mean
    sim_bench_record("ports_limited_8way/gcc", rate)
    assert rate > MIN_RATE


def test_throughput_compiled_baseline_machine(
    benchmark, paper_report, sim_bench_record
):
    """The per-config compiled pipeline on the paper's baseline.

    The tentpole claim of the compile pass: >= 2x the PR 3 fast
    interpreter on this exact cell, byte-identical stats (pinned by
    tests/test_fast_reference_equivalence.py).  The runner is
    compiled once up front so the benchmark times steady-state
    execution, as campaign/frontier/service workers see it.
    """
    from repro.uarch.compile import compiled_runner

    trace = get_trace("gcc", TRACE_LENGTH)
    compiled_runner(baseline_8way())  # warm the compile cache
    stats = benchmark(simulate, baseline_8way(), trace, mode="compiled")
    rate = TRACE_LENGTH / benchmark.stats.stats.mean
    paper_report(
        "Simulator throughput: baseline machine (compiled pipeline)",
        f"  {rate:,.0f} simulated instructions/second "
        f"(IPC {stats.ipc:.2f} on gcc)",
    )
    sim_bench_record("baseline_8way/gcc (compiled)", rate)
    assert rate > COMPILED_MIN_RATE


def test_throughput_compiled_ports_limited_machine(
    benchmark, sim_bench_record
):
    """The compiled pipeline's other home shape: port-budget checks
    are folded in, not interpreted, so the raised floor still holds."""
    from repro.uarch.compile import compiled_runner

    trace = get_trace("gcc", TRACE_LENGTH)
    compiled_runner(ports_limited_8way())
    benchmark(simulate, ports_limited_8way(), trace, mode="compiled")
    rate = TRACE_LENGTH / benchmark.stats.stats.mean
    sim_bench_record("ports_limited_8way/gcc (compiled)", rate)
    assert rate > COMPILED_MIN_RATE


def test_throughput_compiled_fallback_shape(benchmark, sim_bench_record):
    """mode="compiled" on an unsupported (clustered) shape must fall
    back to the fast interpreter and clear the interpreter floor --
    the graceful-degradation contract campaign workers rely on."""
    trace = get_trace("gcc", TRACE_LENGTH)
    benchmark(simulate, clustered_dependence_8way(), trace, mode="compiled")
    rate = TRACE_LENGTH / benchmark.stats.stats.mean
    sim_bench_record("clustered_dependence_8way/gcc (compiled fallback)", rate)
    assert rate > MIN_RATE


def test_throughput_reference_model(benchmark, sim_bench_record):
    """The frozen reference stays runnable (it is the equivalence
    oracle) and the optimized path stays meaningfully faster."""
    trace = get_trace("gcc", TRACE_LENGTH)
    benchmark(simulate, baseline_8way(), trace, fast=False)
    rate = TRACE_LENGTH / benchmark.stats.stats.mean
    sim_bench_record("baseline_8way/gcc (reference)", rate)
    assert rate > SEED_MIN_RATE


def test_throughput_functional_emulator(benchmark):
    program = build_program("gcc")

    def run():
        return Emulator(program).run(TRACE_LENGTH)

    trace = benchmark(run)
    assert len(trace) == TRACE_LENGTH
    rate = TRACE_LENGTH / benchmark.stats.stats.mean
    assert rate > 50_000


def test_stage_profile(benchmark, paper_report, metrics_record):
    """Where does simulation wall-clock go, stage by stage?"""
    trace = get_trace("gcc", TRACE_LENGTH)

    def profiled():
        return profile_simulation(baseline_8way(), trace)

    stats, report = benchmark.pedantic(profiled, rounds=1, iterations=1)
    stats.validate()
    metrics_record(stats)
    paper_report("Simulator host profile (per-stage Python time)",
                 report.format_report())
    assert report.cycles == stats.cycles
    assert sum(report.stage_seconds.values()) <= report.wall_seconds


def test_tracing_disabled_overhead_guard(paper_report):
    """Tracing off must not cost throughput: stay at/above the
    optimized floor, and full tracing must stay within a sane
    multiple."""
    trace = get_trace("gcc", TRACE_LENGTH)
    config = baseline_8way()
    simulate(config, trace)  # warm caches before timing
    _, plain_seconds = profile_run(simulate, config, trace)
    tracer = EventTracer()
    _, traced_seconds = profile_run(simulate, config, trace, tracer=tracer)
    plain_rate = TRACE_LENGTH / plain_seconds
    traced_rate = TRACE_LENGTH / traced_seconds
    paper_report(
        "Event-tracing overhead",
        f"  tracing off: {plain_rate:,.0f} insts/s; "
        f"tracing on: {traced_rate:,.0f} insts/s "
        f"({traced_seconds / plain_seconds:.2f}x, "
        f"{tracer.emitted:,} events)",
    )
    # The disabled path must clear the optimized floor outright (the
    # hook is one branch per event site).
    assert plain_rate > MIN_RATE
    # Full event emission is allowed to cost, but not explode.
    assert traced_seconds < 10 * plain_seconds
