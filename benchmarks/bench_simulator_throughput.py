"""Engineering benchmark: simulator throughput.

Not a paper result -- this times the reproduction's own machinery so
throughput regressions in the pipeline model are caught.  It reports
simulated instructions per second for the cheapest and the most
complex machine, plus the functional emulator's execution rate.
"""

from repro.core.machines import baseline_8way, clustered_dependence_8way
from repro.isa import Emulator
from repro.uarch.pipeline import simulate
from repro.workloads import build_program, get_trace

TRACE_LENGTH = 8_000


def test_throughput_baseline_machine(benchmark, paper_report):
    trace = get_trace("gcc", TRACE_LENGTH)
    stats = benchmark(simulate, baseline_8way(), trace)
    rate = TRACE_LENGTH / benchmark.stats.stats.mean
    paper_report(
        "Simulator throughput: baseline machine",
        f"  {rate:,.0f} simulated instructions/second "
        f"(IPC {stats.ipc:.2f} on gcc)",
    )
    assert rate > 10_000  # guard against pathological slowdowns


def test_throughput_clustered_fifo_machine(benchmark):
    trace = get_trace("gcc", TRACE_LENGTH)
    benchmark(simulate, clustered_dependence_8way(), trace)
    rate = TRACE_LENGTH / benchmark.stats.stats.mean
    assert rate > 10_000


def test_throughput_functional_emulator(benchmark):
    program = build_program("gcc")

    def run():
        return Emulator(program).run(TRACE_LENGTH)

    trace = benchmark(run)
    assert len(trace) == TRACE_LENGTH
    rate = TRACE_LENGTH / benchmark.stats.stats.mean
    assert rate > 50_000
