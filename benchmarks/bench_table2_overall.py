"""Table 2: overall delay results across technologies.

Paper-vs-measured for every cell: rename, wakeup+select, and bypass
delays at (4-way, 32-entry) and (8-way, 64-entry) for 0.8, 0.35, and
0.18 um.  Also checks the paper's two headline observations: window
logic dominates at 4-way; bypass overtakes it at 8-way.
"""

import pytest

from repro.delay.calibration import TABLE2_PS
from repro.delay.summary import overall_delays
from repro.technology import TECHNOLOGIES

DESIGN_POINTS = ((4, 32), (8, 64))


def sweep():
    return {
        tech.name: {
            point: overall_delays(tech, *point) for point in DESIGN_POINTS
        }
        for tech in TECHNOLOGIES
    }


def format_report(table):
    lines = [
        f"{'tech':8s}{'design':>10s}"
        f"{'rename':>16s}{'wakeup+select':>18s}{'bypass':>16s}",
        f"{'':8s}{'':>10s}"
        + "".join(f"{'paper':>8s}{'ours':>8s}" for _ in range(3)).replace(
            "paper    ours", "paper    ours"
        ),
    ]
    for tech_name, by_point in table.items():
        for point, summary in by_point.items():
            paper = TABLE2_PS[tech_name][point]
            lines.append(
                f"{tech_name:8s}{f'{point[0]}w/{point[1]}':>10s}"
                f"{paper[0]:8.1f}{summary.rename_ps:8.1f}"
                f"{paper[1]:10.1f}{summary.window_logic_ps:8.1f}"
                f"{paper[2]:8.1f}{summary.bypass_ps:8.1f}"
            )
    return "\n".join(lines)


def test_table2_overall_delays(benchmark, paper_report):
    table = benchmark(sweep)
    paper_report("Table 2: overall delay results (ps)", format_report(table))
    for tech_name, by_point in table.items():
        for point, summary in by_point.items():
            paper_rename, paper_window, paper_bypass = TABLE2_PS[tech_name][point]
            assert summary.rename_ps == pytest.approx(paper_rename, rel=0.005)
            assert summary.window_logic_ps == pytest.approx(paper_window, rel=0.005)
            assert summary.bypass_ps == pytest.approx(paper_bypass, rel=0.005)
    # Headline observations (Section 4.5).
    four_way = table["0.18um"][(4, 32)]
    eight_way = table["0.18um"][(8, 64)]
    assert four_way.critical_path_ps == pytest.approx(four_way.window_logic_ps)
    assert eight_way.bypass_ps > eight_way.window_logic_ps
