"""Figure 13: IPC of the dependence-based microarchitecture.

Paper: the 8-FIFO x 8-deep dependence-based machine extracts similar
parallelism to the 64-entry-window baseline -- cycle counts within 5%
for five of the seven benchmarks, worst-case degradation 8% (li).
"""

from conftest import bench_instructions

from repro.core.machines import dependence_based_8way
from repro.uarch.pipeline import simulate
from repro.workloads import get_trace


def format_report(result):
    relative = result.relative_ipc("dependence-based", "baseline")
    lines = [result.format_table(), ""]
    lines.append("relative IPC (dependence-based / baseline):")
    lines.append(
        "  " + "  ".join(f"{w}={v:.3f}" for w, v in relative.items())
    )
    mean = result.mean_relative_ipc("dependence-based", "baseline")
    lines.append(f"  mean={mean:.3f}   (paper: within 5% for 5/7, worst -8%)")
    return "\n".join(lines)


def test_fig13_dependence_based_ipc(benchmark, paper_report, fig13_result):
    # Time regenerating one bar of the figure; the full table comes
    # from the session-scoped experiment run.
    trace = get_trace("compress", bench_instructions())
    config = dependence_based_8way()
    benchmark.pedantic(simulate, args=(config, trace), rounds=1, iterations=1)

    paper_report("Figure 13: IPC, baseline vs dependence-based",
                 format_report(fig13_result))
    relative = fig13_result.relative_ipc("dependence-based", "baseline")
    # Shape: little slowdown overall.
    assert sum(1 for v in relative.values() if v > 0.94) >= 4
    assert min(relative.values()) > 0.80
    assert fig13_result.mean_relative_ipc("dependence-based", "baseline") > 0.90
