"""Figure 6: wakeup delay components versus feature size.

Paper (8-way, 64-entry window): tag drive and tag match -- the
wire-bearing components -- scale worse than the pure-logic match OR,
so their share of the total grows from 52% at 0.8 um to 65% at
0.18 um.
"""

from repro.delay.wakeup import COMPONENTS, WakeupDelayModel
from repro.technology import TECHNOLOGIES

ISSUE_WIDTH = 8
WINDOW = 64


def sweep():
    rows = []
    for tech in TECHNOLOGIES:
        model = WakeupDelayModel(tech)
        parts = model.components(ISSUE_WIDTH, WINDOW)
        rows.append((tech.name, parts, model.wire_fraction(ISSUE_WIDTH, WINDOW)))
    return rows


def format_report(rows):
    lines = [f"{'tech':8s}" + "".join(f"{c:>11s}" for c in COMPONENTS) +
             f"{'total':>9s}{'wire%':>8s}"]
    for tech, parts, fraction in rows:
        total = sum(parts.values())
        lines.append(
            f"{tech:8s}" + "".join(f"{parts[c]:11.1f}" for c in COMPONENTS) +
            f"{total:9.1f}{100 * fraction:7.1f}%"
        )
    return "\n".join(lines)


def test_fig6_wakeup_scaling(benchmark, paper_report):
    rows = benchmark(sweep)
    paper_report(
        "Figure 6: wakeup components vs feature size, 8-way/64 (ps)",
        format_report(rows),
    )
    fractions = {tech: fraction for tech, _parts, fraction in rows}
    # Paper: 52% at 0.8um -> 65% at 0.18um.
    assert fractions["0.18um"] > fractions["0.8um"]
    assert abs(fractions["0.8um"] - 0.52) < 0.08
    assert abs(fractions["0.18um"] - 0.65) < 0.05
    # Total delay shrinks with feature size.
    totals = [sum(parts.values()) for _t, parts, _f in rows]
    assert totals[0] > totals[1] > totals[2]
