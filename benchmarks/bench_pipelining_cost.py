"""Section 4.5 / 5.3: the pipelining cost of a faster clock.

The dependence-based design shrinks the window-logic delay, so the
clock can speed up -- but rename, register file, and cache delays do
not shrink, so those (pipelineable) structures need more stages.
This bench quantifies the stage counts at both machines' clocks,
making the paper's caveat ("other stages may have to be more deeply
pipelined") concrete.
"""

from repro.delay.pipelining import (
    conventional_plan,
    dependence_based_plan,
    stages_required,
)
from repro.technology import TECHNOLOGIES


def sweep():
    return {
        tech.name: (conventional_plan(tech), dependence_based_plan(tech))
        for tech in TECHNOLOGIES
    }


def format_report(plans):
    lines = [f"{'tech':8s}{'machine':>14s}{'clock ps':>10s}"
             f"{'rename':>8s}{'regfile':>9s}{'cache':>7s}"]
    for tech_name, (conventional, dependence) in plans.items():
        for label, plan in (("window", conventional), ("dependence", dependence)):
            lines.append(
                f"{tech_name:8s}{label:>14s}{plan.clock_ps:10.1f}"
                f"{plan.rename_stages:8d}{plan.regfile_stages:9d}"
                f"{plan.cache_stages:7d}"
            )
    return "\n".join(lines)


def test_pipelining_cost(benchmark, paper_report):
    plans = benchmark(sweep)
    paper_report("Section 4.5/5.3: pipeline depths at each machine's clock",
                 format_report(plans))
    for _tech_name, (conventional, dependence) in plans.items():
        # The dependence-based clock is faster, so every pipelineable
        # structure needs at least as many stages.
        assert dependence.clock_ps < conventional.clock_ps
        assert dependence.rename_stages >= conventional.rename_stages
        assert dependence.regfile_stages >= conventional.regfile_stages
        assert dependence.cache_stages >= conventional.cache_stages
        # Caches and register files genuinely need pipelining at the
        # fast clock -- the paper's caveat is real.
        assert dependence.regfile_stages >= 2
        assert dependence.cache_stages >= 2


def test_stages_required_math(benchmark):
    values = benchmark(
        lambda: [stages_required(d, 500.0) for d in (100.0, 450.0, 451.0, 1000.0)]
    )
    assert values == [1, 1, 2, 3]
