"""Shared fixtures for the reproduction benchmarks.

Each ``bench_*`` module regenerates one of the paper's tables or
figures.  The reproduced rows are registered through the
``paper_report`` fixture and printed in the terminal summary (after
the pytest-benchmark timing table), so ``pytest benchmarks/
--benchmark-only`` shows both the timings and the paper-vs-measured
data.

Simulation length is controlled by the ``REPRO_BENCH_INSTRUCTIONS``
environment variable (default
``repro.core.experiments.DEFAULT_INSTRUCTIONS`` dynamic instructions
per benchmark program; the paper ran up to 0.5 B on real SPEC'95).

Machine-readable output: set ``REPRO_BENCH_METRICS=/path/to.json``
and every run registered through the ``metrics_record`` fixture is
written there as one JSON document (each entry is a
``SimStats.to_dict`` payload -- the same audited serialisation the
exporters use).
"""

import json
import os

import pytest

from repro.core.experiments import (
    DEFAULT_INSTRUCTIONS,
    run_fig13,
    run_fig15,
    run_fig17,
)

#: (title, text) report blocks, in registration order.
_REPORTS: list[tuple[str, str]] = []

#: SimStats payloads registered for the machine-readable export.
_METRICS: list[dict] = []

#: label -> measured simulator rate (inst/s) for BENCH_simulator.json.
_SIM_RATES: dict[str, float] = {}

#: The checked-in simulator throughput record (repo root).
BENCH_SIMULATOR_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_simulator.json"
)


def bench_instructions() -> int:
    """Dynamic instructions per simulated benchmark run.

    Single-sourced from :data:`repro.core.experiments.DEFAULT_INSTRUCTIONS`
    so the benchmarks and the experiment drivers cannot drift apart.
    """
    return int(
        os.environ.get("REPRO_BENCH_INSTRUCTIONS", str(DEFAULT_INSTRUCTIONS))
    )


@pytest.fixture
def paper_report():
    """Register a (title, body) block for the end-of-run summary."""

    def add(title: str, body: str) -> None:
        _REPORTS.append((title, body))

    return add


@pytest.fixture
def metrics_record():
    """Register a run's SimStats for the REPRO_BENCH_METRICS export."""

    def add(stats) -> None:
        _METRICS.append(stats.to_dict())

    return add


@pytest.fixture
def sim_bench_record():
    """Register a measured simulator throughput (label -> inst/s).

    At the end of the run every registered rate is folded into
    ``BENCH_simulator.json`` next to the checked-in ``recorded``
    numbers, so a local or CI benchmark run always leaves a
    machine-readable before/after artifact.
    """

    def add(label: str, rate: float) -> None:
        _SIM_RATES[label] = round(float(rate))

    return add


def _write_sim_bench(terminalreporter) -> None:
    if not _SIM_RATES:
        return
    # Single-sourced bench recording: every BENCH_*.json write in the
    # repo goes through record_bench (schema-stamped, atomic).
    from repro.obs.ledger import record_bench

    record_bench(BENCH_SIMULATOR_PATH, "repro-simulator-bench",
                 dict(sorted(_SIM_RATES.items())))
    terminalreporter.write_line(
        f"wrote {len(_SIM_RATES)} simulator rates to {BENCH_SIMULATOR_PATH}"
    )
    _SIM_RATES.clear()


@pytest.fixture(scope="session")
def fig13_result():
    return run_fig13(max_instructions=bench_instructions())


@pytest.fixture(scope="session")
def fig15_result():
    return run_fig15(max_instructions=bench_instructions())


@pytest.fixture(scope="session")
def fig17_result():
    return run_fig17(max_instructions=bench_instructions())


def pytest_terminal_summary(terminalreporter):
    _write_sim_bench(terminalreporter)
    metrics_path = os.environ.get("REPRO_BENCH_METRICS")
    if metrics_path and _METRICS:
        with open(metrics_path, "w", encoding="utf-8") as handle:
            json.dump({"kind": "repro-bench-metrics", "runs": _METRICS},
                      handle, indent=1, sort_keys=True)
        terminalreporter.write_line(
            f"wrote {len(_METRICS)} run metrics to {metrics_path}"
        )
    _METRICS.clear()
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper reproduction results")
    for title, body in _REPORTS:
        terminalreporter.write_sep("-", title)
        for line in body.splitlines():
            terminalreporter.write_line(line)
    _REPORTS.clear()
