"""Campaign engine: parallel fan-out and result-cache throughput.

Not a paper figure -- this times the *reproduction's* sweep machinery
(`repro.core.campaign`): a cold serial run of the Figure 13 grid, the
same grid fanned out over two workers, and a warm-cache rerun, which
must perform zero simulations.
"""

from conftest import bench_instructions

from repro.core.campaign import ResultCache, run_campaign
from repro.core.experiments import figure_configs

#: A short grid keeps the timing comparison about the engine, not the
#: simulator; REPRO_BENCH_INSTRUCTIONS still scales it.
GRID_INSTRUCTIONS = max(1_000, bench_instructions() // 10)


def _campaign(jobs, cache=None):
    return run_campaign(
        figure_configs("fig13"),
        max_instructions=GRID_INSTRUCTIONS,
        name="fig13",
        jobs=jobs,
        cache=cache,
    )


def test_campaign_serial_cold(benchmark, paper_report):
    result, profile = benchmark.pedantic(
        lambda: _campaign(jobs=1), rounds=1, iterations=1
    )
    assert profile.simulated_cells == profile.cell_count
    paper_report(
        "Campaign engine: cold serial fig13 grid",
        f"{profile.cell_count} cells, "
        f"{profile.simulated_instructions:,} instructions, "
        f"{profile.instructions_per_second:,.0f} inst/s",
    )


def test_campaign_parallel_cold(benchmark):
    result, profile = benchmark.pedantic(
        lambda: _campaign(jobs=2), rounds=1, iterations=1
    )
    assert profile.simulated_cells == profile.cell_count
    assert profile.jobs == 2


def test_campaign_warm_cache(benchmark, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    _campaign(jobs=1, cache=cache)  # populate
    result, profile = benchmark.pedantic(
        lambda: _campaign(jobs=1, cache=cache), rounds=1, iterations=1
    )
    assert profile.simulated_cells == 0
    assert profile.cache_hits == profile.cell_count
