"""Figure 5: wakeup delay versus window size at 0.18 um.

Paper: delay rises with window size and issue width; the quadratic
window dependence is visible for 8-way; going 2->4-way costs ~34% and
4->8-way ~46% at a 64-entry window.
"""

from repro.delay.wakeup import WakeupDelayModel
from repro.technology import TECH_018

WINDOW_SIZES = (8, 16, 24, 32, 40, 48, 56, 64)
ISSUE_WIDTHS = (2, 4, 8)


def sweep():
    model = WakeupDelayModel(TECH_018)
    return {
        width: [model.total(width, window) for window in WINDOW_SIZES]
        for width in ISSUE_WIDTHS
    }


def format_report(series):
    lines = [f"{'window':>8s}" + "".join(f"{w}-way".rjust(10) for w in ISSUE_WIDTHS)]
    for index, window in enumerate(WINDOW_SIZES):
        cells = "".join(f"{series[w][index]:10.1f}" for w in ISSUE_WIDTHS)
        lines.append(f"{window:8d}" + cells)
    return "\n".join(lines)


def test_fig5_wakeup_delay(benchmark, paper_report):
    series = benchmark(sweep)
    paper_report("Figure 5: wakeup delay vs window size, 0.18um (ps)",
                 format_report(series))
    for width in ISSUE_WIDTHS:
        assert series[width] == sorted(series[width])  # monotone in window
    # Wider issue is slower at every window size.
    for index in range(len(WINDOW_SIZES)):
        assert series[2][index] <= series[4][index] <= series[8][index]
    # Quadratic curvature for 8-way: later increments exceed earlier.
    deltas = [b - a for a, b in zip(series[8], series[8][1:])]
    assert deltas[-1] > deltas[0]
    # Section 4.2.3 growth steps at 64 entries (generous bands).
    growth_2_4 = series[4][-1] / series[2][-1] - 1
    growth_4_8 = series[8][-1] / series[4][-1] - 1
    assert 0.15 < growth_2_4 < 0.50
    assert 0.30 < growth_4_8 < 0.65
