#!/usr/bin/env python3
"""Write a workload in Mini (the bundled C-like language), compile it
to the ISA, and run it through the paper's machines.

The program is a small matrix workload: initialise two 16x16 matrices,
multiply them, and checksum the result -- the kind of kernel a user
would study without wanting to hand-write assembly.

Run:  python examples/mini_compiler_workload.py
"""

from repro.analysis import profile_trace
from repro.core.machines import (
    baseline_8way,
    clustered_dependence_8way,
    dependence_based_8way,
)
from repro.isa import Emulator
from repro.lang import compile_source
from repro.uarch.pipeline import simulate

MATMUL = """
# 16x16 integer matrix multiply with checksum
array a[256];
array b[256];
array c[256];

func main() {
    init();
    matmul();
    return checksum();
}

func init() {
    var i;
    i = 0;
    while (i < 256) {
        a[i] = (i * 7 + 3) % 32;
        b[i] = (i * 5 + 1) % 32;
        i = i + 1;
    }
    return 0;
}

func matmul() {
    var row; var col; var k; var acc;
    row = 0;
    while (row < 16) {
        col = 0;
        while (col < 16) {
            acc = 0;
            k = 0;
            while (k < 16) {
                acc = acc + a[row * 16 + k] * b[k * 16 + col];
                k = k + 1;
            }
            c[row * 16 + col] = acc;
            col = col + 1;
        }
        row = row + 1;
    }
    return 0;
}

func checksum() {
    var i; var sum;
    i = 0; sum = 0;
    while (i < 256) { sum = (sum + c[i]) % 65536; i = i + 1; }
    return sum;
}
"""


def python_reference() -> int:
    a = [(i * 7 + 3) % 32 for i in range(256)]
    b = [(i * 5 + 1) % 32 for i in range(256)]
    total = 0
    for row in range(16):
        for col in range(16):
            acc = sum(a[row * 16 + k] * b[k * 16 + col] for k in range(16))
            total = (total + acc) % 65536
    return total


def main() -> None:
    program = compile_source(MATMUL)
    print(f"compiled to {len(program)} instructions")

    emulator = Emulator(program)
    trace = emulator.run(max_instructions=300_000)
    expected = python_reference()
    status = "ok" if emulator.int_regs[2] == expected else "MISMATCH"
    print(f"checksum {emulator.int_regs[2]} (python says {expected}) -- {status}")
    print(f"dynamic instructions: {len(trace)}\n")

    trace.name = "mini-matmul"
    print(profile_trace(trace).format_report())
    print()
    for config in (baseline_8way(), dependence_based_8way(),
                   clustered_dependence_8way()):
        stats = simulate(config, trace)
        print(f"  {config.name:28s} IPC={stats.ipc:.3f}")


if __name__ == "__main__":
    main()
