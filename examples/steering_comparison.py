#!/usr/bin/env python3
"""Compare the clustered steering policies of Figure 17.

Runs the five machines (ideal single window; FIFO dispatch steering;
two-window dispatch steering; central-window execution steering;
random steering) over chosen benchmarks and prints IPC, relative IPC,
and inter-cluster bypass frequency.

Run:  python examples/steering_comparison.py [workload ...] [-n INSTS]
"""

import argparse

from repro.core.experiments import run_machines
from repro.core.machines import fig17_machines
from repro.workloads import WORKLOAD_NAMES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "workloads",
        nargs="*",
        choices=list(WORKLOAD_NAMES) + [[]],
        help="benchmarks to run (default: compress m88ksim vortex)",
    )
    parser.add_argument(
        "-n", "--instructions", type=int, default=15_000,
        help="dynamic instructions per benchmark (default 15000)",
    )
    args = parser.parse_args()
    workloads = tuple(args.workloads) or ("compress", "m88ksim", "vortex")

    print(f"simulating {len(fig17_machines())} machines x {workloads} "
          f"({args.instructions} instructions each)...\n")
    result = run_machines(
        fig17_machines(),
        workloads=workloads,
        max_instructions=args.instructions,
        name="steering-comparison",
    )
    print("IPC:")
    print(result.format_table())
    print("\ninter-cluster bypass frequency:")
    print(result.format_table("bypass"))
    print("\nmean IPC relative to the ideal machine:")
    reference = "1-cluster.1window"
    for machine in result.machine_names:
        if machine == reference:
            continue
        mean = result.mean_relative_ipc(machine, reference)
        print(f"  {machine:36s} {mean:.3f}")
    print("\npaper shape: random steering worst (-17..26%), exec-steer")
    print("nearly ideal, dispatch-steered FIFOs/windows competitive;")
    print("bypass frequency anti-correlates with IPC.")


if __name__ == "__main__":
    main()
