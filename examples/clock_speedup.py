#!/usr/bin/env python3
"""The paper's bottom line (Section 5.5): complexity-effectiveness.

IPC alone makes the clustered dependence-based machine look slightly
worse than a big-window superscalar.  But its window logic is a small
reservation table plus heads-only selection, so its clock can be ~25%
faster (Table 2) -- and once clock speed is factored in, it wins.

Run:  python examples/clock_speedup.py [-n INSTS]
"""

import argparse

from repro.core.experiments import run_fig15
from repro.core.speedup import clock_adjusted_speedup
from repro.delay.summary import (
    dependence_based_window_logic,
    window_logic_delay,
)
from repro.technology import TECH_018, TECHNOLOGIES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-n", "--instructions", type=int, default=15_000)
    args = parser.parse_args()

    print("== Window-logic delay: conventional vs dependence-based ==")
    for tech in TECHNOLOGIES:
        conventional = window_logic_delay(tech, 8, 64)
        dependence = dependence_based_window_logic(
            tech, issue_width=8, physical_registers=128, fifo_count=8
        )
        print(
            f"  {tech.name:8s} conventional {conventional:7.1f} ps, "
            f"dependence-based {dependence:7.1f} ps "
            f"({conventional / dependence:.2f}x)"
        )

    print(f"\nsimulating Figure 15 at {args.instructions} instructions...")
    result = run_fig15(max_instructions=args.instructions)
    print(result.format_table())

    summary = clock_adjusted_speedup(
        result,
        dependence_machine="2-cluster dependence-based",
        window_machine="window-based 8-way",
        tech=TECH_018,
    )
    print("\n== Clock-adjusted speedup (Section 5.5) ==")
    print(summary.format_table())
    print("\npaper: speedups of 10-22%, average 16%, from the same "
          "1.25x clock ratio.")


if __name__ == "__main__":
    main()
