#!/usr/bin/env python3
"""Bring your own workload: assemble a program, trace it, simulate it.

Writes a dot-product kernel in the package's MIPS-like assembly,
executes it functionally, inspects its dynamic character, and compares
machines on it -- the full pipeline a user follows for their own code.

Run:  python examples/custom_workload.py
"""

from repro.core.machines import (
    baseline_8way,
    clustered_dependence_8way,
    dependence_based_8way,
)
from repro.isa import Emulator, assemble
from repro.uarch.pipeline import simulate

DOT_PRODUCT = """
# dot product of two 64-element vectors, repeated to fill the trace
        .data
a:      .word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
        .word 2, 3, 8, 4, 6, 2, 6, 4, 3, 3, 8, 3, 2, 7, 9, 5
        .word 0, 2, 8, 8, 4, 1, 9, 7, 1, 6, 9, 3, 9, 9, 3, 7
        .word 5, 1, 0, 5, 8, 2, 0, 9, 7, 4, 9, 4, 4, 5, 9, 2
b:      .word 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5, 9, 0, 4, 5, 2
        .word 3, 5, 3, 6, 0, 2, 8, 7, 4, 7, 1, 3, 5, 2, 6, 6
        .word 2, 4, 9, 7, 7, 5, 7, 2, 4, 7, 0, 6, 6, 3, 1, 7
        .word 7, 6, 6, 9, 4, 7, 3, 0, 1, 1, 1, 5, 7, 3, 9, 8
        .text
main:   li   r10, 0            # grand total (survives repeats)
repeat: la   r1, a
        la   r2, b
        li   r3, 64            # elements
        li   r4, 0             # dot product
inner:  lw   r5, 0(r1)
        lw   r6, 0(r2)
        mult r7, r5, r6
        addu r4, r4, r7
        addiu r1, r1, 4
        addiu r2, r2, 4
        addiu r3, r3, -1
        bgtz r3, inner
        addu r10, r10, r4
        b    repeat
"""


def expected_dot_product(program) -> int:
    """Recompute the kernel's answer in Python from the data image."""
    base_a = program.data_labels["a"]
    base_b = program.data_labels["b"]

    def word(base, index):
        address = base + 4 * index
        return sum(
            program.data_image.get(address + i, 0) << (8 * i) for i in range(4)
        )

    return sum(word(base_a, i) * word(base_b, i) for i in range(64))


def main() -> None:
    program = assemble(DOT_PRODUCT)
    print(f"assembled {len(program)} instructions; entry at 'main'\n")

    # Functional check: run exactly one pass (4 setup + 64*8 inner + 1)
    # and compare against a Python recomputation.
    one_pass = Emulator(program)
    one_pass.run(max_instructions=4 + 64 * 8 + 1)
    expected = expected_dot_product(program)
    measured = one_pass.int_regs[4]
    status = "ok" if measured == expected else "MISMATCH"
    print(f"functional check: dot product = {measured} "
          f"(python says {expected}) -- {status}")

    # Then a long run for the timing comparison.
    emulator = Emulator(program)
    trace = emulator.run(max_instructions=12_000)
    print(
        f"dynamic character: {len(trace)} instructions, "
        f"{100 * trace.branch_fraction():.1f}% branches, "
        f"{100 * trace.load_fraction():.1f}% loads\n"
    )

    trace.name = "dot-product"
    print("machine comparison:")
    for config in (
        baseline_8way(),
        dependence_based_8way(),
        clustered_dependence_8way(),
    ):
        stats = simulate(config, trace)
        print(
            f"  {config.name:28s} IPC={stats.ipc:.3f} "
            f"(bpred {100 * stats.branch_accuracy:.1f}%, "
            f"dmiss {100 * stats.cache_miss_rate:.1f}%, "
            f"x-bypass {100 * stats.inter_cluster_bypass_frequency:.1f}%)"
        )


if __name__ == "__main__":
    main()
