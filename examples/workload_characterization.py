#!/usr/bin/env python3
"""Characterise the benchmark suite -- and check the paper's premise.

The dependence-based microarchitecture bets that dynamic instruction
streams are chains: most source operands are produced only a few
instructions earlier, so steering a consumer into its producer's FIFO
usually succeeds.  This example profiles every workload (mix,
dependence distances, dataflow ILP limits, branches, memory) and
prints the premise-checking statistic: the fraction of operands
produced within 8 instructions.

Run:  python examples/workload_characterization.py [-n INSTS]
"""

import argparse

from repro.analysis import profile_trace, short_dependence_fraction
from repro.report import bar_chart
from repro.workloads import WORKLOAD_NAMES, get_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-n", "--instructions", type=int, default=10_000)
    args = parser.parse_args()

    profiles = {}
    for name in WORKLOAD_NAMES:
        trace = get_trace(name, args.instructions)
        profiles[name] = profile_trace(trace)
        print(profiles[name].format_report())
        print()

    print("== dataflow ILP within a 128-instruction window ==")
    print(bar_chart({n: p.ilp_window_128 for n, p in profiles.items()},
                    unit=" ILP"))

    print("\n== the dependence-steering premise: operands produced "
          "within 8 instructions ==")
    fractions = {
        name: short_dependence_fraction(get_trace(name, args.instructions))
        for name in WORKLOAD_NAMES
    }
    print(bar_chart(fractions))
    print("\n(li has the lowest ILP -- pointer chasing -- which is why "
          "it degrades most in Figure 13.)")


if __name__ == "__main__":
    main()
