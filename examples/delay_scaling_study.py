#!/usr/bin/env python3
"""Section 4 study: how structure delays scale with machine width,
window size, and feature size.

Reproduces the data behind Figures 3, 5, 6, and 8 and Table 2, and
prints the paper's punchline: which structure limits the clock at each
design point.

Run:  python examples/delay_scaling_study.py
"""

from repro.delay import (
    BypassDelayModel,
    RenameDelayModel,
    SelectionDelayModel,
    WakeupDelayModel,
)
from repro.delay.summary import overall_delays
from repro.technology import TECH_018, TECHNOLOGIES


def rename_study() -> None:
    print("== Rename delay vs issue width (ps) ==")
    widths = (1, 2, 4, 8, 16)
    print(f"{'tech':8s}" + "".join(f"{w:>8d}" for w in widths))
    for tech in TECHNOLOGIES:
        model = RenameDelayModel(tech)
        print(f"{tech.name:8s}" + "".join(f"{model.total(w):8.1f}" for w in widths))


def window_study() -> None:
    print("\n== Window logic (wakeup + select) vs window size, 0.18um (ps) ==")
    windows = (8, 16, 32, 64, 128, 256)
    wakeup = WakeupDelayModel(TECH_018)
    select = SelectionDelayModel(TECH_018)
    print(f"{'width':>6s}" + "".join(f"{w:>8d}" for w in windows))
    for width in (2, 4, 8):
        row = "".join(
            f"{wakeup.total(width, w) + select.total(w):8.1f}" for w in windows
        )
        print(f"{width:6d}" + row)


def bypass_study() -> None:
    print("\n== Bypass delay vs issue width (any technology, ps) ==")
    model = BypassDelayModel(TECH_018)
    for width in (2, 4, 8, 16):
        length = model.wire_length_lambda(width)
        print(
            f"  {width:2d}-way: wire {length:8.0f} lambda, "
            f"delay {model.total(width):8.1f} ps, "
            f"{model.path_count(width):4d} bypass paths"
        )


def critical_path_study() -> None:
    print("\n== Critical structure per design point ==")
    for tech in TECHNOLOGIES:
        for point in ((4, 32), (8, 64)):
            summary = overall_delays(tech, *point)
            slowest = max(
                ("rename", summary.rename_ps),
                ("window logic", summary.window_logic_ps),
                ("bypass", summary.bypass_ps),
                key=lambda item: item[1],
            )
            print(
                f"  {tech.name:8s} {point[0]}-way/{point[1]:3d}: "
                f"{slowest[0]:12s} at {slowest[1]:7.1f} ps"
            )
    print("  (the paper's conclusion: window logic limits 4-way, bypass 8-way)")


def main() -> None:
    rename_study()
    window_study()
    bypass_study()
    critical_path_study()


if __name__ == "__main__":
    main()
