#!/usr/bin/env python3
"""Watch the pipeline: timelines for the paper's two key timing facts.

1. Wakeup + select is atomic (Figure 10): with single-cycle window
   logic, dependent instructions issue back-to-back; pipeline it over
   two stages and a bubble appears between every producer/consumer.
2. Inter-cluster bypasses cost a cycle (Section 5.4): the same chain
   split across clusters stretches by the bypass latency whenever a
   value crosses.

Run:  python examples/pipeline_timeline.py
"""

from repro.core.machines import baseline_8way, clustered_random_8way
from repro.isa import assemble, run_to_trace
from repro.obs import EventTracer
from repro.report import render_timeline
from repro.uarch.pipeline import PipelineSimulator

CHAIN = (
    "li r1, 0\nli r2, 1\n"
    + "\n".join("addu r1, r1, r2" for _ in range(8))
    + "\nhalt\n"
)


def show(title, config, count=10):
    trace = run_to_trace(assemble(CHAIN))
    simulator = PipelineSimulator(config, trace, tracer=EventTracer())
    simulator.run()
    print(f"== {title} ==")
    print(render_timeline(simulator, 0, count))
    print(f"   IPC = {simulator.stats.ipc:.3f}\n")


def main() -> None:
    show("atomic wakeup+select (dependent back-to-back issue)",
         baseline_8way())
    show("2-stage wakeup+select: the Figure 10 bubble",
         baseline_8way(wakeup_select_stages=2))
    show("dependence-blind clustering: chain ping-pongs across "
         "2-cycle bypasses", clustered_random_8way())


if __name__ == "__main__":
    main()
