#!/usr/bin/env python3
"""A fully observed simulation: event trace, stall attribution, profile.

Runs gcc on the clustered dependence-based machine (the paper's
proposal, Section 5.4) with the observability layer attached, then:

1. writes a Chrome/Perfetto trace (open trace.json at
   https://ui.perfetto.dev — one row per instruction, one process per
   cluster, 1 us = 1 cycle);
2. prints the per-cause cycle attribution, which sums exactly to the
   simulated cycle count;
3. prints where the *host* time went, stage by stage.

Run:  python examples/traced_run.py
"""

from repro.core.machines import clustered_dependence_8way
from repro.obs import EventTracer, profile_simulation, write_chrome_trace
from repro.report import text_table
from repro.workloads import get_trace

INSTRUCTIONS = 10_000
OUT = "trace.json"


def main() -> None:
    config = clustered_dependence_8way()
    trace = get_trace("gcc", INSTRUCTIONS)
    tracer = EventTracer()
    stats, profile = profile_simulation(config, trace, tracer=tracer)
    stats.validate()

    payload = write_chrome_trace(OUT, tracer.events, stats=stats)
    print(f"wrote {len(payload['traceEvents'])} trace events to {OUT} "
          f"({tracer.emitted} pipeline events recorded)\n")

    print("== where the simulated cycles went ==")
    rows = [(cause, f"{cycles}", f"{100 * fraction:5.1f}%")
            for cause, cycles, fraction in stats.stall_breakdown()]
    print(text_table(("cause", "cycles", "share"), rows))
    attributed = stats.active_cycles + sum(stats.stall_cycles.values())
    print(f"   attributed {attributed} of {stats.cycles} cycles "
          f"(IPC {stats.ipc:.3f})\n")

    print("== where the host time went ==")
    print(profile.format_report())


if __name__ == "__main__":
    main()
