#!/usr/bin/env python3
"""Quickstart: the two halves of the reproduction in ~40 lines.

1. Query the Section 4 delay models: how slow is an issue window, and
   what does the dependence-based design replace it with?
2. Run the timing simulator: baseline 8-way window machine vs. the
   dependence-based FIFO machine on one benchmark.

Run:  python examples/quickstart.py
"""

from repro.core.machines import baseline_8way, dependence_based_8way
from repro.delay import (
    BypassDelayModel,
    RenameDelayModel,
    ReservationTableDelayModel,
    SelectionDelayModel,
    WakeupDelayModel,
)
from repro.delay.summary import clock_ratio_dependence_based
from repro.technology import TECH_018
from repro.uarch.pipeline import simulate
from repro.workloads import get_trace


def main() -> None:
    # ---- half 1: complexity (delay) models -----------------------------
    print("== Delay models at 0.18 um (8-way, 64-entry window) ==")
    wakeup = WakeupDelayModel(TECH_018).total(issue_width=8, window_size=64)
    select = SelectionDelayModel(TECH_018).total(window_size=64)
    rename = RenameDelayModel(TECH_018).total(issue_width=8)
    bypass = BypassDelayModel(TECH_018).total(issue_width=8)
    print(f"  rename            {rename:8.1f} ps")
    print(f"  wakeup + select   {wakeup + select:8.1f} ps   <- window logic")
    print(f"  bypass            {bypass:8.1f} ps   <- worse than window logic!")

    reservation = ReservationTableDelayModel(TECH_018).total(8, physical_registers=128)
    print(f"  reservation table {reservation:8.1f} ps   <- what FIFOs need instead")
    ratio = clock_ratio_dependence_based(TECH_018)
    print(f"  => dependence-based clock advantage: {100 * (ratio - 1):.0f}%")

    # ---- half 2: timing simulation ----------------------------------------
    print("\n== Timing simulation: compress, 20k instructions ==")
    trace = get_trace("compress", 20_000)
    for config in (baseline_8way(), dependence_based_8way()):
        stats = simulate(config, trace)
        print(f"  {stats.summary()}")


if __name__ == "__main__":
    main()
