"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 517 editable installs fail; ``pip install -e . --no-use-pep517``
uses this shim instead.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
