"""Shared machine fixtures for the test suite.

One place that lists which machine shapes the suites run against,
backed by the canonical registry in :mod:`repro.core.machines` -- the
same registry :mod:`repro.verify.sampler` fuzzes over, so a shape
added there is automatically picked up by the property tests, the
strategy-conformance harness, and the fuzzer.

Keys are the registry's canonical shape names ("baseline",
"dependence", "clustered", "clustered_windows", "exec_steer",
"random", "modulo", "least_loaded", "load_tracking",
"ports_limited"); values are zero-argument factories returning a
fresh :class:`~repro.uarch.config.MachineConfig`.
"""

from repro.core.machines import MACHINE_REGISTRY
from repro.uarch.scheduler import supports_reference

#: Every registered shape (all ten): the full-coverage sweep used by
#: the strategy-conformance harness.
ALL_MACHINES = dict(MACHINE_REGISTRY)

#: The shapes the frozen reference model covers (classic schedulers,
#: unlimited regfile): the fast-vs-reference equivalence sweep runs
#: exactly these -- derived from the same predicate the fuzzer uses,
#: so the two can never disagree about what the reference models.
REFERENCE_MACHINES = {
    name: factory
    for name, factory in MACHINE_REGISTRY.items()
    if supports_reference(factory())
}


def subset(*names: str) -> dict:
    """A name -> factory dict for the given canonical shape names."""
    missing = [name for name in names if name not in MACHINE_REGISTRY]
    if missing:
        raise KeyError(
            f"unknown machine shapes {missing}; "
            f"registry has {sorted(MACHINE_REGISTRY)}"
        )
    return {name: MACHINE_REGISTRY[name] for name in names}


#: The four structurally distinct shapes (window, FIFO, clustered
#: FIFO, random-steered) used by the randomised property tests.
CORE_MACHINES = subset("baseline", "dependence", "clustered", "random")

#: The six shapes with distinct steering behaviour, used by the
#: pipeline invariant audits.
STEERED_MACHINES = subset(
    "baseline",
    "dependence",
    "clustered",
    "clustered_windows",
    "exec_steer",
    "random",
)
