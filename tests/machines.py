"""Shared machine fixtures for the test suite.

One place that lists which machine shapes the suites run against,
backed by the canonical registry in :mod:`repro.core.machines` -- the
same registry :mod:`repro.verify.sampler` fuzzes over, so a shape
added there is automatically picked up by the property tests, the
fast/reference equivalence sweep, and the fuzzer.

Keys are the registry's canonical shape names ("baseline",
"dependence", "clustered", "clustered_windows", "exec_steer",
"random", "modulo", "least_loaded"); values are zero-argument
factories returning a fresh :class:`~repro.uarch.config.MachineConfig`.
"""

from repro.core.machines import MACHINE_REGISTRY

#: Every registered shape (all eight): the full-coverage sweep used by
#: the fast-vs-reference equivalence tests.
ALL_MACHINES = dict(MACHINE_REGISTRY)


def subset(*names: str) -> dict:
    """A name -> factory dict for the given canonical shape names."""
    missing = [name for name in names if name not in MACHINE_REGISTRY]
    if missing:
        raise KeyError(
            f"unknown machine shapes {missing}; "
            f"registry has {sorted(MACHINE_REGISTRY)}"
        )
    return {name: MACHINE_REGISTRY[name] for name in names}


#: The four structurally distinct shapes (window, FIFO, clustered
#: FIFO, random-steered) used by the randomised property tests.
CORE_MACHINES = subset("baseline", "dependence", "clustered", "random")

#: The six shapes with distinct steering behaviour, used by the
#: pipeline invariant audits.
STEERED_MACHINES = subset(
    "baseline",
    "dependence",
    "clustered",
    "clustered_windows",
    "exec_steer",
    "random",
)
