"""Tests for machine factories, experiment drivers, and speedups."""

import pytest

from repro.core.experiments import run_fig13, run_fig15, run_fig17, run_machines
from repro.core.machines import (
    baseline_8way,
    clustered_dependence_8way,
    clustered_exec_steer_8way,
    clustered_random_8way,
    clustered_windows_8way,
    dependence_based_8way,
    fig17_machines,
)
from repro.core.speedup import clock_adjusted_speedup, speedup_summary
from repro.technology import TECH_018
from repro.uarch.config import SteeringPolicy
from repro.workloads import WORKLOAD_NAMES

#: Short runs keep the suite fast; shape assertions are tolerant.
N = 4_000


@pytest.fixture(scope="module")
def fig13():
    return run_fig13(max_instructions=N)


@pytest.fixture(scope="module")
def fig15():
    return run_fig15(max_instructions=N)


@pytest.fixture(scope="module")
def fig17():
    return run_fig17(max_instructions=N)


class TestMachineFactories:
    def test_baseline_matches_table3(self):
        config = baseline_8way()
        assert config.issue_width == 8
        assert config.clusters[0].window_size == 64
        assert config.steering is SteeringPolicy.NONE

    def test_dependence_based_is_8x8_fifos(self):
        config = dependence_based_8way()
        assert config.clusters[0].fifo_count == 8
        assert config.clusters[0].fifo_depth == 8
        assert config.steering is SteeringPolicy.FIFO_DISPATCH

    def test_clustered_dependence_is_2x4way(self):
        config = clustered_dependence_8way()
        assert len(config.clusters) == 2
        assert all(c.fu_count == 4 for c in config.clusters)
        assert all(c.fifo_count == 4 for c in config.clusters)
        assert config.inter_cluster_bypass_cycles == 2

    def test_window_variants(self):
        assert clustered_windows_8way().steering is SteeringPolicy.WINDOW_DISPATCH
        assert clustered_exec_steer_8way().steering is SteeringPolicy.EXEC_DRIVEN
        assert clustered_random_8way().steering is SteeringPolicy.RANDOM

    def test_fig17_has_five_machines(self):
        machines = fig17_machines()
        assert len(machines) == 5
        assert "1-cluster.1window" in machines
        assert "2-cluster.windows.random_steer" in machines

    def test_overrides_flow_through(self):
        config = baseline_8way(issue_width=4)
        assert config.issue_width == 4


class TestExperimentResult:
    def test_runs_all_workloads(self, fig13):
        assert fig13.workloads == list(WORKLOAD_NAMES)
        for machine in fig13.machine_names:
            for workload in WORKLOAD_NAMES:
                assert fig13.stats[machine][workload].committed == N

    def test_ipc_table_shape(self, fig13):
        table = fig13.ipc_table()
        assert set(table) == set(fig13.machine_names)
        for row in table.values():
            assert set(row) == set(WORKLOAD_NAMES)
            assert all(0 < v <= 8 for v in row.values())

    def test_format_table(self, fig13):
        text = fig13.format_table()
        assert "baseline" in text
        assert "compress" in text
        bypass_text = fig13.format_table("bypass")
        assert "%" in bypass_text
        with pytest.raises(ValueError, match="unknown metric"):
            fig13.format_table("latency")

    def test_custom_run(self):
        result = run_machines(
            {"only": baseline_8way()}, workloads=("li",), max_instructions=1_000
        )
        assert result.machine_names == ["only"]
        assert result.workloads == ["li"]


class TestFig13Shape:
    """Figure 13: dependence-based close to the window baseline."""

    def test_little_slowdown(self, fig13):
        relative = fig13.relative_ipc("dependence-based", "baseline")
        # Paper: within 5% for five of seven, max degradation 8%.
        close = sum(1 for v in relative.values() if v > 0.94)
        assert close >= 4
        assert min(relative.values()) > 0.80

    def test_mean_relative(self, fig13):
        assert fig13.mean_relative_ipc("dependence-based", "baseline") > 0.90


class TestFig15Shape:
    """Figure 15: clustered dependence-based with slow bypasses."""

    def test_moderate_degradation(self, fig15):
        relative = fig15.relative_ipc(
            "2-cluster dependence-based", "window-based 8-way"
        )
        # Paper: nearly as effective; worst cases lose ~9-12%.
        assert min(relative.values()) > 0.75
        assert max(relative.values()) <= 1.02

    def test_clustering_costs_something(self, fig13, fig15):
        # The clustered machine cannot beat the unclustered FIFO
        # machine on average (its bypasses are strictly slower).
        unclustered = fig13.mean_relative_ipc("dependence-based", "baseline")
        clustered = fig15.mean_relative_ipc(
            "2-cluster dependence-based", "window-based 8-way"
        )
        assert clustered <= unclustered + 0.02


class TestFig17Shape:
    """Figure 17: steering policy comparison."""

    REFERENCE = "1-cluster.1window"

    def test_random_is_worst(self, fig17):
        machines = [m for m in fig17.machine_names if m != self.REFERENCE]
        means = {
            m: fig17.mean_relative_ipc(m, self.REFERENCE) for m in machines
        }
        assert min(means, key=means.get) == "2-cluster.windows.random_steer"
        # Paper: random degrades 17-26%.
        assert means["2-cluster.windows.random_steer"] < 0.88

    def test_exec_steer_is_nearly_ideal(self, fig17):
        mean = fig17.mean_relative_ipc(
            "2-cluster.1window.exec_steer", self.REFERENCE
        )
        assert mean > 0.92  # paper: max degradation 6%

    def test_dispatch_steered_competitive(self, fig17):
        for machine in (
            "2-cluster.FIFOs.dispatch_steer",
            "2-cluster.windows.dispatch_steer",
        ):
            assert fig17.mean_relative_ipc(machine, self.REFERENCE) > 0.82

    def test_bypass_frequency_anticorrelates_with_ipc(self, fig17):
        # Across the four clustered machines, higher inter-cluster
        # communication must mean lower mean relative IPC.
        machines = [m for m in fig17.machine_names if m != self.REFERENCE]
        pairs = [
            (
                sum(fig17.bypass_frequency(m).values()),
                fig17.mean_relative_ipc(m, self.REFERENCE),
            )
            for m in machines
        ]
        most_traffic = max(pairs)
        least_traffic = min(pairs)
        assert most_traffic[1] < least_traffic[1]

    def test_random_bypass_frequency_high(self, fig17):
        freqs = fig17.bypass_frequency("2-cluster.windows.random_steer")
        # Paper: up to ~35%; random steering sends half of all
        # dependences across clusters.
        assert max(freqs.values()) > 0.25

    def test_ideal_machine_has_no_intercluster_traffic(self, fig17):
        freqs = fig17.bypass_frequency(self.REFERENCE)
        assert all(v == 0.0 for v in freqs.values())


class TestSpeedup:
    def test_clock_adjusted_speedup(self, fig15):
        summary = clock_adjusted_speedup(
            fig15,
            dependence_machine="2-cluster dependence-based",
            window_machine="window-based 8-way",
            tech=TECH_018,
        )
        # Section 5.5: clock ratio ~1.25, overall speedups 10-22%,
        # mean ~16%.  Our IPC gaps differ slightly, so allow a band.
        assert summary.clock_ratio == pytest.approx(1.25, abs=0.02)
        assert summary.mean > 1.02
        assert summary.min > 0.95
        assert summary.max < 1.35
        assert summary.min <= summary.mean <= summary.max

    def test_speedup_table_format(self, fig15):
        summary = clock_adjusted_speedup(
            fig15,
            dependence_machine="2-cluster dependence-based",
            window_machine="window-based 8-way",
        )
        text = summary.format_table()
        assert "clock ratio" in text
        assert "mean" in text

    def test_one_shot_summary(self):
        summary = speedup_summary(max_instructions=2_000)
        assert set(summary.per_workload) == set(WORKLOAD_NAMES)
