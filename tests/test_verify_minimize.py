"""Tests for the delta-debugging minimizer and reproducer emission."""

from repro.core.machines import MACHINE_REGISTRY
from repro.uarch.config import (  # noqa: F401  (eval namespace below)
    CacheConfig,
    ClusterConfig,
    MachineConfig,
    PredictorConfig,
    SelectionPolicy,
    SteeringPolicy,
)
from repro.verify.minimize import (
    _is_removable,
    config_source,
    ddmin_lines,
    instruction_count,
    minimize_case,
    shrink_config,
    write_reproducer,
)

SOURCE = """\
.text
main:
    li r1, 10
    li r2, 20
    addu r3, r1, r2
    subu r4, r2, r1
    xor r5, r3, r4
    halt
"""


def test_removable_classification():
    assert _is_removable("    addu r3, r1, r2")
    assert not _is_removable("main:")
    assert not _is_removable(".text")
    assert not _is_removable("    halt")
    assert not _is_removable("")


def test_ddmin_isolates_the_culprit_line():
    still_fails = lambda text: "xor r5" in text  # noqa: E731
    small = ddmin_lines(SOURCE, still_fails)
    assert "xor r5" in small
    # Every other instruction was removed; pinned lines remain.
    assert "addu r3" not in small and "li r1" not in small
    assert "main:" in small and small.rstrip().endswith("halt")
    assert instruction_count(small) == 2  # xor + halt


def test_ddmin_keeps_everything_when_all_lines_needed():
    lines_needed = ("li r1", "li r2", "addu r3")
    still_fails = lambda text: all(s in text for s in lines_needed)  # noqa: E731
    small = ddmin_lines(SOURCE, still_fails)
    for needed in lines_needed:
        assert needed in small


def test_shrink_config_moves_toward_baseline():
    # An 8-entry window lets max_in_flight shrink all the way to 8
    # (the in-flight limit must cover the buffer capacity).
    config = MACHINE_REGISTRY["baseline"](
        window_size=8, fetch_width=8, issue_width=8, max_in_flight=128
    )
    always = lambda text, candidate: True  # noqa: E731
    small = shrink_config(SOURCE, config, always)
    assert small.fetch_width == 1
    assert small.issue_width == 1
    assert small.max_in_flight == 8


def test_shrink_config_respects_predicate():
    config = MACHINE_REGISTRY["baseline"](issue_width=8)
    keep_wide = lambda text, candidate: candidate.issue_width == 8  # noqa: E731
    small = shrink_config(SOURCE, config, keep_wide)
    assert small.issue_width == 8


def test_shrink_config_drops_second_cluster_when_allowed():
    config = MACHINE_REGISTRY["clustered_windows"]()
    assert len(config.clusters) == 2
    always = lambda text, candidate: True  # noqa: E731
    small = shrink_config(SOURCE, config, always)
    assert len(small.clusters) == 1


def test_minimize_case_shrinks_both_halves():
    config = MACHINE_REGISTRY["baseline"](fetch_width=8)
    still_fails = lambda text, candidate: "xor r5" in text  # noqa: E731
    small_source, small_config = minimize_case(SOURCE, config, still_fails)
    assert instruction_count(small_source) == 2
    assert small_config.fetch_width == 1


def test_config_source_round_trips_every_shape():
    for shape, factory in sorted(MACHINE_REGISTRY.items()):
        config = factory()
        rebuilt = eval(config_source(config))  # noqa: S307 (test-only)
        assert rebuilt == config, shape


def test_write_reproducer_emits_standalone_test(tmp_path):
    config = MACHINE_REGISTRY["dependence"]()
    path = write_reproducer(
        tmp_path, case_id=4, seed=12345, summary="stats diverge",
        source=SOURCE, config=config, fifo_only=True,
    )
    assert path.name == "test_case_12345_4.py"
    text = path.read_text(encoding="utf-8")
    assert "stats diverge" in text
    assert "--case-seed 12345 --fifo-only" in text
    assert "def test_reproducer():" in text
    compile(text, str(path), "exec")  # syntactically valid python
