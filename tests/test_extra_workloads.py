"""Tests for the Mini-compiled extra workloads."""

import pytest

from repro.core.machines import baseline_8way, clustered_dependence_8way
from repro.isa import Emulator
from repro.uarch.pipeline import simulate
from repro.workloads import (
    EXTRA_WORKLOAD_NAMES,
    build_extra_program,
    get_extra_trace,
)


class TestExtraWorkloads:
    def test_names(self):
        assert EXTRA_WORKLOAD_NAMES == ("dct", "qsort")

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown extra workload"):
            build_extra_program("spice")

    @pytest.mark.parametrize("name", EXTRA_WORKLOAD_NAMES)
    def test_compiles_and_fills_cap(self, name):
        trace = get_extra_trace(name, 4_000)
        assert len(trace) == 4_000
        assert not trace.halted  # they loop forever

    @pytest.mark.parametrize("name", EXTRA_WORKLOAD_NAMES)
    def test_simulates_on_all_machines(self, name):
        trace = get_extra_trace(name, 3_000)
        for config in (baseline_8way(), clustered_dependence_8way()):
            stats = simulate(config, trace)
            assert stats.committed == 3_000
            assert 0 < stats.ipc <= 8

    def test_trace_cache(self):
        assert get_extra_trace("dct", 1_000) is get_extra_trace("dct", 1_000)

    def test_qsort_actually_sorts(self):
        # Run until the first quicksort round completes, then check
        # the array is sorted ascending in guest memory.
        program = build_extra_program("qsort")
        emulator = Emulator(program)
        base = program.data_labels["a_data"]
        previous_image = None
        for _round in range(400):
            emulator.run(max_instructions=1_000)
            emulator.halted = False  # keep stepping the endless loop
            words = [
                emulator.load(base + 4 * i, 4, signed=True) for i in range(128)
            ]
            if words == sorted(words) and any(words):
                break
            previous_image = words
        else:
            pytest.fail(f"array never observed sorted (last: {previous_image[:8]}...)")

    def test_dct_is_multiply_heavy(self):
        trace = get_extra_trace("dct", 5_000)
        from repro.isa import OpClass

        counts = trace.class_counts()
        assert counts.get(OpClass.IMUL, 0) / len(trace) > 0.03
