"""Tests for repro.circuits: RAM, CAM, arbiter, and datapath geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.circuits import (
    ArbiterTree,
    BypassDatapath,
    CamGeometry,
    RamGeometry,
    bypass_path_count,
    rename_map_table_geometry,
    selection_tree,
    wakeup_array_geometry,
)


class TestRamGeometry:
    def test_rename_port_counts(self):
        geometry = rename_map_table_geometry(4)
        # Two source reads and one destination write per instruction.
        assert geometry.read_ports == 8
        assert geometry.write_ports == 4
        assert geometry.ports == 12

    def test_rows_are_logical_registers(self):
        assert rename_map_table_geometry(4, logical_registers=32).rows == 32

    def test_entry_width_is_designator_bits(self):
        # 120 physical registers need a 7-bit designator.
        assert rename_map_table_geometry(4, physical_registers=120).bits == 7
        assert rename_map_table_geometry(4, physical_registers=128).bits == 7
        assert rename_map_table_geometry(4, physical_registers=129).bits == 8

    def test_cells_grow_with_ports(self):
        narrow = rename_map_table_geometry(2)
        wide = rename_map_table_geometry(8)
        assert wide.cell_width_lambda > narrow.cell_width_lambda
        assert wide.cell_height_lambda > narrow.cell_height_lambda

    def test_bitlines_longer_than_wordlines(self):
        # 32 rows of cells vs. a 7-bit-wide entry: the paper notes the
        # bitlines are longer, which is why their delay grows faster.
        geometry = rename_map_table_geometry(4)
        assert geometry.bitline_length_lambda > geometry.wordline_length_lambda

    def test_decoder_fanin(self):
        assert rename_map_table_geometry(4, logical_registers=32).decoder_fanin == 5

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            rename_map_table_geometry(0)
        with pytest.raises(ValueError):
            rename_map_table_geometry(4, logical_registers=1)
        with pytest.raises(ValueError):
            RamGeometry(rows=0, bits=8, read_ports=1, write_ports=1)

    @given(st.integers(min_value=1, max_value=16))
    def test_wire_lengths_monotone_in_issue_width(self, issue_width):
        a = rename_map_table_geometry(issue_width)
        b = rename_map_table_geometry(issue_width + 1)
        assert b.wordline_length_lambda > a.wordline_length_lambda
        assert b.bitline_length_lambda > a.bitline_length_lambda


class TestCamGeometry:
    def test_comparators_per_entry(self):
        # 2 operand tags x IW result tags.
        assert wakeup_array_geometry(8, 64).comparators_per_entry == 16

    def test_total_comparators(self):
        geometry = wakeup_array_geometry(4, 32)
        assert geometry.total_comparators == 8 * 32

    def test_tag_bits_from_physical_registers(self):
        assert wakeup_array_geometry(4, 32, physical_registers=120).tag_bits == 7
        assert wakeup_array_geometry(4, 32, physical_registers=80).tag_bits == 7

    def test_tagline_spans_window(self):
        small = wakeup_array_geometry(4, 16)
        large = wakeup_array_geometry(4, 64)
        assert large.tagline_length_lambda == pytest.approx(
            4 * small.tagline_length_lambda
        )

    def test_entries_taller_with_issue_width(self):
        assert (
            wakeup_array_geometry(8, 32).entry_height_lambda
            > wakeup_array_geometry(2, 32).entry_height_lambda
        )

    def test_matchline_grows_with_issue_width(self):
        assert (
            wakeup_array_geometry(8, 32).matchline_length_lambda
            > wakeup_array_geometry(2, 32).matchline_length_lambda
        )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CamGeometry(window_size=0, issue_width=4)
        with pytest.raises(ValueError):
            CamGeometry(window_size=32, issue_width=0)
        with pytest.raises(ValueError):
            CamGeometry(window_size=32, issue_width=4, tag_bits=0)


class TestArbiterTree:
    @pytest.mark.parametrize(
        "window,levels",
        [(1, 1), (4, 1), (5, 2), (16, 2), (17, 3), (32, 3), (64, 3), (65, 4), (128, 4)],
    )
    def test_levels(self, window, levels):
        assert selection_tree(window).levels == levels

    def test_same_depth_32_and_64(self):
        # This is why the same selection delay applies to both Table 2
        # design points (32- and 64-entry windows).
        assert selection_tree(32).levels == selection_tree(64).levels

    def test_cell_count_64(self):
        # 16 leaf cells + 4 + 1 root.
        assert selection_tree(64).cell_count == 21

    def test_cell_count_one_entry(self):
        assert selection_tree(1).cell_count == 1

    def test_hops_equal_levels(self):
        tree = selection_tree(64)
        assert tree.request_hops() == tree.levels
        assert tree.grant_hops() == tree.levels

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            ArbiterTree(window_size=0)

    @given(st.integers(min_value=1, max_value=4096))
    def test_levels_cover_window(self, window):
        tree = selection_tree(window)
        assert 4**tree.levels >= window


class TestBypassDatapath:
    def test_table1_wire_lengths(self):
        # Exact reproduction of Table 1's wire lengths.
        assert BypassDatapath(4).result_wire_length_lambda == pytest.approx(20500.0)
        assert BypassDatapath(8).result_wire_length_lambda == pytest.approx(49000.0)

    def test_path_count_quadratic(self):
        # 2 * IW^2 * S bypass paths.
        assert bypass_path_count(4, 1) == 32
        assert bypass_path_count(8, 1) == 128
        assert bypass_path_count(8, 3) == 384

    def test_fu_height_grows_with_issue_width(self):
        assert BypassDatapath(8).fu_height_lambda > BypassDatapath(4).fu_height_lambda

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BypassDatapath(0)
        with pytest.raises(ValueError):
            BypassDatapath(4, pipe_stages_after_result=0)

    @given(st.integers(min_value=1, max_value=32))
    def test_wire_length_superlinear(self, issue_width):
        narrow = BypassDatapath(issue_width).result_wire_length_lambda
        wide = BypassDatapath(2 * issue_width).result_wire_length_lambda
        assert wide > 2 * narrow
