"""Tests for the Section 4.5/5.3 pipelining analysis."""

import pytest
from hypothesis import given, strategies as st

from repro.delay.pipelining import (
    STAGE_OVERHEAD_FRACTION,
    conventional_plan,
    dependence_based_plan,
    pipelining_plan,
    stages_required,
)
from repro.technology import TECH_018, TECHNOLOGIES


class TestStagesRequired:
    def test_fits_in_one_stage(self):
        assert stages_required(100.0, 500.0) == 1

    def test_boundary_with_overhead(self):
        usable = 500.0 * (1 - STAGE_OVERHEAD_FRACTION)
        assert stages_required(usable, 500.0) == 1
        assert stages_required(usable + 0.1, 500.0) == 2

    def test_deep_pipelining(self):
        assert stages_required(2000.0, 500.0) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            stages_required(0.0, 500.0)
        with pytest.raises(ValueError):
            stages_required(100.0, 0.0)

    @given(
        st.floats(min_value=1.0, max_value=1e5),
        st.floats(min_value=10.0, max_value=1e4),
    )
    def test_coverage_property(self, delay, clock):
        stages = stages_required(delay, clock)
        usable = clock * (1 - STAGE_OVERHEAD_FRACTION)
        # The chosen depth covers the delay; one fewer would not.
        assert stages * usable >= delay - 1e-6
        if stages > 1:
            assert (stages - 1) * usable < delay


class TestPlans:
    def test_dependence_clock_needs_deeper_pipes(self):
        for tech in TECHNOLOGIES:
            conventional = conventional_plan(tech)
            dependence = dependence_based_plan(tech)
            assert dependence.clock_ps < conventional.clock_ps
            assert dependence.regfile_stages >= conventional.regfile_stages

    def test_rename_fits_at_018(self):
        # Section 5.3: rename (427.9 ps at 8-way) fits a 522 ps clock.
        plan = dependence_based_plan(TECH_018)
        assert plan.rename_stages == 1

    def test_plan_formatting(self):
        text = dependence_based_plan(TECH_018).format_report()
        assert "register file" in text
        assert "stage(s)" in text

    def test_custom_clock(self):
        plan = pipelining_plan(TECH_018, clock_ps=300.0)
        assert plan.rename_stages >= 2  # 8-way rename is 427.9 ps
