"""Tests for the architectural oracle and differential comparators.

The shadow interpreter is an *independent* re-implementation of the
ISA semantics; these tests check it agrees with the emulator on real
generated programs and that each comparator actually reports planted
disagreements (an oracle that can't fail is no oracle).
"""

import random

import pytest

from repro.isa.assembler import assemble
from repro.isa.emulator import Emulator
from repro.uarch.pipeline import PipelineSimulator
from repro.verify.generator import ProgramGenConfig, generate_source
from repro.verify.oracle import (
    check_timing_invariants,
    compare_architectural,
    compare_stats,
    shadow_run,
)
from repro.verify.sampler import sample_program
from tests.machines import ALL_MACHINES

MAX_INSTRUCTIONS = 5_000


def _run(seed: int):
    config = sample_program(random.Random(seed))
    program = assemble(generate_source(config))
    emulator = Emulator(program)
    trace = emulator.run(MAX_INSTRUCTIONS)
    return program, emulator, trace


@pytest.mark.parametrize("seed", range(8))
def test_shadow_agrees_with_emulator(seed):
    _, emulator, trace = _run(seed)
    failures = compare_architectural(emulator, trace, MAX_INSTRUCTIONS)
    assert failures == []


def test_shadow_committed_stream_matches_length():
    program, _, trace = _run(0)
    records, state = shadow_run(program, MAX_INSTRUCTIONS)
    assert state.halted
    assert len(records) == len(trace)


def test_register_tampering_is_reported():
    _, emulator, trace = _run(1)
    emulator.int_regs[5] ^= 0x1234  # plant an architectural divergence
    failures = compare_architectural(emulator, trace, MAX_INSTRUCTIONS)
    assert any("register" in line for line in failures)


def test_memory_tampering_is_reported():
    _, emulator, trace = _run(2)
    emulator.memory[0x1000_0000] = (
        emulator.memory.get(0x1000_0000, 0) ^ 0xFF
    )
    failures = compare_architectural(emulator, trace, MAX_INSTRUCTIONS)
    assert failures, "memory image divergence went unreported"


def test_compare_stats_equal_and_unequal():
    payload = {"cycles": 10, "committed": 8, "stall_cycles": {"none": 2}}
    assert compare_stats(payload, dict(payload)) == []
    tampered = dict(payload, cycles=11)
    failures = compare_stats(payload, tampered)
    assert failures
    assert any("cycles" in line for line in failures)


def test_timing_invariants_pass_on_every_machine_shape():
    _, _, trace = _run(3)
    trace.name = "oracle-test"
    for shape, factory in sorted(ALL_MACHINES.items()):
        config = factory()
        simulator = PipelineSimulator(config, trace)
        simulator.run()
        failures = check_timing_invariants(simulator, config, trace)
        assert failures == [], f"{shape}: {failures[:2]}"
