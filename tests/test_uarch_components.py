"""Tests for the simulator's component models: predictor, cache,
FIFOs, steering, dependence analysis, and configuration validation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import assemble, run_to_trace
from repro.uarch.cache import SetAssociativeCache
from repro.uarch.config import (
    CacheConfig,
    ClusterConfig,
    MachineConfig,
    PredictorConfig,
    SteeringPolicy,
)
from repro.uarch.depend import NO_PRODUCER, dependence_info
from repro.uarch.fifos import FifoSet, IssueFifo
from repro.uarch.predictor import GshareBranchPredictor
from repro.uarch.steering import (
    FifoDispatchSteering,
    OutstandingOperand,
    RandomSteering,
    SteeringView,
)


class TestPredictor:
    def test_learns_always_taken(self):
        predictor = GshareBranchPredictor()
        for _ in range(100):
            predictor.predict_and_update(pc=10, taken=True)
        assert predictor.predict(10)
        assert predictor.accuracy > 0.9

    def test_learns_alternating_pattern(self):
        # gshare's history register captures short periodic patterns.
        predictor = GshareBranchPredictor()
        outcomes = [True, False] * 300
        hits = sum(
            predictor.predict_and_update(pc=20, taken=t) == t for t in outcomes
        )
        assert hits / len(outcomes) > 0.8

    def test_random_stream_is_hard(self):
        import random

        rng = random.Random(3)
        predictor = GshareBranchPredictor()
        outcomes = [rng.random() < 0.5 for _ in range(2000)]
        hits = sum(
            predictor.predict_and_update(pc=30, taken=t) == t for t in outcomes
        )
        assert hits / len(outcomes) < 0.65

    def test_counters_saturate(self):
        predictor = GshareBranchPredictor()
        for _ in range(10):
            predictor.update(0, True)
        # One not-taken must not flip a saturated counter.
        predictor._history = 0
        predictor.update(0, False)
        predictor._history = 0
        assert predictor.predict(0)

    def test_accuracy_zero_without_lookups(self):
        assert GshareBranchPredictor().accuracy == 0.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PredictorConfig(counters=1000)  # not a power of two
        with pytest.raises(ValueError):
            PredictorConfig(history_bits=-1)


class TestCache:
    def test_first_access_misses_then_hits(self):
        cache = SetAssociativeCache()
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.access(0x1010)  # same 32-byte line

    def test_line_granularity(self):
        cache = SetAssociativeCache()
        cache.access(0x1000)
        assert not cache.access(0x1020)  # next line

    def test_lru_eviction(self):
        config = CacheConfig(size_bytes=4 * 32, associativity=2, line_bytes=32)
        cache = SetAssociativeCache(config)  # 2 sets x 2 ways
        sets = config.sets
        a, b, c = 0, sets * 32, 2 * sets * 32  # same set, three lines
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a is MRU
        cache.access(c)  # evicts b (LRU)
        assert cache.probe(a)
        assert not cache.probe(b)
        assert cache.probe(c)

    def test_load_latency_hit_and_miss(self):
        cache = SetAssociativeCache()
        assert cache.load_latency(0x40) == cache.config.miss_cycles
        assert cache.load_latency(0x40) == cache.config.hit_cycles

    def test_probe_does_not_touch_stats(self):
        cache = SetAssociativeCache()
        cache.probe(0x123)
        assert cache.accesses == 0

    def test_miss_rate(self):
        cache = SetAssociativeCache()
        assert cache.miss_rate == 0.0
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == pytest.approx(0.5)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache().access(-4)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(line_bytes=24)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0)
        with pytest.raises(ValueError):
            CacheConfig(hit_cycles=3, miss_cycles=2)

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), max_size=200))
    def test_occupancy_never_exceeds_ways(self, addresses):
        config = CacheConfig(size_bytes=1024, associativity=2, line_bytes=32)
        cache = SetAssociativeCache(config)
        for address in addresses:
            cache.access(address)
        for ways in cache._sets:
            assert len(ways) <= config.associativity


class TestFifos:
    def test_push_pop_order(self):
        fifo = IssueFifo(4)
        for seq in (3, 5, 9):
            fifo.push(seq)
        assert fifo.head == 3
        assert fifo.tail == 9
        assert fifo.pop_head() == 3
        assert fifo.head == 5

    def test_full_rejects_push(self):
        fifo = IssueFifo(1)
        fifo.push(1)
        assert fifo.is_full
        with pytest.raises(OverflowError):
            fifo.push(2)

    def test_remove_from_middle(self):
        fifo = IssueFifo(4)
        for seq in (1, 2, 3):
            fifo.push(seq)
        fifo.remove(2)
        assert fifo.head == 1
        assert fifo.tail == 3
        with pytest.raises(ValueError):
            fifo.remove(99)

    def test_contains_and_len(self):
        fifo = IssueFifo(4)
        fifo.push(7)
        assert 7 in fifo
        assert len(fifo) == 1

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            IssueFifo(0)

    def test_fifo_set_free_pool(self):
        fifo_set = FifoSet(count=2, depth=2)
        assert fifo_set.empty_fifo_index() == 0
        fifo_set.fifos[0].push(1)
        assert fifo_set.empty_fifo_index() == 1
        fifo_set.fifos[1].push(2)
        assert fifo_set.empty_fifo_index() is None
        assert fifo_set.occupancy == 2
        assert list(fifo_set.heads()) == [(0, 1), (1, 2)]

    def test_fifo_set_validation(self):
        with pytest.raises(ValueError):
            FifoSet(count=0, depth=4)


class TestFifoSteeringHeuristic:
    """Section 5.1 rules, checked case by case."""

    def make_view(self, count=4, depth=2):
        return SteeringView([FifoSet(count=count, depth=depth)])

    def test_no_outstanding_operands_gets_new_fifo(self):
        steering = FifoDispatchSteering(1)
        view = self.make_view()
        placement = steering.place(view, [])
        assert placement is not None
        assert view.fifo_sets[0].fifos[placement.fifo].is_empty

    def test_single_operand_behind_tail(self):
        steering = FifoDispatchSteering(1)
        view = self.make_view()
        view.fifo_sets[0].fifos[1].push(10)
        operand = OutstandingOperand(producer=10, cluster=0, fifo=1, is_tail=True)
        placement = steering.place(view, [operand])
        assert placement == type(placement)(cluster=0, fifo=1)

    def test_single_operand_not_tail_gets_new_fifo(self):
        steering = FifoDispatchSteering(1)
        view = self.make_view()
        view.fifo_sets[0].fifos[1].push(10)
        view.fifo_sets[0].fifos[1].push(11)  # something behind producer
        operand = OutstandingOperand(producer=10, cluster=0, fifo=1, is_tail=False)
        placement = steering.place(view, [operand])
        assert placement.fifo != 1

    def test_full_fifo_is_unsuitable(self):
        steering = FifoDispatchSteering(1)
        view = self.make_view(depth=1)
        view.fifo_sets[0].fifos[1].push(10)
        operand = OutstandingOperand(producer=10, cluster=0, fifo=1, is_tail=True)
        placement = steering.place(view, [operand])
        assert placement.fifo != 1

    def test_two_operands_prefers_left(self):
        steering = FifoDispatchSteering(1)
        view = self.make_view()
        view.fifo_sets[0].fifos[0].push(10)
        view.fifo_sets[0].fifos[1].push(11)
        left = OutstandingOperand(producer=10, cluster=0, fifo=0, is_tail=True)
        right = OutstandingOperand(producer=11, cluster=0, fifo=1, is_tail=True)
        assert steering.place(view, [left, right]).fifo == 0

    def test_two_operands_falls_back_to_right(self):
        steering = FifoDispatchSteering(1)
        view = self.make_view()
        view.fifo_sets[0].fifos[0].push(10)
        view.fifo_sets[0].fifos[0].push(12)  # left producer buried
        view.fifo_sets[0].fifos[1].push(11)
        left = OutstandingOperand(producer=10, cluster=0, fifo=0, is_tail=False)
        right = OutstandingOperand(producer=11, cluster=0, fifo=1, is_tail=True)
        assert steering.place(view, [left, right]).fifo == 1

    def test_stall_when_no_empty_fifo(self):
        steering = FifoDispatchSteering(1)
        view = self.make_view(count=2, depth=1)
        view.fifo_sets[0].fifos[0].push(1)
        view.fifo_sets[0].fifos[1].push(2)
        assert steering.place(view, []) is None

    def test_two_cluster_free_lists_stay_current(self):
        # Section 5.5: consecutive new-FIFO requests go to the same
        # cluster until its free list is exhausted.
        steering = FifoDispatchSteering(2)
        sets = [FifoSet(count=2, depth=1), FifoSet(count=2, depth=1)]
        view = SteeringView(sets)
        first = steering.place(view, [])
        sets[first.cluster].fifos[first.fifo].push(1)
        second = steering.place(view, [])
        assert second.cluster == first.cluster
        sets[second.cluster].fifos[second.fifo].push(2)
        third = steering.place(view, [])
        assert third.cluster != first.cluster

    def test_window_room_respected(self):
        steering = FifoDispatchSteering(2)
        sets = [FifoSet(count=2, depth=4), FifoSet(count=2, depth=4)]
        view = SteeringView(sets, window_room=[0, 3])
        placement = steering.place(view, [])
        assert placement.cluster == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            FifoDispatchSteering(0)


class TestRandomSteering:
    def test_deterministic_per_seed(self):
        sets = [FifoSet(2, 4), FifoSet(2, 4)]
        view = SteeringView(sets, window_room=[5, 5])
        a = RandomSteering(2, seed=9)
        b = RandomSteering(2, seed=9)
        choices_a = [a.place(view, []).cluster for _ in range(50)]
        choices_b = [b.place(view, []).cluster for _ in range(50)]
        assert choices_a == choices_b
        assert set(choices_a) == {0, 1}

    def test_falls_back_when_full(self):
        sets = [FifoSet(2, 4), FifoSet(2, 4)]
        view = SteeringView(sets, window_room=[0, 1])
        steering = RandomSteering(2, seed=1)
        for _ in range(20):
            assert steering.place(view, []).cluster == 1

    def test_stalls_when_both_full(self):
        view = SteeringView([FifoSet(2, 4)] * 2, window_room=[0, 0])
        assert RandomSteering(2).place(view, []) is None

    def test_reset_restarts_sequence(self):
        view = SteeringView([FifoSet(2, 4)] * 2, window_room=[9, 9])
        steering = RandomSteering(2, seed=4)
        first = [steering.place(view, []).cluster for _ in range(20)]
        steering.reset()
        second = [steering.place(view, []).cluster for _ in range(20)]
        assert first == second


class TestDependenceInfo:
    def trace_of(self, source):
        return run_to_trace(assemble(source))

    def test_producers_found(self):
        trace = self.trace_of("li r1, 1\naddu r2, r1, r1\nhalt\n")
        info = dependence_info(trace)
        assert info.producers[1] == (0, 0)
        assert info.consumers[0] == [1, 1]

    def test_no_producer_for_initial_values(self):
        trace = self.trace_of("addu r2, r5, r6\nhalt\n")
        info = dependence_info(trace)
        assert info.producers[0] == (NO_PRODUCER, NO_PRODUCER)

    def test_latest_writer_wins(self):
        trace = self.trace_of("li r1, 1\nli r1, 2\naddu r2, r1, r1\nhalt\n")
        info = dependence_info(trace)
        assert info.producers[2] == (1, 1)

    def test_cached_on_trace(self):
        trace = self.trace_of("li r1, 1\nhalt\n")
        assert dependence_info(trace) is dependence_info(trace)

    def test_producers_precede_consumers(self):
        from repro.workloads import get_trace

        trace = get_trace("gcc", 2_000)
        info = dependence_info(trace)
        for seq, producers in enumerate(info.producers):
            for producer in producers:
                assert producer == NO_PRODUCER or producer < seq


class TestMachineConfigValidation:
    def test_defaults_are_table3(self):
        config = MachineConfig()
        assert config.fetch_width == 8
        assert config.retire_width == 16
        assert config.max_in_flight == 128
        assert config.int_phys_regs == 120
        assert config.clusters[0].window_size == 64
        assert config.cache.ports == 4

    def test_fifo_machines_need_steering(self):
        with pytest.raises(ValueError, match="steering"):
            MachineConfig(clusters=(ClusterConfig(fifo_count=8),))

    def test_two_clusters_need_steering(self):
        with pytest.raises(ValueError, match="steering"):
            MachineConfig(clusters=(ClusterConfig(), ClusterConfig()))

    def test_fifo_dispatch_requires_fifo_clusters(self):
        with pytest.raises(ValueError, match="FIFO_DISPATCH"):
            MachineConfig(
                clusters=(ClusterConfig(),),
                steering=SteeringPolicy.FIFO_DISPATCH,
            )

    def test_window_policies_reject_fifo_clusters(self):
        with pytest.raises(ValueError, match="window clusters"):
            MachineConfig(
                clusters=(ClusterConfig(fifo_count=4), ClusterConfig(fifo_count=4)),
                steering=SteeringPolicy.RANDOM,
            )

    def test_exec_driven_needs_two_clusters(self):
        with pytest.raises(ValueError, match="two clusters"):
            MachineConfig(
                clusters=(ClusterConfig(),),
                steering=SteeringPolicy.EXEC_DRIVEN,
            )

    def test_at_most_two_clusters(self):
        with pytest.raises(ValueError, match="two clusters"):
            MachineConfig(
                clusters=(ClusterConfig(),) * 3,
                steering=SteeringPolicy.RANDOM,
            )

    def test_cluster_capacity(self):
        assert ClusterConfig(fifo_count=8, fifo_depth=8).capacity == 64
        assert ClusterConfig(window_size=32).capacity == 32

    def test_extra_bypass_latency(self):
        config = MachineConfig(
            clusters=(ClusterConfig(fu_count=4),) * 2,
            steering=SteeringPolicy.RANDOM,
            inter_cluster_bypass_cycles=2,
        )
        assert config.extra_bypass_latency == 1
        assert config.total_fu_count == 8
        assert config.total_capacity == 128


class TestGeometryValidation:
    """Cross-field geometry checks: the fuzzer's sampler (and every
    other caller) must be unable to build an impossible machine."""

    def test_fifo_cluster_normalises_default_window_size(self):
        cluster = ClusterConfig(fifo_count=4, fifo_depth=8)
        assert cluster.window_size == 32  # single-valued geometry
        assert cluster.capacity == 32

    def test_fifo_cluster_accepts_explicit_consistent_window_size(self):
        cluster = ClusterConfig(fifo_count=4, fifo_depth=8, window_size=32)
        assert cluster.window_size == 32

    def test_fifo_cluster_rejects_inconsistent_window_size(self):
        with pytest.raises(ValueError, match="inconsistent with the FIFO"):
            ClusterConfig(fifo_count=4, fifo_depth=8, window_size=48)

    def test_fifo_geometry_error_names_the_numbers(self):
        with pytest.raises(ValueError, match=r"4x8 cluster holds 32"):
            ClusterConfig(fifo_count=4, fifo_depth=8, window_size=100)

    def test_in_flight_limit_must_cover_window_capacity(self):
        with pytest.raises(ValueError, match="could never fill"):
            MachineConfig(max_in_flight=32)  # default window is 64

    def test_in_flight_limit_must_cover_total_fifo_capacity(self):
        with pytest.raises(ValueError, match="could never fill"):
            MachineConfig(
                clusters=(ClusterConfig(fifo_count=4, fifo_depth=8),) * 2,
                steering=SteeringPolicy.FIFO_DISPATCH,
                max_in_flight=32,  # two 4x8 clusters hold 64
            )

    def test_in_flight_limit_equal_to_capacity_is_allowed(self):
        config = MachineConfig(max_in_flight=64)
        assert config.max_in_flight == config.total_capacity == 64

    def test_cluster_issue_widths_derived_from_fu_count(self):
        config = MachineConfig(
            issue_width=8,
            clusters=(ClusterConfig(fu_count=4), ClusterConfig(fu_count=4)),
            steering=SteeringPolicy.RANDOM,
        )
        assert config.cluster_issue_widths == (4, 4)
        assert MachineConfig().cluster_issue_widths == (8,)

    def test_reservation_tag_count_is_the_in_flight_limit(self):
        assert MachineConfig().reservation_tag_count == 128
        assert MachineConfig(max_in_flight=64).reservation_tag_count == 64

    def test_sampler_cannot_build_impossible_machines(self):
        import random

        from repro.verify.sampler import sample_machine

        rng = random.Random(7)
        for _ in range(200):
            _shape, config = sample_machine(rng)
            assert config.max_in_flight >= config.total_capacity
