"""Behavioural tests of the pipeline timing model.

Each test constructs a situation with a known timing consequence
(dependence chains, branch mispredictions, cache misses, cluster
bypass latency, ...) and checks the simulator exhibits it.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.machines import (
    baseline_8way,
    clustered_dependence_8way,
    clustered_exec_steer_8way,
    clustered_random_8way,
    clustered_windows_8way,
    dependence_based_8way,
)
from repro.isa import assemble, run_to_trace
from repro.uarch.config import CacheConfig, ClusterConfig, MachineConfig, SteeringPolicy
from repro.uarch.pipeline import PipelineSimulator, simulate
from repro.workloads import SyntheticConfig, get_trace, synthetic_trace


def trace_of(source, cap=100_000):
    return run_to_trace(assemble(source), max_instructions=cap)


def serial_chain_trace(length=200):
    """A fully serial addu chain (each inst depends on the previous)."""
    body = "\n".join("addu r1, r1, r2" for _ in range(length))
    return trace_of(f"li r1, 0\nli r2, 1\n{body}\nhalt\n")


def independent_trace(length=200):
    """Loop-free straight-line code with no register dependences."""
    lines = [f"li r{3 + (i % 20)}, {i}" for i in range(length)]
    return trace_of("\n".join(lines) + "\nhalt\n")


class TestFundamentalTiming:
    def test_serial_chain_limits_ipc_to_one(self):
        trace = serial_chain_trace(300)
        stats = simulate(baseline_8way(), trace)
        assert stats.ipc < 1.2
        # ... but not much below one either: back-to-back dependent
        # issue must work (wakeup+select is atomic, Section 4.5).
        assert stats.ipc > 0.85

    def test_independent_code_reaches_high_ipc(self):
        stats = simulate(baseline_8way(), independent_trace(400))
        assert stats.ipc > 5.0

    def test_ipc_never_exceeds_issue_width(self):
        for config in (baseline_8way(), dependence_based_8way()):
            stats = simulate(config, independent_trace(400))
            assert stats.ipc <= config.issue_width

    def test_everything_commits(self):
        trace = get_trace("compress", 3_000)
        stats = simulate(baseline_8way(), trace)
        assert stats.committed == len(trace)
        assert stats.fetched >= stats.committed

    def test_deterministic(self):
        trace = get_trace("gcc", 3_000)
        a = simulate(baseline_8way(), trace)
        b = simulate(baseline_8way(), trace)
        assert a.cycles == b.cycles
        assert a.mispredicts == b.mispredicts

    def test_issue_width_one(self):
        config = baseline_8way(issue_width=1)
        stats = simulate(config, independent_trace(200))
        assert stats.ipc <= 1.0

    def test_narrow_fetch_bounds_ipc(self):
        config = baseline_8way(fetch_width=2)
        stats = simulate(config, independent_trace(400))
        assert stats.ipc <= 2.05

    def test_empty_trace(self):
        stats = simulate(baseline_8way(), trace_of("halt\n"))
        assert stats.committed == 0
        assert stats.ipc == 0.0

    def test_progress_guard_raises(self):
        simulator = PipelineSimulator(baseline_8way(), serial_chain_trace(100))
        with pytest.raises(RuntimeError, match="forward progress"):
            simulator.run(max_cycles=3)

    def test_issue_histogram_covers_cycles(self):
        trace = get_trace("perl", 2_000)
        stats = simulate(baseline_8way(), trace)
        assert sum(stats.issue_histogram.values()) == stats.cycles
        issued = sum(k * v for k, v in stats.issue_histogram.items())
        assert issued == len(trace)


class TestBranches:
    def test_predictable_loop_is_cheap(self):
        # A counted loop's branch is all-taken except the exit.
        source = """
            main: li r1, 200
            loop: addiu r1, r1, -1
            bgtz r1, loop
            halt
        """
        stats = simulate(baseline_8way(), trace_of(source))
        assert stats.branch_accuracy > 0.9

    def test_mispredicts_cost_cycles(self):
        # Same instruction mix; one trace has predictable branches,
        # the other coin-flip branches.
        easy = synthetic_trace(
            SyntheticConfig(length=4_000, branch_taken_probability=1.0, seed=5)
        )
        hard = synthetic_trace(
            SyntheticConfig(length=4_000, branch_taken_probability=0.5, seed=5)
        )
        config = baseline_8way()
        easy_stats = simulate(config, easy)
        hard_stats = simulate(config, hard)
        assert hard_stats.mispredicts > easy_stats.mispredicts
        assert hard_stats.ipc < easy_stats.ipc

    def test_unconditional_jumps_never_mispredict(self):
        source = """
            main: li r1, 300
            loop: addiu r1, r1, -1
            b cont
            cont: bgtz r1, loop
            halt
        """
        stats = simulate(baseline_8way(), trace_of(source))
        # Mispredicts can only come from the conditional branch.
        assert stats.mispredicts <= stats.branch_lookups
        assert stats.branch_lookups == 300


class TestMemorySystem:
    def test_hot_line_hits(self):
        source = """
            .data
            x: .word 1
            .text
            main: la r1, x
            li r2, 200
            loop: lw r3, 0(r1)
            addiu r2, r2, -1
            bgtz r2, loop
            halt
        """
        stats = simulate(baseline_8way(), trace_of(source))
        assert stats.cache_miss_rate < 0.05

    def test_streaming_misses_slow_execution(self):
        def strided(stride):
            return trace_of(f"""
                .data
                buf: .space 65536
                .text
                main: la r1, buf
                li r2, 400
                loop: lw r3, 0(r1)
                addiu r1, r1, {stride}
                addiu r2, r2, -1
                bgtz r2, loop
                halt
            """)

        config = baseline_8way()
        dense = simulate(config, strided(4))
        sparse = simulate(config, strided(64))
        assert sparse.cache_miss_rate > dense.cache_miss_rate
        assert sparse.ipc < dense.ipc

    def test_load_waits_for_prior_store_addresses(self):
        # The store's address depends on a long chain; the dependent
        # load (to a different address!) must still wait for it
        # (Table 3: loads execute when all prior store addresses are
        # known).
        chain = "\n".join("addu r1, r1, r2" for _ in range(30))
        source = f"""
            .data
            a: .word 5
            b: .space 256
            .text
            main: li r1, 0
            li r2, 4
            la r4, a
            {chain}
            la r3, b
            addu r3, r3, r1
            sw r2, 0(r3)
            lw r5, 0(r4)
            halt
        """
        trace = trace_of(source)
        simulator = PipelineSimulator(baseline_8way(), trace)
        simulator.run()
        store_seq = next(i.seq for i in trace if i.is_store)
        load_seq = next(i.seq for i in trace if i.is_load and i.seq > store_seq)
        assert simulator.issue_cycle[load_seq] >= simulator.issue_cycle[store_seq]

    def test_cache_port_limit(self):
        # More loads per cycle than ports must spread over cycles.
        lines = []
        for i in range(160):
            lines.append(f"lw r{3 + (i % 8)}, {4 * (i % 8)}(r1)")
        source = ".data\nbuf: .space 64\n.text\nmain: la r1, buf\n" + "\n".join(lines) + "\nhalt\n"
        few_ports = MachineConfig(
            name="one-port",
            cache=CacheConfig(ports=1),
        )
        many_ports = baseline_8way()
        slow = simulate(few_ports, trace_of(source))
        fast = simulate(many_ports, trace_of(source))
        assert slow.cycles > fast.cycles
        assert slow.ipc <= 1.05  # one memory op per cycle

    def test_store_forwarding_counted(self):
        source = """
            .data
            x: .space 8
            .text
            main: la r1, x
            li r2, 9
            sw r2, 0(r1)
            lw r3, 0(r1)
            halt
        """
        stats = simulate(baseline_8way(), trace_of(source))
        assert stats.store_forwards >= 1


class TestWindowAndFifos:
    def test_small_window_hurts_parallel_code(self):
        big = baseline_8way(window_size=64)
        small = baseline_8way(window_size=4)
        trace = get_trace("go", 3_000)
        assert simulate(small, trace).ipc < simulate(big, trace).ipc

    def test_fifo_issue_is_in_order_within_fifo(self):
        trace = get_trace("compress", 3_000)
        config = dependence_based_8way()
        simulator = PipelineSimulator(config, trace)
        # Track issue order per FIFO by instrumenting fifo_of at issue.
        issue_order: dict[tuple[int, int], list[int]] = {}
        original = simulator._issue_one

        def recording_issue(seq, cluster, fifo_index):
            if fifo_index is not None:
                issue_order.setdefault((cluster, fifo_index), []).append(seq)
            original(seq, cluster, fifo_index)

        simulator._issue_one = recording_issue
        simulator.run()
        # Instructions must leave each FIFO in increasing seq order
        # *while resident together*; across refills the sequence can
        # restart, so check monotone runs via issue cycles instead:
        for seqs in issue_order.values():
            cycles = [simulator.issue_cycle[s] for s in seqs]
            # a FIFO never issues two instructions in one cycle
            assert all(b >= a for a, b in zip(cycles, cycles[1:]))

    def test_dependence_based_close_to_baseline(self):
        trace = get_trace("go", 4_000)
        base = simulate(baseline_8way(), trace)
        dep = simulate(dependence_based_8way(), trace)
        assert dep.ipc > 0.85 * base.ipc

    def test_tiny_fifo_machine_still_completes(self):
        config = dependence_based_8way(fifo_count=2, fifo_depth=2)
        stats = simulate(config, get_trace("li", 2_000))
        assert stats.committed == 2_000

    def test_dispatch_stalls_recorded_for_tiny_buffers(self):
        config = baseline_8way(window_size=2)
        stats = simulate(config, get_trace("gcc", 1_500))
        assert stats.dispatch_stalls.get("window_full", 0) > 0


class TestClustering:
    def test_slower_intercluster_bypass_never_helps(self):
        trace = get_trace("m88ksim", 3_000)
        fast = simulate(
            clustered_dependence_8way(inter_cluster_bypass_cycles=1), trace
        )
        slow = simulate(
            clustered_dependence_8way(inter_cluster_bypass_cycles=3), trace
        )
        assert slow.ipc <= fast.ipc + 1e-9

    def test_one_cycle_bypass_matches_no_penalty(self):
        # With a 1-cycle inter-cluster bypass there is no latency
        # difference between clusters.
        trace = get_trace("perl", 2_000)
        stats = simulate(
            clustered_dependence_8way(inter_cluster_bypass_cycles=1), trace
        )
        assert stats.inter_cluster_bypass_frequency >= 0.0
        assert stats.committed == len(trace)

    def test_random_steering_worst(self):
        trace = get_trace("m88ksim", 4_000)
        random_stats = simulate(clustered_random_8way(), trace)
        dispatch_stats = simulate(clustered_windows_8way(), trace)
        exec_stats = simulate(clustered_exec_steer_8way(), trace)
        assert random_stats.ipc < dispatch_stats.ipc
        assert random_stats.ipc < exec_stats.ipc

    def test_exec_steering_close_to_ideal(self):
        trace = get_trace("gcc", 4_000)
        ideal = simulate(baseline_8way(), trace)
        exec_stats = simulate(clustered_exec_steer_8way(), trace)
        assert exec_stats.ipc > 0.90 * ideal.ipc

    def test_random_has_high_bypass_frequency(self):
        trace = get_trace("compress", 4_000)
        random_stats = simulate(clustered_random_8way(), trace)
        fifo_stats = simulate(clustered_dependence_8way(), trace)
        assert (
            random_stats.inter_cluster_bypass_frequency
            > fifo_stats.inter_cluster_bypass_frequency
        )

    def test_single_cluster_never_uses_intercluster_bypass(self):
        stats = simulate(baseline_8way(), get_trace("go", 2_000))
        assert stats.inter_cluster_bypasses == 0

    def test_clustered_machines_complete_all_workloads(self):
        trace = get_trace("vortex", 2_000)
        for config in (
            clustered_dependence_8way(),
            clustered_windows_8way(),
            clustered_exec_steer_8way(),
            clustered_random_8way(),
        ):
            stats = simulate(config, trace)
            assert stats.committed == len(trace)


class TestResourceLimits:
    def test_few_physical_registers_still_complete(self):
        config = baseline_8way(int_phys_regs=40, fp_phys_regs=40)
        stats = simulate(config, get_trace("gcc", 2_000))
        assert stats.committed == 2_000
        assert stats.dispatch_stalls.get("int_regs", 0) > 0

    def test_register_file_must_cover_isa(self):
        with pytest.raises(ValueError, match="smaller than the ISA"):
            PipelineSimulator(
                baseline_8way(int_phys_regs=32), trace_of("halt\n")
            )

    def test_small_in_flight_limit(self):
        # The in-flight limit must cover the window capacity, so a
        # tiny limit needs a matching tiny window.
        config = baseline_8way(window_size=8, max_in_flight=8)
        stats = simulate(config, independent_trace(300))
        full = baseline_8way()
        assert stats.ipc < simulate(full, independent_trace(300)).ipc

    def test_retire_width_bounds_commit(self):
        config = baseline_8way(retire_width=1)
        stats = simulate(config, independent_trace(300))
        assert stats.ipc <= 1.0


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=1_500),
    st.integers(min_value=1, max_value=500),
    st.sampled_from(["baseline", "fifo", "cluster", "random", "exec"]),
)
def test_simulator_total_and_bounded(length, seed, machine):
    """Property: any machine commits any synthetic trace exactly,
    with IPC bounded by the issue width."""
    configs = {
        "baseline": baseline_8way(),
        "fifo": dependence_based_8way(),
        "cluster": clustered_dependence_8way(),
        "random": clustered_random_8way(),
        "exec": clustered_exec_steer_8way(),
    }
    trace = synthetic_trace(SyntheticConfig(length=length, seed=seed))
    config = configs[machine]
    stats = simulate(config, trace)
    assert stats.committed == length
    assert stats.ipc <= config.issue_width
