"""Tests for the complexity-effectiveness frontier."""

import pytest

from repro.core.frontier import (
    FrontierPoint,
    conventional_clock_ps,
    conventional_frontier,
    dependence_based_point,
    dependence_clock_ps,
    format_frontier,
    issue_width_frontier,
)
from repro.technology import TECH_018, TECHNOLOGIES


class TestClockModels:
    def test_conventional_clock_monotone_in_window(self):
        clocks = [conventional_clock_ps(TECH_018, 8, w) for w in (8, 16, 32, 64, 128)]
        assert clocks == sorted(clocks)

    def test_conventional_clock_matches_table2(self):
        # At 8-way/64 the window logic (724 ps) dominates rename.
        assert conventional_clock_ps(TECH_018, 8, 64) == pytest.approx(724.0, abs=1.0)

    def test_rename_floor(self):
        # For tiny windows the clock is bounded by rename, not window
        # logic going to zero.
        clock = conventional_clock_ps(TECH_018, 8, 2)
        assert clock >= 427.0  # 8-way rename delay

    def test_dependence_clock_beats_conventional(self):
        for tech in TECHNOLOGIES:
            assert dependence_clock_ps(tech, 8) < conventional_clock_ps(tech, 8, 64)

    def test_dependence_clock_floor_is_rename(self):
        # Section 5.3: once window logic shrinks, rename is critical.
        clock = dependence_clock_ps(TECH_018, 8)
        assert clock >= 427.0


class TestFrontierPoint:
    def test_bips_math(self):
        point = FrontierPoint(label="x", window_size=64, mean_ipc=2.0, clock_ps=500.0)
        assert point.frequency_ghz == pytest.approx(2.0)
        assert point.bips == pytest.approx(4.0)

    def test_format(self):
        point = FrontierPoint(label="w64", window_size=64, mean_ipc=2.0, clock_ps=500.0)
        text = format_frontier([point])
        assert "w64" in text
        assert "BIPS" in text


class TestFrontierSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        workloads = ("compress", "li")
        points = conventional_frontier(
            window_sizes=(8, 32, 128),
            workloads=workloads,
            max_instructions=2_000,
        )
        dep = dependence_based_point(workloads=workloads, max_instructions=2_000)
        return points, dep

    def test_ipc_grows_with_window(self, sweep):
        points, _dep = sweep
        assert points[-1].mean_ipc >= points[0].mean_ipc - 0.02

    def test_clock_slows_with_window(self, sweep):
        points, _dep = sweep
        clocks = [p.clock_ps for p in points]
        assert clocks == sorted(clocks)

    def test_dependence_point_faster_clock_than_big_windows(self, sweep):
        points, dep = sweep
        assert dep.clock_ps < points[-1].clock_ps
        assert dep.mean_ipc > 0

    def test_issue_width_frontier(self):
        points = issue_width_frontier(
            issue_widths=(2, 4), workloads=("gcc",), max_instructions=2_000
        )
        assert [p.label for p in points] == ["2-way/16", "4-way/32"]
        # Wider issue: more IPC, slower window logic.
        assert points[1].mean_ipc >= points[0].mean_ipc - 0.02
        assert points[1].clock_ps > points[0].clock_ps
        # The 4-way clock matches Table 2's 4-way/32 window logic.
        assert points[1].clock_ps == pytest.approx(578.0, abs=1.0)
